//! # shareinsights-layout
//!
//! The 12-column grid layout engine (§3.6 of the paper) with the
//! resolution-aware adaptation §4.1 calls for ("mobile devices have limited
//! screen space … the platform needs to choose the appropriate
//! representation").
//!
//! "The platform models any dashboard as a grid of widgets. Every cell in
//! the grid holds a reference to a widget name or can itself be a layout.
//! Every row in the grid is broken into twelve columns of equal width.
//! Each cell specifies how many columns it will span."
//!
//! [`solve`] turns layout rows into pixel rectangles for a viewport;
//! narrow viewports stack cells vertically (the responsive collapse every
//! 12-column CSS grid performs).

use shareinsights_flowfile::ast::LayoutDef;
use std::fmt;

/// The grid's column count (fixed by the paper: "twelve columns
/// (arbitrary)").
pub const GRID_COLUMNS: u32 = 12;

/// A viewport the dashboard renders into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Viewport {
    /// Width in pixels.
    pub width: u32,
    /// Nominal row height in pixels.
    pub row_height: u32,
    /// Below this width every cell collapses to full width (mobile).
    pub collapse_below: u32,
}

impl Viewport {
    /// A desktop analyst screen.
    pub fn desktop() -> Self {
        Viewport {
            width: 1440,
            row_height: 320,
            collapse_below: 768,
        }
    }

    /// A phone.
    pub fn mobile() -> Self {
        Viewport {
            width: 390,
            row_height: 240,
            collapse_below: 768,
        }
    }

    /// True when the viewport collapses to a single column.
    pub fn collapsed(&self) -> bool {
        self.width < self.collapse_below
    }
}

/// A solved rectangle for one widget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Widget name.
    pub widget: String,
    /// Left edge in pixels.
    pub x: u32,
    /// Top edge in pixels.
    pub y: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Original span (columns).
    pub span: u8,
    /// Grid row index the cell came from.
    pub row: usize,
}

/// Layout solve errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A row's spans add to more than 12.
    RowOverflow {
        /// Row index (0-based).
        row: usize,
        /// Total span.
        total: u32,
    },
    /// A span outside 1..=12 (should be caught upstream; double-checked
    /// here because the solver is also used directly).
    BadSpan {
        /// Widget named in the cell.
        widget: String,
        /// The span.
        span: u8,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::RowOverflow { row, total } => {
                write!(
                    f,
                    "layout row {} spans {total} of {GRID_COLUMNS} columns",
                    row + 1
                )
            }
            LayoutError::BadSpan { widget, span } => {
                write!(
                    f,
                    "cell for widget '{widget}' has span {span} (must be 1..=12)"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Solve a layout into pixel placements for a viewport.
///
/// Desktop: cells sit side by side, each `span/12` of the width; rows stack
/// vertically. Collapsed (mobile): every cell becomes full-width and rows
/// flow down — reading order is preserved.
pub fn solve(layout: &LayoutDef, viewport: &Viewport) -> Result<Vec<Placement>, LayoutError> {
    let mut placements = Vec::new();
    let col_width = viewport.width / GRID_COLUMNS;
    let mut y = 0u32;
    for (ri, row) in layout.rows.iter().enumerate() {
        let total: u32 = row.iter().map(|c| c.span as u32).sum();
        if total > GRID_COLUMNS {
            return Err(LayoutError::RowOverflow { row: ri, total });
        }
        for cell in row {
            if cell.span == 0 || cell.span as u32 > GRID_COLUMNS {
                return Err(LayoutError::BadSpan {
                    widget: cell.widget.clone(),
                    span: cell.span,
                });
            }
        }
        if viewport.collapsed() {
            for cell in row {
                placements.push(Placement {
                    widget: cell.widget.clone(),
                    x: 0,
                    y,
                    width: viewport.width,
                    height: viewport.row_height,
                    span: cell.span,
                    row: ri,
                });
                y += viewport.row_height;
            }
        } else {
            let mut x_cols = 0u32;
            for cell in row {
                placements.push(Placement {
                    widget: cell.widget.clone(),
                    x: x_cols * col_width,
                    y,
                    width: cell.span as u32 * col_width,
                    height: viewport.row_height,
                    span: cell.span,
                    row: ri,
                });
                x_cols += cell.span as u32;
            }
            y += viewport.row_height;
        }
    }
    Ok(placements)
}

/// Render placements as an ASCII wireframe (used by examples to show the
/// grid without a browser).
pub fn wireframe(layout: &LayoutDef) -> String {
    let mut out = String::new();
    if let Some(d) = &layout.description {
        out.push_str(&format!("== {d} ==\n"));
    }
    for row in &layout.rows {
        out.push('|');
        for cell in row {
            // Two characters per column.
            let w = (cell.span as usize * 2).saturating_sub(1).max(1);
            let label: String = cell.widget.chars().take(w).collect();
            out.push_str(&format!("{label:^w$}|"));
        }
        out.push('\n');
    }
    out
}

/// Check whether two placements overlap (invariant: none may).
pub fn overlaps(a: &Placement, b: &Placement) -> bool {
    a.x < b.x + b.width && b.x < a.x + a.width && a.y < b.y + b.height && b.y < a.y + a.height
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_flowfile::ast::LayoutCell;

    fn cell(span: u8, widget: &str) -> LayoutCell {
        LayoutCell {
            span,
            widget: widget.to_string(),
        }
    }

    fn apache_layout() -> LayoutDef {
        // The figure-16 Apache dashboard layout.
        LayoutDef {
            description: Some("Apache Project Analysis".into()),
            rows: vec![
                vec![cell(12, "apache_custom_widget")],
                vec![
                    cell(4, "year_slider_layout"),
                    cell(8, "right_project_info_layout"),
                ],
                vec![
                    cell(5, "project_category_bubble"),
                    cell(7, "right_sliders_layout"),
                ],
            ],
            line: 0,
        }
    }

    #[test]
    fn desktop_solve_positions_cells() {
        let p = solve(&apache_layout(), &Viewport::desktop()).unwrap();
        assert_eq!(p.len(), 5);
        // Row 0: full width.
        assert_eq!(p[0].x, 0);
        assert_eq!(p[0].width, 1440);
        // Row 1: 4 cols then 8 cols.
        assert_eq!(p[1].width, 4 * 120);
        assert_eq!(p[2].x, 4 * 120);
        assert_eq!(p[2].width, 8 * 120);
        // Rows advance vertically.
        assert_eq!(p[1].y, 320);
        assert_eq!(p[3].y, 640);
    }

    #[test]
    fn no_placements_overlap() {
        let p = solve(&apache_layout(), &Viewport::desktop()).unwrap();
        for i in 0..p.len() {
            for j in i + 1..p.len() {
                assert!(!overlaps(&p[i], &p[j]), "{:?} vs {:?}", p[i], p[j]);
            }
        }
    }

    #[test]
    fn mobile_collapses_to_single_column() {
        let p = solve(&apache_layout(), &Viewport::mobile()).unwrap();
        assert_eq!(p.len(), 5);
        for pl in &p {
            assert_eq!(pl.x, 0);
            assert_eq!(pl.width, 390);
        }
        // Reading order preserved: widget order matches desktop.
        let desktop = solve(&apache_layout(), &Viewport::desktop()).unwrap();
        let mob_names: Vec<&str> = p.iter().map(|p| p.widget.as_str()).collect();
        let desk_names: Vec<&str> = desktop.iter().map(|p| p.widget.as_str()).collect();
        assert_eq!(mob_names, desk_names);
        // And everything stacks.
        for w in p.windows(2) {
            assert_eq!(w[1].y, w[0].y + 240);
        }
    }

    #[test]
    fn overflow_rejected() {
        let bad = LayoutDef {
            description: None,
            rows: vec![vec![cell(8, "a"), cell(8, "b")]],
            line: 0,
        };
        let err = solve(&bad, &Viewport::desktop()).unwrap_err();
        assert!(matches!(
            err,
            LayoutError::RowOverflow { row: 0, total: 16 }
        ));
    }

    #[test]
    fn bad_span_rejected() {
        let bad = LayoutDef {
            description: None,
            rows: vec![vec![cell(0, "a")]],
            line: 0,
        };
        assert!(matches!(
            solve(&bad, &Viewport::desktop()),
            Err(LayoutError::BadSpan { .. })
        ));
    }

    #[test]
    fn partial_rows_allowed() {
        // Rows may span fewer than 12 columns (figure 16 uses span11).
        let l = LayoutDef {
            description: None,
            rows: vec![vec![cell(11, "wide")]],
            line: 0,
        };
        let p = solve(&l, &Viewport::desktop()).unwrap();
        assert_eq!(p[0].width, 11 * 120);
    }

    #[test]
    fn wireframe_sketches_grid() {
        let s = wireframe(&apache_layout());
        assert!(s.contains("== Apache Project Analysis =="));
        assert!(s.lines().count() >= 4);
        assert!(s.contains('|'));
    }

    #[test]
    fn empty_layout() {
        let l = LayoutDef::default();
        assert!(solve(&l, &Viewport::desktop()).unwrap().is_empty());
    }
}
