//! # shareinsights-collab
//!
//! Collaboration services (§4.5 of the paper).
//!
//! * [`store`] — a DVCS-style content-addressed commit store over flow-file
//!   text, with branches and merges ("CRUD operations on flow files map to
//!   source commits", §4.5.1).
//! * [`merge`] — the *section-aware* three-way merge §4.5.1 motivates:
//!   "since the flow file has clearly demarcated sections, the anxieties
//!   with merging and repeated branching should be significantly lower."
//!   Edits to different named items never conflict; same-item divergence is
//!   reported as a conflict in flow-file vocabulary.
//! * [`registry`] — the publish/shared-objects registry (§3.4.1, §4.5.3):
//!   named data objects published by one dashboard and consumed by others,
//!   and the flow-file groups they induce.
//! * Forking ([`store::Repository::fork`]) — §5.2.2 observation 3: "teams
//!   'forked' off existing (help or sample) dashboards to get started";
//!   figure 35 plots the resulting starting flow-file sizes.

pub mod merge;
pub mod registry;
pub mod store;

pub use merge::{merge_flow_files, merge_texts, MergeConflict, MergeOutcome};
pub use registry::{PublishRegistry, SharedObject};
pub use store::{Commit, CommitId, Repository, StoreError};
