//! Content-addressed commit store with branches and forks.
//!
//! The whole data pipeline is one text file, "very amenable to manage via a
//! source control system" (§4.5.1). The store is deliberately git-shaped:
//! immutable commits addressed by a content hash, named branches, merge
//! commits with two parents, and forks that copy history into a new
//! repository (how hackathon teams started from sample dashboards).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A commit identifier: hex of a 128-bit content hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommitId(pub String);

impl fmt::Display for CommitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a with two seeds — deterministic, dependency-free content hashing.
fn content_hash(parts: &[&str]) -> CommitId {
    fn fnv(seed: u64, parts: &[&str]) -> u64 {
        let mut h = seed;
        for p in parts {
            for b in p.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= 0xff; // separator so ["ab","c"] != ["a","bc"]
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    CommitId(format!(
        "{:016x}{:016x}",
        fnv(0xcbf29ce484222325, parts),
        fnv(0x9e3779b97f4a7c15, parts)
    ))
}

/// One immutable commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Content-derived id.
    pub id: CommitId,
    /// Parent commits (0 for root, 1 normal, 2 merge).
    pub parents: Vec<CommitId>,
    /// Author label.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// The flow-file text at this commit.
    pub content: String,
    /// Monotonic sequence number within the repository (logical clock).
    pub seq: u64,
}

/// Store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Unknown branch name.
    NoBranch(String),
    /// Unknown commit id.
    NoCommit(CommitId),
    /// Branch already exists.
    BranchExists(String),
    /// Merge has no common ancestor (disjoint histories).
    NoCommonAncestor,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoBranch(b) => write!(f, "no branch '{b}'"),
            StoreError::NoCommit(c) => write!(f, "no commit {c}"),
            StoreError::BranchExists(b) => write!(f, "branch '{b}' already exists"),
            StoreError::NoCommonAncestor => write!(f, "histories share no common ancestor"),
        }
    }
}

impl std::error::Error for StoreError {}

#[derive(Debug, Default)]
struct RepoInner {
    commits: BTreeMap<CommitId, Commit>,
    branches: BTreeMap<String, CommitId>,
    seq: u64,
    /// `(source repo name, commit)` when this repo was forked.
    forked_from: Option<(String, CommitId)>,
}

/// A dashboard's version history.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    name: String,
    inner: Arc<RwLock<RepoInner>>,
}

impl Repository {
    /// New empty repository for a dashboard.
    pub fn new(name: impl Into<String>) -> Self {
        Repository {
            name: name.into(),
            inner: Arc::new(RwLock::new(RepoInner::default())),
        }
    }

    /// Repository (dashboard) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where this repo was forked from, if anywhere.
    pub fn forked_from(&self) -> Option<(String, CommitId)> {
        self.inner.read().forked_from.clone()
    }

    /// Commit new content onto a branch (creating `main`/the branch at the
    /// root commit).
    pub fn commit(&self, branch: &str, author: &str, message: &str, content: &str) -> CommitId {
        let mut inner = self.inner.write();
        let parents: Vec<CommitId> = inner.branches.get(branch).cloned().into_iter().collect();
        inner.seq += 1;
        let seq = inner.seq;
        let parent_strs: Vec<String> = parents.iter().map(|p| p.0.clone()).collect();
        let mut parts: Vec<&str> = vec![content, author, message, &self.name];
        let seq_s = seq.to_string();
        parts.push(&seq_s);
        for p in &parent_strs {
            parts.push(p);
        }
        let id = content_hash(&parts);
        let commit = Commit {
            id: id.clone(),
            parents,
            author: author.to_string(),
            message: message.to_string(),
            content: content.to_string(),
            seq,
        };
        inner.commits.insert(id.clone(), commit);
        inner.branches.insert(branch.to_string(), id.clone());
        id
    }

    /// Record a merge commit with two parents.
    pub fn commit_merge(
        &self,
        branch: &str,
        author: &str,
        message: &str,
        content: &str,
        other_parent: &CommitId,
    ) -> Result<CommitId, StoreError> {
        let mut inner = self.inner.write();
        let head = inner
            .branches
            .get(branch)
            .cloned()
            .ok_or_else(|| StoreError::NoBranch(branch.to_string()))?;
        if !inner.commits.contains_key(other_parent) {
            return Err(StoreError::NoCommit(other_parent.clone()));
        }
        inner.seq += 1;
        let seq = inner.seq;
        let seq_s = seq.to_string();
        let id = content_hash(&[content, author, message, &head.0, &other_parent.0, &seq_s]);
        let commit = Commit {
            id: id.clone(),
            parents: vec![head, other_parent.clone()],
            author: author.to_string(),
            message: message.to_string(),
            content: content.to_string(),
            seq,
        };
        inner.commits.insert(id.clone(), commit);
        inner.branches.insert(branch.to_string(), id.clone());
        Ok(id)
    }

    /// Create a branch at another branch's head.
    pub fn branch(&self, new_branch: &str, from: &str) -> Result<CommitId, StoreError> {
        let mut inner = self.inner.write();
        if inner.branches.contains_key(new_branch) {
            return Err(StoreError::BranchExists(new_branch.to_string()));
        }
        let head = inner
            .branches
            .get(from)
            .cloned()
            .ok_or_else(|| StoreError::NoBranch(from.to_string()))?;
        inner.branches.insert(new_branch.to_string(), head.clone());
        Ok(head)
    }

    /// Head commit of a branch.
    pub fn head(&self, branch: &str) -> Result<Commit, StoreError> {
        let inner = self.inner.read();
        let id = inner
            .branches
            .get(branch)
            .ok_or_else(|| StoreError::NoBranch(branch.to_string()))?;
        Ok(inner.commits[id].clone())
    }

    /// A commit by id.
    pub fn get(&self, id: &CommitId) -> Result<Commit, StoreError> {
        self.inner
            .read()
            .commits
            .get(id)
            .cloned()
            .ok_or_else(|| StoreError::NoCommit(id.clone()))
    }

    /// All branch names.
    pub fn branches(&self) -> Vec<String> {
        self.inner.read().branches.keys().cloned().collect()
    }

    /// Commit count.
    pub fn len(&self) -> usize {
        self.inner.read().commits.len()
    }

    /// True when no commits exist.
    pub fn is_empty(&self) -> bool {
        self.inner.read().commits.is_empty()
    }

    /// History of a branch, newest first (first-parent walk).
    pub fn log(&self, branch: &str) -> Result<Vec<Commit>, StoreError> {
        let inner = self.inner.read();
        let mut id = inner
            .branches
            .get(branch)
            .cloned()
            .ok_or_else(|| StoreError::NoBranch(branch.to_string()))?;
        let mut out = Vec::new();
        loop {
            let c = inner.commits[&id].clone();
            let parent = c.parents.first().cloned();
            out.push(c);
            match parent {
                Some(p) => id = p,
                None => break,
            }
        }
        Ok(out)
    }

    /// Lowest common ancestor of two commits (by full ancestor sets; ties
    /// broken by highest sequence number).
    pub fn merge_base(&self, a: &CommitId, b: &CommitId) -> Result<Commit, StoreError> {
        let inner = self.inner.read();
        fn ancestors(
            inner: &RepoInner,
            start: &CommitId,
        ) -> Result<std::collections::BTreeSet<CommitId>, StoreError> {
            let mut set = std::collections::BTreeSet::new();
            let mut stack = vec![start.clone()];
            while let Some(id) = stack.pop() {
                let c = inner
                    .commits
                    .get(&id)
                    .ok_or_else(|| StoreError::NoCommit(id.clone()))?;
                if set.insert(id) {
                    stack.extend(c.parents.iter().cloned());
                }
            }
            Ok(set)
        }
        let aa = ancestors(&inner, a)?;
        let bb = ancestors(&inner, b)?;
        aa.intersection(&bb)
            .map(|id| inner.commits[id].clone())
            .max_by_key(|c| c.seq)
            .ok_or(StoreError::NoCommonAncestor)
    }

    /// Fork: a new repository seeded with this branch's head content as its
    /// root commit, remembering provenance. Returns the new repo.
    pub fn fork(
        &self,
        new_name: &str,
        branch: &str,
        author: &str,
    ) -> Result<Repository, StoreError> {
        let head = self.head(branch)?;
        let repo = Repository::new(new_name);
        repo.commit(
            "main",
            author,
            &format!("fork of {}@{}", self.name, head.id),
            &head.content,
        );
        repo.inner.write().forked_from = Some((self.name.clone(), head.id));
        Ok(repo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_log() {
        let repo = Repository::new("apache");
        let c1 = repo.commit("main", "alice", "initial", "D:\n  a: [x]\n");
        let c2 = repo.commit(
            "main",
            "bob",
            "add task",
            "D:\n  a: [x]\nT:\n  t:\n    type: limit\n    limit: 1\n",
        );
        assert_ne!(c1, c2);
        let log = repo.log("main").unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].id, c2);
        assert_eq!(log[1].id, c1);
        assert_eq!(log[0].parents, vec![c1.clone()]);
        assert_eq!(repo.head("main").unwrap().author, "bob");
    }

    #[test]
    fn branching_and_merge_base() {
        let repo = Repository::new("r");
        let base = repo.commit("main", "a", "base", "v0");
        repo.branch("feature", "main").unwrap();
        let m1 = repo.commit("main", "a", "main work", "v-main");
        let f1 = repo.commit("feature", "b", "feature work", "v-feat");
        let lca = repo.merge_base(&m1, &f1).unwrap();
        assert_eq!(lca.id, base);

        let merged = repo
            .commit_merge("main", "a", "merge feature", "v-merged", &f1)
            .unwrap();
        let head = repo.head("main").unwrap();
        assert_eq!(head.id, merged);
        assert_eq!(head.parents.len(), 2);
        // LCA after merge is the merge itself when comparing with feature.
        let lca = repo.merge_base(&merged, &f1).unwrap();
        assert_eq!(lca.id, f1);
    }

    #[test]
    fn branch_errors() {
        let repo = Repository::new("r");
        repo.commit("main", "a", "m", "x");
        assert!(matches!(
            repo.branch("main", "main"),
            Err(StoreError::BranchExists(_))
        ));
        assert!(matches!(
            repo.branch("f", "ghost"),
            Err(StoreError::NoBranch(_))
        ));
        assert!(matches!(repo.head("ghost"), Err(StoreError::NoBranch(_))));
    }

    #[test]
    fn fork_copies_content_and_provenance() {
        let samples = Repository::new("help_dashboard");
        samples.commit("main", "platform", "sample", "D:\n  demo: [x]\n");
        let team = samples.fork("team_12", "main", "team12").unwrap();
        assert_eq!(team.name(), "team_12");
        let head = team.head("main").unwrap();
        assert_eq!(head.content, "D:\n  demo: [x]\n");
        assert!(head.message.contains("fork of help_dashboard"));
        let (src, _) = team.forked_from().unwrap();
        assert_eq!(src, "help_dashboard");
    }

    #[test]
    fn ids_are_content_derived_and_distinct() {
        let repo = Repository::new("r");
        let a = repo.commit("main", "x", "m", "same");
        let b = repo.commit("main", "x", "m", "same");
        // Same content but different parent/seq: distinct ids.
        assert_ne!(a, b);
        assert_eq!(a.0.len(), 32);
    }

    #[test]
    fn disjoint_histories_have_no_ancestor() {
        let repo = Repository::new("r");
        let a = repo.commit("main", "x", "m", "1");
        let b = repo.commit("other", "x", "m", "2");
        assert!(matches!(
            repo.merge_base(&a, &b),
            Err(StoreError::NoCommonAncestor)
        ));
    }
}
