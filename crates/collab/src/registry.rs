//! The publish/shared-objects registry and flow-file groups.
//!
//! §3.4.1: "To make the data object available to other dashboards, specify
//! a name by which this data object will be referenced … The platform
//! searches for this data object — in the shared objects list — when
//! referenced in another dashboard." §4.5.3: the producing and consuming
//! dashboards "form a natural flow file group".

use parking_lot::RwLock;
use shareinsights_tabular::{Schema, Table};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One published data object.
#[derive(Debug, Clone)]
pub struct SharedObject {
    /// Public (published) name.
    pub publish_name: String,
    /// Producing dashboard.
    pub producer: String,
    /// The producer's local object name.
    pub local_name: String,
    /// Schema of the published data.
    pub schema: Schema,
    /// Latest materialised snapshot (None until the producer runs).
    pub snapshot: Option<Table>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    objects: BTreeMap<String, SharedObject>,
    /// publish name -> consuming dashboards.
    consumers: BTreeMap<String, BTreeSet<String>>,
    /// publish name -> monotonically increasing data generation. Bumped on
    /// every publish/refresh so downstream caches (the server's
    /// query-result cache) can invalidate without being told.
    generations: BTreeMap<String, u64>,
}

/// The platform-wide shared-objects registry.
#[derive(Debug, Clone, Default)]
pub struct PublishRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

impl PublishRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish (or republish) an object. Re-publishing from the same
    /// producer updates schema/snapshot; from a different producer it is an
    /// error (names are platform-global).
    pub fn publish(
        &self,
        publish_name: &str,
        producer: &str,
        local_name: &str,
        schema: Schema,
        snapshot: Option<Table>,
    ) -> Result<(), String> {
        let mut inner = self.inner.write();
        if let Some(existing) = inner.objects.get(publish_name) {
            if existing.producer != producer {
                return Err(format!(
                    "shared object '{publish_name}' is already published by dashboard '{}'",
                    existing.producer
                ));
            }
        }
        inner.objects.insert(
            publish_name.to_string(),
            SharedObject {
                publish_name: publish_name.to_string(),
                producer: producer.to_string(),
                local_name: local_name.to_string(),
                schema,
                snapshot,
            },
        );
        *inner
            .generations
            .entry(publish_name.to_string())
            .or_insert(0) += 1;
        Ok(())
    }

    /// Update only the snapshot after a producer run.
    pub fn refresh_snapshot(&self, publish_name: &str, snapshot: Table) -> Result<(), String> {
        let mut inner = self.inner.write();
        match inner.objects.get_mut(publish_name) {
            Some(obj) => {
                obj.schema = snapshot.schema().clone();
                obj.snapshot = Some(snapshot);
                *inner
                    .generations
                    .entry(publish_name.to_string())
                    .or_insert(0) += 1;
                Ok(())
            }
            None => Err(format!("no shared object '{publish_name}'")),
        }
    }

    /// Look up a shared object, recording the consumer for group tracking.
    pub fn resolve(&self, publish_name: &str, consumer: &str) -> Option<SharedObject> {
        let mut inner = self.inner.write();
        if inner.objects.contains_key(publish_name) {
            inner
                .consumers
                .entry(publish_name.to_string())
                .or_default()
                .insert(consumer.to_string());
            inner.objects.get(publish_name).cloned()
        } else {
            None
        }
    }

    /// Peek without registering a consumer.
    pub fn get(&self, publish_name: &str) -> Option<SharedObject> {
        self.inner.read().objects.get(publish_name).cloned()
    }

    /// All published names.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().objects.keys().cloned().collect()
    }

    /// Data generation of a published object: 0 before the first publish,
    /// bumped by every publish/refresh. Query-result caches key on this to
    /// invalidate stale entries.
    pub fn generation(&self, publish_name: &str) -> u64 {
        self.inner
            .read()
            .generations
            .get(publish_name)
            .copied()
            .unwrap_or(0)
    }

    /// The flow-file group around a published object: producer plus every
    /// consumer (§4.5.3).
    pub fn group_of(&self, publish_name: &str) -> Vec<String> {
        let inner = self.inner.read();
        let mut group = Vec::new();
        if let Some(obj) = inner.objects.get(publish_name) {
            group.push(obj.producer.clone());
        }
        if let Some(cons) = inner.consumers.get(publish_name) {
            for c in cons {
                if !group.contains(c) {
                    group.push(c.clone());
                }
            }
        }
        group
    }

    /// All flow-file groups: dashboards connected through shared objects
    /// (union-find over producer/consumer edges).
    pub fn groups(&self) -> Vec<Vec<String>> {
        let inner = self.inner.read();
        // Collect edges.
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (name, obj) in &inner.objects {
            adj.entry(obj.producer.as_str()).or_default();
            if let Some(cons) = inner.consumers.get(name) {
                for c in cons {
                    adj.entry(obj.producer.as_str()).or_default().insert(c);
                    adj.entry(c.as_str()).or_default().insert(&obj.producer);
                }
            }
        }
        // Connected components.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut groups = Vec::new();
        for &start in adj.keys() {
            if seen.contains(start) {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                if seen.insert(n) {
                    component.push(n.to_string());
                    if let Some(next) = adj.get(n) {
                        stack.extend(next.iter());
                    }
                }
            }
            component.sort();
            groups.push(component);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;
    use shareinsights_tabular::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("date", DataType::Utf8),
            ("player", DataType::Utf8),
            ("count", DataType::Int64),
        ])
    }

    #[test]
    fn publish_resolve_and_group() {
        let reg = PublishRegistry::new();
        reg.publish(
            "players_tweets",
            "ipl_processing",
            "players_tweets",
            schema(),
            None,
        )
        .unwrap();
        assert_eq!(reg.names(), vec!["players_tweets"]);

        let obj = reg.resolve("players_tweets", "ipl_dashboard").unwrap();
        assert_eq!(obj.producer, "ipl_processing");
        assert!(obj.snapshot.is_none());

        reg.resolve("players_tweets", "another_dashboard").unwrap();
        assert_eq!(
            reg.group_of("players_tweets"),
            vec!["ipl_processing", "another_dashboard", "ipl_dashboard"]
        );
    }

    #[test]
    fn snapshot_refresh() {
        let reg = PublishRegistry::new();
        reg.publish("p", "prod", "local", schema(), None).unwrap();
        let t = Table::from_rows(&["date", "player", "count"], &[row!["d", "x", 1i64]]).unwrap();
        reg.refresh_snapshot("p", t).unwrap();
        assert_eq!(reg.get("p").unwrap().snapshot.unwrap().num_rows(), 1);
        assert!(reg
            .refresh_snapshot("ghost", Table::from_rows(&["a"], &[]).unwrap())
            .is_err());
    }

    #[test]
    fn generations_bump_on_publish_and_refresh() {
        let reg = PublishRegistry::new();
        assert_eq!(reg.generation("p"), 0);
        reg.publish("p", "prod", "local", schema(), None).unwrap();
        assert_eq!(reg.generation("p"), 1);
        let t = Table::from_rows(&["date", "player", "count"], &[row!["d", "x", 1i64]]).unwrap();
        reg.refresh_snapshot("p", t).unwrap();
        assert_eq!(reg.generation("p"), 2);
        reg.publish("p", "prod", "local", schema(), None).unwrap();
        assert_eq!(reg.generation("p"), 3);
        // Failed cross-producer publish does not bump.
        assert!(reg.publish("p", "other", "x", schema(), None).is_err());
        assert_eq!(reg.generation("p"), 3);
    }

    #[test]
    fn name_collisions_across_producers_rejected() {
        let reg = PublishRegistry::new();
        reg.publish("p", "dash1", "a", schema(), None).unwrap();
        assert!(reg.publish("p", "dash2", "b", schema(), None).is_err());
        // Same producer may republish.
        reg.publish("p", "dash1", "a", schema(), None).unwrap();
    }

    #[test]
    fn unknown_resolve_returns_none() {
        let reg = PublishRegistry::new();
        assert!(reg.resolve("ghost", "x").is_none());
        assert!(reg.group_of("ghost").is_empty());
    }

    #[test]
    fn groups_are_connected_components() {
        let reg = PublishRegistry::new();
        reg.publish("a", "p1", "a", schema(), None).unwrap();
        reg.publish("b", "p2", "b", schema(), None).unwrap();
        reg.resolve("a", "c1");
        reg.resolve("a", "c2");
        reg.resolve("b", "c3");
        let mut groups = reg.groups();
        groups.sort();
        assert_eq!(groups.len(), 2);
        assert!(groups.contains(&vec!["c1".to_string(), "c2".to_string(), "p1".to_string()]));
        assert!(groups.contains(&vec!["c3".to_string(), "p2".to_string()]));
    }
}
