//! Section-aware three-way merge of flow files.
//!
//! The unit of merge is the *named item*: a data object, a task, a widget,
//! a flow (keyed by its output), or the layout as a whole. For each item:
//!
//! * changed on one side only → take that side;
//! * changed identically on both → take it;
//! * changed differently on both → conflict, reported in flow-file
//!   vocabulary (`task 'T.players_count' edited on both branches`);
//! * added on one side → taken; added differently on both → conflict.
//!
//! This is exactly the benefit §4.5.1 claims for demarcated sections: two
//! analysts editing different tasks (or one editing a widget and another a
//! flow) always merge clean.

use shareinsights_flowfile::ast::{FlowFile, LayoutDef};
use shareinsights_flowfile::parser::parse_flow_file;
use shareinsights_flowfile::serialize::to_text;
use std::collections::BTreeSet;
use std::fmt;

/// One unresolved conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeConflict {
    /// Section letter (D/T/F/W/L).
    pub section: char,
    /// Item name (`"<layout>"` for L).
    pub item: String,
    /// Human-readable description.
    pub description: String,
}

impl fmt::Display for MergeConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.section, self.item, self.description)
    }
}

/// Merge result: the merged file plus any conflicts (ours wins in the
/// merged text where conflicted, so callers can still materialise it).
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged flow file.
    pub merged: FlowFile,
    /// Conflicts needing human resolution.
    pub conflicts: Vec<MergeConflict>,
}

impl MergeOutcome {
    /// True when the merge was clean.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// The merged flow-file text.
    pub fn text(&self) -> String {
        to_text(&self.merged)
    }
}

/// Three-way merge of flow-file *texts*; parses all three and merges the
/// ASTs.
pub fn merge_texts(
    name: &str,
    base: &str,
    ours: &str,
    theirs: &str,
) -> Result<MergeOutcome, shareinsights_flowfile::diag::FlowError> {
    let base = parse_flow_file(name, base)?;
    let ours = parse_flow_file(name, ours)?;
    let theirs = parse_flow_file(name, theirs)?;
    Ok(merge_flow_files(&base, &ours, &theirs))
}

/// Generic three-way item merge over a keyed collection.
#[allow(clippy::too_many_arguments)]
fn merge_items<T: Clone + PartialEq>(
    section: char,
    base: &[T],
    ours: &[T],
    theirs: &[T],
    key: impl Fn(&T) -> String,
    normalize: impl Fn(&T) -> T,
    out: &mut Vec<T>,
    conflicts: &mut Vec<MergeConflict>,
) {
    let find =
        |items: &[T], k: &str| -> Option<T> { items.iter().find(|i| key(i) == k).map(&normalize) };
    let mut keys: Vec<String> = Vec::new();
    let mut seen = BTreeSet::new();
    for item in ours.iter().chain(theirs.iter()).chain(base.iter()) {
        let k = key(item);
        if seen.insert(k.clone()) {
            keys.push(k);
        }
    }

    for k in keys {
        let b = find(base, &k);
        let o = find(ours, &k);
        let t = find(theirs, &k);
        match (b, o, t) {
            // Unchanged or same on both sides.
            (_, Some(o), Some(t)) if o == t => out.push(o),
            // Only ours differs (theirs matches base or is absent like base).
            (Some(b), Some(o), Some(t)) => {
                if t == b {
                    out.push(o);
                } else if o == b {
                    out.push(t);
                } else {
                    conflicts.push(MergeConflict {
                        section,
                        item: k.clone(),
                        description: "edited differently on both branches".into(),
                    });
                    out.push(o); // ours wins in the materialised text
                }
            }
            // Deleted on one side, unchanged on the other → delete.
            (Some(b), Some(o), None) => {
                if o == b {
                    // deleted by theirs, untouched by ours
                } else {
                    conflicts.push(MergeConflict {
                        section,
                        item: k.clone(),
                        description: "edited here but deleted on the other branch".into(),
                    });
                    out.push(o);
                }
            }
            (Some(b), None, Some(t)) => {
                if t == b {
                    // deleted by ours
                } else {
                    conflicts.push(MergeConflict {
                        section,
                        item: k.clone(),
                        description: "deleted here but edited on the other branch".into(),
                    });
                    out.push(t);
                }
            }
            (Some(_), None, None) => {} // deleted on both
            // Added on one side only.
            (None, Some(o), None) => out.push(o),
            (None, None, Some(t)) => out.push(t),
            // Added on both sides (o != t — the equal case matched above).
            (None, Some(o), Some(_)) => {
                conflicts.push(MergeConflict {
                    section,
                    item: k.clone(),
                    description: "added differently on both branches".into(),
                });
                out.push(o);
            }
            (None, None, None) => unreachable!("key came from some side"),
        }
    }
}

/// Three-way merge of parsed flow files.
pub fn merge_flow_files(base: &FlowFile, ours: &FlowFile, theirs: &FlowFile) -> MergeOutcome {
    let mut merged = FlowFile {
        name: ours.name.clone(),
        ..Default::default()
    };
    let mut conflicts = Vec::new();

    merge_items(
        'D',
        &base.data,
        &ours.data,
        &theirs.data,
        |d| d.name.clone(),
        |d| {
            let mut d = d.clone();
            d.line = 0;
            d
        },
        &mut merged.data,
        &mut conflicts,
    );
    merge_items(
        'T',
        &base.tasks,
        &ours.tasks,
        &theirs.tasks,
        |t| t.name.clone(),
        |t| {
            let mut t = t.clone();
            t.line = 0;
            t
        },
        &mut merged.tasks,
        &mut conflicts,
    );
    merge_items(
        'F',
        &base.flows,
        &ours.flows,
        &theirs.flows,
        |f| f.output.clone(),
        |f| {
            let mut f = f.clone();
            f.line = 0;
            f
        },
        &mut merged.flows,
        &mut conflicts,
    );
    merge_items(
        'W',
        &base.widgets,
        &ours.widgets,
        &theirs.widgets,
        |w| w.name.clone(),
        |w| {
            let mut w = w.clone();
            w.line = 0;
            w
        },
        &mut merged.widgets,
        &mut conflicts,
    );

    // Layout: a single item.
    let norm = |l: &Option<LayoutDef>| -> Option<LayoutDef> {
        l.as_ref().map(|l| {
            let mut l = l.clone();
            l.line = 0;
            l
        })
    };
    let (b, o, t) = (norm(&base.layout), norm(&ours.layout), norm(&theirs.layout));
    merged.layout = match (b, o.clone(), t.clone()) {
        (_, o2, t2) if o2 == t2 => o2,
        (b2, o2, t2) => {
            if t2 == b2 {
                o2
            } else if o2 == b2 {
                t2
            } else {
                conflicts.push(MergeConflict {
                    section: 'L',
                    item: "<layout>".into(),
                    description: "layout edited differently on both branches".into(),
                });
                o2
            }
        }
    };

    MergeOutcome { merged, conflicts }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"
D:
  tweets: [date, team, count]
T:
  by_team:
    type: groupby
    groupby: [team]
  keep:
    type: filter_by
    filter_expression: count > 0
F:
  +D.team_counts: D.tweets | T.by_team
W:
  cloud:
    type: WordCloud
    source: D.team_counts
    text: team
    size: count
L:
  rows:
  - [span12: W.cloud]
"#;

    #[test]
    fn disjoint_section_edits_merge_clean() {
        // Ours edits a task; theirs adds a widget. §4.5.1's promise.
        let ours = BASE.replace("count > 0", "count > 5");
        let theirs = BASE.replace(
            "W:\n  cloud:",
            "W:\n  grid:\n    type: DataGrid\n    source: D.team_counts\n  cloud:",
        );
        let out = merge_texts("d", BASE, &ours, &theirs).unwrap();
        assert!(out.is_clean(), "{:?}", out.conflicts);
        assert_eq!(out.merged.widgets.len(), 2);
        let keep = out.merged.task("keep").unwrap();
        assert_eq!(
            keep.params.get_scalar("filter_expression"),
            Some("count > 5")
        );
    }

    #[test]
    fn same_item_divergence_conflicts() {
        let ours = BASE.replace("count > 0", "count > 5");
        let theirs = BASE.replace("count > 0", "count > 9");
        let out = merge_texts("d", BASE, &ours, &theirs).unwrap();
        assert_eq!(out.conflicts.len(), 1);
        let c = &out.conflicts[0];
        assert_eq!(c.section, 'T');
        assert_eq!(c.item, "keep");
        assert!(c.to_string().contains("edited differently"));
        // Ours wins in the materialised text.
        assert_eq!(
            out.merged
                .task("keep")
                .unwrap()
                .params
                .get_scalar("filter_expression"),
            Some("count > 5")
        );
    }

    #[test]
    fn identical_edits_merge_clean() {
        let both = BASE.replace("count > 0", "count > 7");
        let out = merge_texts("d", BASE, &both, &both).unwrap();
        assert!(out.is_clean());
    }

    #[test]
    fn delete_vs_edit_conflicts() {
        // Theirs deletes the 'keep' task; ours edits it.
        let ours = BASE.replace("count > 0", "count > 5");
        let theirs = BASE.replace(
            "  keep:\n    type: filter_by\n    filter_expression: count > 0\n",
            "",
        );
        let out = merge_texts("d", BASE, &ours, &theirs).unwrap();
        assert_eq!(out.conflicts.len(), 1);
        assert!(out.conflicts[0].description.contains("deleted"));
    }

    #[test]
    fn delete_vs_untouched_deletes() {
        let theirs = BASE.replace(
            "  keep:\n    type: filter_by\n    filter_expression: count > 0\n",
            "",
        );
        let out = merge_texts("d", BASE, BASE, &theirs).unwrap();
        assert!(out.is_clean());
        assert!(out.merged.task("keep").is_none());
    }

    #[test]
    fn both_add_same_name_differently_conflicts() {
        let ours = BASE.replace("T:\n", "T:\n  extra:\n    type: limit\n    limit: 5\n");
        let theirs = BASE.replace("T:\n", "T:\n  extra:\n    type: limit\n    limit: 9\n");
        let out = merge_texts("d", BASE, &ours, &theirs).unwrap();
        assert_eq!(out.conflicts.len(), 1);
        assert!(out.conflicts[0].description.contains("added differently"));
    }

    #[test]
    fn layout_is_one_item() {
        let ours = BASE.replace("span12: W.cloud", "span6: W.cloud");
        let theirs = BASE.replace("span12: W.cloud", "span4: W.cloud");
        let out = merge_texts("d", BASE, &ours, &theirs).unwrap();
        assert_eq!(out.conflicts.len(), 1);
        assert_eq!(out.conflicts[0].section, 'L');

        // Layout edited on one side only: clean.
        let out = merge_texts("d", BASE, &ours, BASE).unwrap();
        assert!(out.is_clean());
        assert_eq!(out.merged.layout.unwrap().rows[0][0].span, 6);
    }

    #[test]
    fn merged_text_reparses() {
        let ours = BASE.replace("count > 0", "count > 5");
        let out = merge_texts("d", BASE, &ours, BASE).unwrap();
        let text = out.text();
        let reparsed = parse_flow_file("d", &text).unwrap();
        assert_eq!(reparsed.tasks.len(), out.merged.tasks.len());
    }
}
