//! Simulated FTP connector: per-host in-memory file trees addressed as
//! `ftp://host/path`.

use crate::connector::{infer_format_from_source, Connector, FetchRequest, Payload};
use crate::error::{ConnectorError, Result};
use crate::file::DataFolder;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deterministic in-process FTP service.
#[derive(Clone, Default)]
pub struct FtpSimConnector {
    hosts: Arc<RwLock<BTreeMap<String, DataFolder>>>,
}

impl FtpSimConnector {
    /// Empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (creating) the folder for a host.
    pub fn host(&self, host: &str) -> DataFolder {
        self.hosts
            .write()
            .entry(host.to_string())
            .or_default()
            .clone()
    }

    fn split_url(url: &str) -> Result<(String, String)> {
        let rest = url
            .strip_prefix("ftp://")
            .ok_or_else(|| ConnectorError::BadConfig(format!("not an ftp url: '{url}'")))?;
        let (host, path) = rest
            .split_once('/')
            .ok_or_else(|| ConnectorError::BadConfig(format!("ftp url missing path: '{url}'")))?;
        if host.is_empty() || path.is_empty() {
            return Err(ConnectorError::BadConfig(format!(
                "ftp url malformed: '{url}'"
            )));
        }
        Ok((host.to_string(), path.to_string()))
    }
}

impl Connector for FtpSimConnector {
    fn protocol(&self) -> &str {
        "ftp"
    }

    fn fetch(&self, request: &FetchRequest) -> Result<Payload> {
        let (host, path) = Self::split_url(&request.source)?;
        let hosts = self.hosts.read();
        let folder = hosts.get(&host).ok_or_else(|| ConnectorError::NotFound {
            protocol: "ftp".into(),
            source: request.source.clone(),
        })?;
        match folder.get(&path) {
            Some(data) => Ok(Payload::Bytes {
                data,
                format_hint: infer_format_from_source(&path).map(str::to_string),
            }),
            None => Err(ConnectorError::NotFound {
                protocol: "ftp".into(),
                source: request.source.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_from_host_tree() {
        let ftp = FtpSimConnector::new();
        ftp.host("warehouse.example.com")
            .put_text("exports/sales.csv", "a,b\n1,2\n");
        let p = ftp
            .fetch(&FetchRequest::for_source(
                "ftp://warehouse.example.com/exports/sales.csv",
            ))
            .unwrap();
        match p {
            Payload::Bytes { data, format_hint } => {
                assert_eq!(data, b"a,b\n1,2\n");
                assert_eq!(format_hint.as_deref(), Some("csv"));
            }
            _ => panic!("expected bytes"),
        }
    }

    #[test]
    fn unknown_host_or_path() {
        let ftp = FtpSimConnector::new();
        ftp.host("h").put_text("x.csv", "a\n");
        assert!(matches!(
            ftp.fetch(&FetchRequest::for_source("ftp://other/x.csv")),
            Err(ConnectorError::NotFound { .. })
        ));
        assert!(matches!(
            ftp.fetch(&FetchRequest::for_source("ftp://h/missing.csv")),
            Err(ConnectorError::NotFound { .. })
        ));
    }

    #[test]
    fn malformed_urls_rejected() {
        let ftp = FtpSimConnector::new();
        for bad in ["http://h/x", "ftp://", "ftp://hostonly", "ftp:///path"] {
            assert!(
                matches!(
                    ftp.fetch(&FetchRequest::for_source(bad)),
                    Err(ConnectorError::BadConfig(_))
                ),
                "{bad}"
            );
        }
    }
}
