//! Simulated JDBC connector: an in-memory database of named tables plus a
//! minimal `SELECT` evaluator for the paper's "ad-hoc queries over JDBC"
//! (§3.2).
//!
//! Source syntax: `jdbc:si://<database>/<table>` fetches a whole table;
//! adding a `query` parameter evaluates
//! `SELECT <cols|*> FROM <table> [WHERE <expr>] [LIMIT <n>]` with the
//! expression language of the tabular crate.

use crate::connector::{Connector, FetchRequest, Payload};
use crate::error::{ConnectorError, Result};
use parking_lot::RwLock;
use shareinsights_tabular::expr::parse_expr;
use shareinsights_tabular::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deterministic in-process database server.
#[derive(Clone, Default)]
pub struct JdbcSimConnector {
    databases: Arc<RwLock<BTreeMap<String, BTreeMap<String, Table>>>>,
}

impl JdbcSimConnector {
    /// Empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create/replace a table in a database.
    pub fn put_table(&self, database: &str, table: &str, data: Table) {
        self.databases
            .write()
            .entry(database.to_string())
            .or_default()
            .insert(table.to_string(), data);
    }

    /// List tables in a database.
    pub fn tables(&self, database: &str) -> Vec<String> {
        self.databases
            .read()
            .get(database)
            .map(|db| db.keys().cloned().collect())
            .unwrap_or_default()
    }

    fn split_url(url: &str) -> Result<(String, String)> {
        let rest = url
            .strip_prefix("jdbc:si://")
            .ok_or_else(|| ConnectorError::BadConfig(format!("not a jdbc:si url: '{url}'")))?;
        let (db, table) = rest.split_once('/').ok_or_else(|| {
            ConnectorError::BadConfig(format!("jdbc url needs db/table: '{url}'"))
        })?;
        if db.is_empty() || table.is_empty() {
            return Err(ConnectorError::BadConfig(format!(
                "jdbc url malformed: '{url}'"
            )));
        }
        Ok((db.to_string(), table.to_string()))
    }

    /// Evaluate `SELECT cols FROM table [WHERE expr] [LIMIT n]` against a
    /// table. The `FROM` table name must match `table_name` (the one the
    /// URL addressed).
    fn run_query(query: &str, table_name: &str, table: &Table) -> Result<Table> {
        let q = query.trim();
        let lower = q.to_ascii_lowercase();
        if !lower.starts_with("select ") {
            return Err(ConnectorError::BadConfig(format!(
                "only SELECT queries are supported, got '{q}'"
            )));
        }
        let from_pos = lower
            .find(" from ")
            .ok_or_else(|| ConnectorError::BadConfig("SELECT needs FROM".into()))?;
        let cols_part = q[7..from_pos].trim();
        let after_from = &q[from_pos + 6..];
        let lower_after = after_from.to_ascii_lowercase();

        let (table_part, rest) = match lower_after.find(" where ") {
            Some(p) => (&after_from[..p], Some(&after_from[p + 7..])),
            None => match lower_after.find(" limit ") {
                Some(p) => (&after_from[..p], Some(&after_from[p..])),
                None => (after_from, None),
            },
        };
        if table_part.trim() != table_name {
            return Err(ConnectorError::BadConfig(format!(
                "query FROM '{}' does not match source table '{table_name}'",
                table_part.trim()
            )));
        }

        // Split optional WHERE / LIMIT from the remainder.
        let mut where_expr: Option<&str> = None;
        let mut limit: Option<usize> = None;
        if let Some(rest) = rest {
            let rl = rest.to_ascii_lowercase();
            if let Some(stripped) = rl
                .strip_prefix(" limit ")
                .or_else(|| rl.strip_prefix("limit "))
            {
                limit = Some(
                    stripped
                        .trim()
                        .parse()
                        .map_err(|_| ConnectorError::BadConfig("LIMIT needs a number".into()))?,
                );
            } else {
                match rl.find(" limit ") {
                    Some(p) => {
                        where_expr = Some(&rest[..p]);
                        limit = Some(rest[p + 7..].trim().parse().map_err(|_| {
                            ConnectorError::BadConfig("LIMIT needs a number".into())
                        })?);
                    }
                    None => where_expr = Some(rest),
                }
            }
        }

        let mut out = table.clone();
        if let Some(w) = where_expr {
            let expr =
                parse_expr(w.trim()).map_err(|e| ConnectorError::BadConfig(e.to_string()))?;
            out = shareinsights_tabular::ops::filter_by_expr(&out, &expr)?;
        }
        if cols_part != "*" {
            let cols: Vec<String> = cols_part
                .split(',')
                .map(|c| c.trim().to_string())
                .filter(|c| !c.is_empty())
                .collect();
            out = out.project(&cols)?;
        }
        if let Some(n) = limit {
            out = out.limit(n);
        }
        Ok(out)
    }
}

impl Connector for JdbcSimConnector {
    fn protocol(&self) -> &str {
        "jdbc"
    }

    fn fetch(&self, request: &FetchRequest) -> Result<Payload> {
        let (db, table_name) = Self::split_url(&request.source)?;
        let databases = self.databases.read();
        let table = databases
            .get(&db)
            .and_then(|d| d.get(&table_name))
            .ok_or_else(|| ConnectorError::NotFound {
                protocol: "jdbc".into(),
                source: request.source.clone(),
            })?;
        match request.params.get("query") {
            Some(q) => Ok(Payload::Table(Self::run_query(q, &table_name, table)?)),
            None => Ok(Payload::Table(table.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;

    fn seed() -> JdbcSimConnector {
        let jdbc = JdbcSimConnector::new();
        jdbc.put_table(
            "warehouse",
            "sales",
            Table::from_rows(
                &["region", "units", "revenue"],
                &[
                    row!["north", 10i64, 100.0],
                    row!["south", 5i64, 50.0],
                    row!["north", 7i64, 70.0],
                ],
            )
            .unwrap(),
        );
        jdbc
    }

    #[test]
    fn whole_table_fetch() {
        let jdbc = seed();
        match jdbc
            .fetch(&FetchRequest::for_source("jdbc:si://warehouse/sales"))
            .unwrap()
        {
            Payload::Table(t) => assert_eq!(t.num_rows(), 3),
            _ => panic!("expected table"),
        }
        assert_eq!(jdbc.tables("warehouse"), vec!["sales"]);
    }

    #[test]
    fn adhoc_select_where_limit() {
        let jdbc = seed();
        let req = FetchRequest::for_source("jdbc:si://warehouse/sales").with_param(
            "query",
            "SELECT region, units FROM sales WHERE units > 6 LIMIT 1",
        );
        match jdbc.fetch(&req).unwrap() {
            Payload::Table(t) => {
                assert_eq!(t.num_rows(), 1);
                assert_eq!(t.schema().names(), vec!["region", "units"]);
                assert_eq!(t.value(0, "units").unwrap().as_int(), Some(10));
            }
            _ => panic!("expected table"),
        }
    }

    #[test]
    fn select_star_and_plain_where() {
        let jdbc = seed();
        let req = FetchRequest::for_source("jdbc:si://warehouse/sales")
            .with_param("query", "select * from sales where region == 'north'");
        match jdbc.fetch(&req).unwrap() {
            Payload::Table(t) => assert_eq!(t.num_rows(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn bad_queries_rejected() {
        let jdbc = seed();
        for (q, msg) in [
            ("DELETE FROM sales", "only SELECT"),
            ("SELECT * FROM other", "does not match"),
            ("SELECT *", "needs FROM"),
            ("SELECT nope FROM sales", "not found"),
            ("SELECT * FROM sales LIMIT abc", "needs a number"),
        ] {
            let req = FetchRequest::for_source("jdbc:si://warehouse/sales").with_param("query", q);
            let err = jdbc.fetch(&req).unwrap_err();
            assert!(err.to_string().contains(msg), "{q}: {err}");
        }
    }

    #[test]
    fn unknown_db_or_table() {
        let jdbc = seed();
        assert!(matches!(
            jdbc.fetch(&FetchRequest::for_source("jdbc:si://other/sales")),
            Err(ConnectorError::NotFound { .. })
        ));
        assert!(matches!(
            jdbc.fetch(&FetchRequest::for_source("jdbc:si://warehouse/none")),
            Err(ConnectorError::NotFound { .. })
        ));
        assert!(matches!(
            jdbc.fetch(&FetchRequest::for_source("jdbc:si://bad")),
            Err(ConnectorError::BadConfig(_))
        ));
    }
}
