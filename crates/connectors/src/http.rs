//! Simulated HTTP/S connector.
//!
//! Figure 6 of the paper configures a data object directly against a
//! provider API (`protocol: http`, `request_type: get`, `http_headers:
//! X-Access-Key`). This connector reproduces that surface against an
//! in-process route table: deterministic, offline, and able to exercise
//! header checks, query-string matching and error paths.

use crate::connector::{infer_format_from_source, Connector, FetchRequest, Payload};
use crate::error::{ConnectorError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One registered route.
struct Route {
    /// URL prefix matched against the request source (query string in the
    /// route must be a subset of the request's).
    url_prefix: String,
    /// Headers that must be present with these exact values.
    required_headers: BTreeMap<String, String>,
    /// Allowed request type (`get`/`post`); `None` = any.
    request_type: Option<String>,
    /// Response body.
    body: Vec<u8>,
    /// Format hint for the decoder (a content-type stand-in).
    format_hint: Option<String>,
}

/// A deterministic in-process HTTP service.
#[derive(Clone, Default)]
pub struct HttpSimConnector {
    routes: Arc<RwLock<Vec<Route>>>,
    requests_served: Arc<AtomicUsize>,
}

impl HttpSimConnector {
    /// Empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a plain route.
    pub fn route(
        &self,
        url_prefix: impl Into<String>,
        body: impl Into<Vec<u8>>,
        format_hint: Option<&str>,
    ) {
        self.routes.write().push(Route {
            url_prefix: url_prefix.into(),
            required_headers: BTreeMap::new(),
            request_type: None,
            body: body.into(),
            format_hint: format_hint.map(str::to_string),
        });
    }

    /// Register a route requiring headers (e.g. `X-Access-Key`).
    pub fn route_with_auth(
        &self,
        url_prefix: impl Into<String>,
        required_headers: &[(&str, &str)],
        body: impl Into<Vec<u8>>,
        format_hint: Option<&str>,
    ) {
        self.routes.write().push(Route {
            url_prefix: url_prefix.into(),
            required_headers: required_headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            request_type: None,
            body: body.into(),
            format_hint: format_hint.map(str::to_string),
        });
    }

    /// Total requests served (connector-level observability).
    pub fn requests_served(&self) -> usize {
        self.requests_served.load(Ordering::Relaxed)
    }
}

impl Connector for HttpSimConnector {
    fn protocol(&self) -> &str {
        "http"
    }

    fn fetch(&self, request: &FetchRequest) -> Result<Payload> {
        let routes = self.routes.read();
        let url = request.source.trim();
        let matched = routes
            .iter()
            .find(|r| url.starts_with(&r.url_prefix))
            .ok_or_else(|| ConnectorError::NotFound {
                protocol: "http".into(),
                source: url.to_string(),
            })?;
        for (k, v) in &matched.required_headers {
            match request.headers.get(k) {
                Some(got) if got == v => {}
                Some(_) => {
                    return Err(ConnectorError::Rejected {
                        protocol: "http".into(),
                        reason: format!("invalid value for header {k}"),
                    })
                }
                None => {
                    return Err(ConnectorError::Rejected {
                        protocol: "http".into(),
                        reason: format!("missing required header {k}"),
                    })
                }
            }
        }
        if let (Some(want), Some(got)) = (&matched.request_type, &request.request_type) {
            if !want.eq_ignore_ascii_case(got) {
                return Err(ConnectorError::Rejected {
                    protocol: "http".into(),
                    reason: format!("request_type must be {want}"),
                });
            }
        }
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        Ok(Payload::Bytes {
            data: matched.body.clone(),
            format_hint: matched
                .format_hint
                .clone()
                .or_else(|| infer_format_from_source(url).map(str::to_string)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STACK_URL: &str =
        "https://api.stackexchange.com/2.2/questions?order=desc&sort=activity&site=stackoverflow";

    #[test]
    fn serves_registered_route() {
        let http = HttpSimConnector::new();
        http.route(
            "https://api.stackexchange.com/2.2/questions",
            r#"{"items": [{"title": "q1"}]}"#,
            Some("json"),
        );
        let p = http.fetch(&FetchRequest::for_source(STACK_URL)).unwrap();
        match p {
            Payload::Bytes { data, format_hint } => {
                assert!(String::from_utf8(data).unwrap().contains("q1"));
                assert_eq!(format_hint.as_deref(), Some("json"));
            }
            _ => panic!("expected bytes"),
        }
        assert_eq!(http.requests_served(), 1);
    }

    #[test]
    fn auth_headers_enforced() {
        // The figure-6 configuration sends X-Access-Key.
        let http = HttpSimConnector::new();
        http.route_with_auth(
            "https://api.stackexchange.com/",
            &[("X-Access-Key", "XXX")],
            "{}",
            Some("json"),
        );
        let err = http
            .fetch(&FetchRequest::for_source(STACK_URL))
            .unwrap_err();
        assert!(err.to_string().contains("missing required header"));

        let err = http
            .fetch(&FetchRequest::for_source(STACK_URL).with_header("X-Access-Key", "wrong"))
            .unwrap_err();
        assert!(err.to_string().contains("invalid value"));

        assert!(http
            .fetch(&FetchRequest::for_source(STACK_URL).with_header("X-Access-Key", "XXX"))
            .is_ok());
    }

    #[test]
    fn unknown_url_is_not_found() {
        let http = HttpSimConnector::new();
        let err = http
            .fetch(&FetchRequest::for_source("https://other.example.com/"))
            .unwrap_err();
        assert!(matches!(err, ConnectorError::NotFound { .. }));
        assert_eq!(http.requests_served(), 0, "rejections don't count");
    }

    #[test]
    fn first_matching_route_wins() {
        let http = HttpSimConnector::new();
        http.route("https://h/a", "first", None);
        http.route("https://h/", "second", None);
        match http
            .fetch(&FetchRequest::for_source("https://h/a/b"))
            .unwrap()
        {
            Payload::Bytes { data, .. } => assert_eq!(data, b"first"),
            _ => panic!(),
        }
    }
}
