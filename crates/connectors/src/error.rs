//! Connector-layer errors.

use std::fmt;

/// Result alias for connector operations.
pub type Result<T, E = ConnectorError> = std::result::Result<T, E>;

/// Errors raised when fetching or decoding a data object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectorError {
    /// No connector is registered for the requested protocol.
    UnknownProtocol(String),
    /// No format decoder is registered for the requested format.
    UnknownFormat(String),
    /// The source (file, URL, table) was not found.
    NotFound {
        /// Protocol that performed the lookup.
        protocol: String,
        /// The source string.
        source: String,
    },
    /// The remote service rejected the request (simulated 4xx).
    Rejected {
        /// Protocol.
        protocol: String,
        /// Why (e.g. "missing header X-Access-Key").
        reason: String,
    },
    /// Decoding the payload failed.
    Decode(String),
    /// The data-object configuration is incomplete or contradictory.
    BadConfig(String),
}

impl fmt::Display for ConnectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectorError::UnknownProtocol(p) => write!(f, "no connector for protocol '{p}'"),
            ConnectorError::UnknownFormat(p) => write!(f, "no decoder for format '{p}'"),
            ConnectorError::NotFound { protocol, source } => {
                write!(f, "{protocol}: source '{source}' not found")
            }
            ConnectorError::Rejected { protocol, reason } => {
                write!(f, "{protocol}: request rejected: {reason}")
            }
            ConnectorError::Decode(m) => write!(f, "payload decode failed: {m}"),
            ConnectorError::BadConfig(m) => write!(f, "bad data object configuration: {m}"),
        }
    }
}

impl std::error::Error for ConnectorError {}

impl From<shareinsights_tabular::TabularError> for ConnectorError {
    fn from(e: shareinsights_tabular::TabularError) -> Self {
        ConnectorError::Decode(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let cases = [
            ConnectorError::UnknownProtocol("gopher".into()),
            ConnectorError::UnknownFormat("yaml".into()),
            ConnectorError::NotFound {
                protocol: "file".into(),
                source: "x.csv".into(),
            },
            ConnectorError::Rejected {
                protocol: "http".into(),
                reason: "missing header".into(),
            },
            ConnectorError::Decode("bad json".into()),
            ConnectorError::BadConfig("no source".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
