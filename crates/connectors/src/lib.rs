//! # shareinsights-connectors
//!
//! Protocol connectors and data formats (§3.2 + §4.2 of the paper).
//!
//! The platform "provides popular protocol connectors — such as File (local,
//! remote), HTTP/S, FTP, JDBC — and recognizes popular data payload formats
//! such as CSV, AVRO, XML and JSON documents". The [`Connector`] and format
//! traits here are the §4.2 extension points; the built-ins are:
//!
//! * [`file::FileConnector`] — reads from a dashboard's data folder (the
//!   folder the paper's SFTP interface uploads into, §4.3.2), backed by an
//!   in-memory [`file::DataFolder`];
//! * [`http::HttpSimConnector`] — a deterministic in-process HTTP service:
//!   fixture routes, required-header checks (`X-Access-Key`), query-string
//!   matching. Stands in for live provider APIs (offline environment; the
//!   connector surface — URL, headers, `request_type` — is fully exercised);
//! * [`ftp::FtpSimConnector`] — per-host file trees;
//! * [`jdbc::JdbcSimConnector`] — an in-memory database with named tables
//!   and a minimal `SELECT` evaluator for the paper's "ad-hoc queries over
//!   JDBC".
//!
//! [`catalog::Catalog`] bundles registries of both and resolves a flow
//! file's data-object configuration (protocol + source + format + schema)
//! into a [`Table`](shareinsights_tabular::Table) — the call the engine
//! makes for every source data object.

pub mod catalog;
pub mod connector;
pub mod error;
pub mod file;
pub mod format;
pub mod ftp;
pub mod http;
pub mod jdbc;

pub use catalog::Catalog;
pub use connector::{Connector, FetchRequest, Payload};
pub use error::{ConnectorError, Result};
pub use format::{DataFormat, FormatSpec};
