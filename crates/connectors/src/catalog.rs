//! The [`Catalog`]: connector + format registries and the resolution path
//! from a flow-file data-object configuration to a [`Table`].

use crate::connector::{infer_protocol, Connector, FetchRequest, Payload};
use crate::error::{ConnectorError, Result};
use crate::file::{DataFolder, FileConnector};
use crate::format::{CsvFormat, DataFormat, FormatSpec, JsonFormat, RecordFormat, XmlFormat};
use crate::ftp::FtpSimConnector;
use crate::http::HttpSimConnector;
use crate::jdbc::JdbcSimConnector;
use parking_lot::RwLock;
use shareinsights_tabular::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A data-object configuration, decoupled from the flowfile crate's AST so
/// the connector layer stays independent (the engine converts between the
/// two).
#[derive(Debug, Clone, Default)]
pub struct DataObjectConfig {
    /// Declared columns (bare names).
    pub columns: Vec<String>,
    /// Optional `=>` paths aligned with `columns`.
    pub paths: Vec<Option<String>>,
    /// `source:` string.
    pub source: Option<String>,
    /// Explicit `protocol:`; inferred from `source` when absent.
    pub protocol: Option<String>,
    /// Explicit `format:`; inferred from the payload hint when absent.
    pub format: Option<String>,
    /// CSV `separator:`.
    pub separator: Option<char>,
    /// XML `record_element:`.
    pub record_element: Option<String>,
    /// `request_type:` for HTTP.
    pub request_type: Option<String>,
    /// `http_headers:`.
    pub headers: BTreeMap<String, String>,
    /// Extra connector parameters (e.g. `query:` for JDBC).
    pub params: BTreeMap<String, String>,
}

/// Registries of connectors and formats — the extension surface of §4.2.
#[derive(Clone)]
pub struct Catalog {
    connectors: Arc<RwLock<BTreeMap<String, Arc<dyn Connector>>>>,
    formats: Arc<RwLock<BTreeMap<String, Arc<dyn DataFormat>>>>,
    folder: DataFolder,
    http: HttpSimConnector,
    ftp: FtpSimConnector,
    jdbc: JdbcSimConnector,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// A catalog with all built-in connectors and formats registered.
    pub fn new() -> Self {
        let folder = DataFolder::new();
        let http = HttpSimConnector::new();
        let ftp = FtpSimConnector::new();
        let jdbc = JdbcSimConnector::new();
        let cat = Catalog {
            connectors: Arc::new(RwLock::new(BTreeMap::new())),
            formats: Arc::new(RwLock::new(BTreeMap::new())),
            folder: folder.clone(),
            http: http.clone(),
            ftp: ftp.clone(),
            jdbc: jdbc.clone(),
        };
        cat.register_connector(Arc::new(FileConnector::new(folder)));
        cat.register_connector(Arc::new(http));
        cat.register_connector(Arc::new(ftp));
        cat.register_connector(Arc::new(jdbc));
        cat.register_format(Arc::new(CsvFormat));
        cat.register_format(Arc::new(JsonFormat));
        cat.register_format(Arc::new(XmlFormat));
        cat.register_format(Arc::new(RecordFormat));
        cat
    }

    /// Register (or replace) a connector — the Connectors extension API.
    pub fn register_connector(&self, connector: Arc<dyn Connector>) {
        self.connectors
            .write()
            .insert(connector.protocol().to_string(), connector);
    }

    /// Register (or replace) a format — the Data formats extension API.
    pub fn register_format(&self, format: Arc<dyn DataFormat>) {
        self.formats
            .write()
            .insert(format.name().to_string(), format);
    }

    /// Registered protocol names.
    pub fn protocols(&self) -> Vec<String> {
        self.connectors.read().keys().cloned().collect()
    }

    /// Registered format names.
    pub fn formats(&self) -> Vec<String> {
        self.formats.read().keys().cloned().collect()
    }

    /// The dashboard data folder served by the file connector.
    pub fn data_folder(&self) -> &DataFolder {
        &self.folder
    }

    /// The simulated HTTP service (register fixture routes here).
    pub fn http(&self) -> &HttpSimConnector {
        &self.http
    }

    /// The simulated FTP service.
    pub fn ftp(&self) -> &FtpSimConnector {
        &self.ftp
    }

    /// The simulated JDBC service.
    pub fn jdbc(&self) -> &JdbcSimConnector {
        &self.jdbc
    }

    /// Resolve a data-object configuration to a table: pick the connector,
    /// fetch, pick the decoder, decode against the declared schema.
    pub fn load(&self, cfg: &DataObjectConfig) -> Result<Table> {
        let source = cfg.source.as_deref().ok_or_else(|| {
            ConnectorError::BadConfig("data object has no 'source:' configured".into())
        })?;
        let protocol = cfg
            .protocol
            .clone()
            .unwrap_or_else(|| infer_protocol(source).to_string());
        let connector = self
            .connectors
            .read()
            .get(&protocol)
            .cloned()
            .ok_or_else(|| ConnectorError::UnknownProtocol(protocol.clone()))?;

        let request = FetchRequest {
            source: source.to_string(),
            request_type: cfg.request_type.clone(),
            headers: cfg.headers.clone(),
            params: cfg.params.clone(),
        };
        let payload = connector.fetch(&request)?;
        match payload {
            Payload::Table(t) => {
                if cfg.columns.is_empty() {
                    Ok(t)
                } else {
                    Ok(t.project(&cfg.columns)?)
                }
            }
            Payload::Bytes { data, format_hint } => {
                let format_name = cfg.format.clone().or(format_hint).ok_or_else(|| {
                    ConnectorError::BadConfig(format!(
                        "cannot determine format for '{source}'; set 'format:'"
                    ))
                })?;
                let format = self
                    .formats
                    .read()
                    .get(&format_name)
                    .cloned()
                    .ok_or_else(|| ConnectorError::UnknownFormat(format_name.clone()))?;
                let spec = FormatSpec {
                    columns: cfg.columns.clone(),
                    paths: if cfg.paths.len() == cfg.columns.len() {
                        cfg.paths.clone()
                    } else {
                        vec![None; cfg.columns.len()]
                    },
                    separator: cfg.separator,
                    has_header: true,
                    record_element: cfg.record_element.clone(),
                };
                format.decode(&data, &spec)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;

    #[test]
    fn loads_csv_from_data_folder() {
        // The figure-4 configuration: csv file in the dashboard data folder.
        let cat = Catalog::new();
        cat.data_folder()
            .put_text("stackoverflow.csv", "p,q,a,t\npig,1,2,big\n");
        let cfg = DataObjectConfig {
            columns: vec![
                "project".into(),
                "question".into(),
                "answer".into(),
                "tags".into(),
            ],
            source: Some("stackoverflow.csv".into()),
            format: Some("csv".into()),
            separator: Some(','),
            ..Default::default()
        };
        let t = cat.load(&cfg).unwrap();
        assert_eq!(
            t.schema().names(),
            vec!["project", "question", "answer", "tags"]
        );
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn loads_json_api_with_headers() {
        // The figure-6 configuration: provider API with X-Access-Key.
        let cat = Catalog::new();
        cat.http().route_with_auth(
            "https://api.stackexchange.com/2.2/questions",
            &[("X-Access-Key", "XXX")],
            r#"{"items": [{"title": "how to pig", "tags": ["pig"]}]}"#,
            Some("json"),
        );
        let mut cfg = DataObjectConfig {
            columns: vec!["question".into(), "tags".into()],
            paths: vec![Some("title".into()), Some("tags".into())],
            source: Some(
                "https://api.stackexchange.com/2.2/questions?order=desc&site=stackoverflow".into(),
            ),
            protocol: Some("http".into()),
            format: Some("json".into()),
            request_type: Some("get".into()),
            ..Default::default()
        };
        cfg.headers.insert("X-Access-Key".into(), "XXX".into());
        let t = cat.load(&cfg).unwrap();
        assert_eq!(t.value(0, "question").unwrap().to_string(), "how to pig");

        cfg.headers.clear();
        assert!(cat.load(&cfg).is_err(), "auth enforced");
    }

    #[test]
    fn loads_jdbc_table_with_projection() {
        let cat = Catalog::new();
        cat.jdbc().put_table(
            "db",
            "t",
            Table::from_rows(&["a", "b"], &[row![1i64, 2i64]]).unwrap(),
        );
        let cfg = DataObjectConfig {
            columns: vec!["b".into()],
            source: Some("jdbc:si://db/t".into()),
            ..Default::default()
        };
        let t = cat.load(&cfg).unwrap();
        assert_eq!(t.schema().names(), vec!["b"]);
    }

    #[test]
    fn protocol_and_format_inference() {
        let cat = Catalog::new();
        cat.data_folder().put_text("d.csv", "x\n5\n");
        let cfg = DataObjectConfig {
            source: Some("d.csv".into()),
            ..Default::default()
        };
        let t = cat.load(&cfg).unwrap();
        assert_eq!(t.value(0, "x").unwrap().as_int(), Some(5));
    }

    #[test]
    fn missing_source_and_unknown_names() {
        let cat = Catalog::new();
        assert!(cat.load(&DataObjectConfig::default()).is_err());
        let cfg = DataObjectConfig {
            source: Some("x".into()),
            protocol: Some("gopher".into()),
            ..Default::default()
        };
        assert!(matches!(
            cat.load(&cfg),
            Err(ConnectorError::UnknownProtocol(_))
        ));
        cat.data_folder().put_text("noext", "a\n1\n");
        let cfg = DataObjectConfig {
            source: Some("noext".into()),
            ..Default::default()
        };
        assert!(cat.load(&cfg).unwrap_err().to_string().contains("format"));
    }

    #[test]
    fn custom_format_extension() {
        // §4.2: users can bring their own data formats.
        struct UpperCsv;
        impl DataFormat for UpperCsv {
            fn name(&self) -> &str {
                "uppercsv"
            }
            fn decode(&self, bytes: &[u8], spec: &FormatSpec) -> Result<Table> {
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| ConnectorError::Decode("utf8".into()))?
                    .to_uppercase();
                CsvFormat.decode(text.as_bytes(), spec)
            }
        }
        let cat = Catalog::new();
        cat.register_format(Arc::new(UpperCsv));
        cat.data_folder().put_text("x.custom", "name\npig\n");
        let cfg = DataObjectConfig {
            source: Some("x.custom".into()),
            format: Some("uppercsv".into()),
            ..Default::default()
        };
        let t = cat.load(&cfg).unwrap();
        assert_eq!(t.value(0, "NAME").unwrap().to_string(), "PIG");
    }
}
