//! File connector over a dashboard's data folder.
//!
//! §4.3.2: "users can upload dashboard data to a 'data' folder. All data
//! files in this folder can be referred in the data object configuration
//! using relative paths from this data folder." [`DataFolder`] is that
//! folder — in-memory for determinism, loadable from a real directory when
//! examples want disk fixtures.

use crate::connector::{infer_format_from_source, Connector, FetchRequest, Payload};
use crate::error::{ConnectorError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An in-memory file tree: relative path → bytes. Cheap to clone (shared).
#[derive(Debug, Clone, Default)]
pub struct DataFolder {
    files: Arc<RwLock<BTreeMap<String, Vec<u8>>>>,
}

impl DataFolder {
    /// Empty folder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a text file.
    pub fn put_text(&self, path: impl Into<String>, content: impl Into<String>) {
        self.files
            .write()
            .insert(normalize(&path.into()), content.into().into_bytes());
    }

    /// Store a binary file.
    pub fn put_bytes(&self, path: impl Into<String>, content: Vec<u8>) {
        self.files.write().insert(normalize(&path.into()), content);
    }

    /// Fetch a file's bytes.
    pub fn get(&self, path: &str) -> Option<Vec<u8>> {
        self.files.read().get(&normalize(path)).cloned()
    }

    /// List stored paths.
    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Number of stored files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// True when no files are stored.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }

    /// Load every regular file under a real directory (relative paths).
    /// Used by examples that ship disk fixtures.
    pub fn from_dir(dir: &std::path::Path) -> std::io::Result<Self> {
        let folder = DataFolder::new();
        fn walk(
            folder: &DataFolder,
            base: &std::path::Path,
            dir: &std::path::Path,
        ) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    walk(folder, base, &path)?;
                } else {
                    let rel = path
                        .strip_prefix(base)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .to_string();
                    folder.put_bytes(rel, std::fs::read(&path)?);
                }
            }
            Ok(())
        }
        walk(&folder, dir, dir)?;
        Ok(folder)
    }
}

fn normalize(path: &str) -> String {
    path.trim().trim_start_matches("./").to_string()
}

/// Connector serving `protocol: file` data objects from a [`DataFolder`].
#[derive(Debug, Clone)]
pub struct FileConnector {
    folder: DataFolder,
}

impl FileConnector {
    /// Wrap a folder.
    pub fn new(folder: DataFolder) -> Self {
        FileConnector { folder }
    }

    /// The folder served.
    pub fn folder(&self) -> &DataFolder {
        &self.folder
    }
}

impl Connector for FileConnector {
    fn protocol(&self) -> &str {
        "file"
    }

    fn fetch(&self, request: &FetchRequest) -> Result<Payload> {
        match self.folder.get(&request.source) {
            Some(data) => Ok(Payload::Bytes {
                data,
                format_hint: infer_format_from_source(&request.source).map(str::to_string),
            }),
            None => Err(ConnectorError::NotFound {
                protocol: "file".into(),
                source: request.source.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let folder = DataFolder::new();
        folder.put_text("stackoverflow.csv", "a,b\n1,2\n");
        folder.put_bytes("bin/data.rec", vec![1, 2, 3]);
        assert_eq!(folder.len(), 2);
        assert_eq!(folder.get("stackoverflow.csv").unwrap(), b"a,b\n1,2\n");
        assert_eq!(folder.get("./stackoverflow.csv").unwrap(), b"a,b\n1,2\n");
        assert!(folder.get("missing.csv").is_none());
        assert_eq!(folder.list(), vec!["bin/data.rec", "stackoverflow.csv"]);
    }

    #[test]
    fn clones_share_storage() {
        let a = DataFolder::new();
        let b = a.clone();
        a.put_text("x", "1");
        assert!(b.get("x").is_some(), "clone sees writes");
    }

    #[test]
    fn connector_fetch_with_hint() {
        let folder = DataFolder::new();
        folder.put_text("data/tweets.json", "{}");
        let c = FileConnector::new(folder);
        assert_eq!(c.protocol(), "file");
        match c
            .fetch(&FetchRequest::for_source("data/tweets.json"))
            .unwrap()
        {
            Payload::Bytes { data, format_hint } => {
                assert_eq!(data, b"{}");
                assert_eq!(format_hint.as_deref(), Some("json"));
            }
            _ => panic!("expected bytes"),
        }
        let err = c.fetch(&FetchRequest::for_source("nope.csv")).unwrap_err();
        assert!(matches!(err, ConnectorError::NotFound { .. }));
    }
}
