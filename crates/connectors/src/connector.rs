//! The [`Connector`] trait — §4.2's "Connectors API".

use crate::error::Result;
use shareinsights_tabular::Table;
use std::collections::BTreeMap;

/// A fetch request assembled from a data object's configuration.
#[derive(Debug, Clone, Default)]
pub struct FetchRequest {
    /// The `source:` string (path, URL, `db/table`, …).
    pub source: String,
    /// `request_type:` (`get`/`post`; HTTP only).
    pub request_type: Option<String>,
    /// `http_headers:` key/value pairs.
    pub headers: BTreeMap<String, String>,
    /// Free-form extra parameters (`query:` for JDBC, …).
    pub params: BTreeMap<String, String>,
}

impl FetchRequest {
    /// A request with just a source.
    pub fn for_source(source: impl Into<String>) -> Self {
        FetchRequest {
            source: source.into(),
            ..Default::default()
        }
    }

    /// Add a header.
    pub fn with_header(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.headers.insert(k.into(), v.into());
        self
    }

    /// Add a parameter.
    pub fn with_param(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.params.insert(k.into(), v.into());
        self
    }
}

/// What a connector returns: raw bytes to be decoded by a data format, or
/// an already-structured table (JDBC).
#[derive(Debug, Clone)]
pub enum Payload {
    /// Raw bytes plus an optional format hint (e.g. from a content type or
    /// file extension).
    Bytes {
        /// The payload body.
        data: Vec<u8>,
        /// Format hint (`csv`, `json`, `xml`, `record`).
        format_hint: Option<String>,
    },
    /// A structured table (already decoded by the connector).
    Table(Table),
}

impl Payload {
    /// Bytes payload with a hint.
    pub fn bytes(data: impl Into<Vec<u8>>, hint: Option<&str>) -> Payload {
        Payload::Bytes {
            data: data.into(),
            format_hint: hint.map(str::to_string),
        }
    }

    /// Text payload with a hint.
    pub fn text(data: impl Into<String>, hint: Option<&str>) -> Payload {
        Payload::bytes(data.into().into_bytes(), hint)
    }
}

/// A protocol connector: resolves a [`FetchRequest`] to a [`Payload`].
///
/// Implementations must be `Send + Sync`; the batch executor fetches
/// sources from worker threads.
pub trait Connector: Send + Sync {
    /// Protocol name this connector serves (`file`, `http`, `ftp`, `jdbc`).
    fn protocol(&self) -> &str;

    /// Perform the fetch.
    fn fetch(&self, request: &FetchRequest) -> Result<Payload>;
}

/// Infer a protocol from a source string when the data object doesn't name
/// one explicitly: URL schemes win, otherwise `file`.
pub fn infer_protocol(source: &str) -> &'static str {
    let s = source.trim();
    if s.starts_with("http://") || s.starts_with("https://") {
        "http"
    } else if s.starts_with("ftp://") {
        "ftp"
    } else if s.starts_with("jdbc:") {
        "jdbc"
    } else {
        "file"
    }
}

/// Infer a format hint from a source path's extension.
pub fn infer_format_from_source(source: &str) -> Option<&'static str> {
    let path = source.split(['?', '#']).next().unwrap_or(source);
    let ext = path.rsplit('.').next()?.to_ascii_lowercase();
    match ext.as_str() {
        "csv" | "tsv" => Some("csv"),
        "json" | "ndjson" => Some("json"),
        "xml" => Some("xml"),
        "sir" | "rec" | "avro" => Some("record"),
        "txt" => Some("csv"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_inference() {
        assert_eq!(infer_protocol("data.csv"), "file");
        assert_eq!(infer_protocol("https://api.example.com/x"), "http");
        assert_eq!(infer_protocol("ftp://host/data.xml"), "ftp");
        assert_eq!(infer_protocol("jdbc:si://warehouse/sales"), "jdbc");
    }

    #[test]
    fn format_inference() {
        assert_eq!(infer_format_from_source("a/b/data.CSV"), Some("csv"));
        assert_eq!(infer_format_from_source("tweets.json?x=1"), Some("json"));
        assert_eq!(infer_format_from_source("dump.xml"), Some("xml"));
        assert_eq!(infer_format_from_source("t.rec"), Some("record"));
        assert_eq!(infer_format_from_source("noext"), None);
    }

    #[test]
    fn request_builder() {
        let r = FetchRequest::for_source("x")
            .with_header("X-Access-Key", "k")
            .with_param("query", "select *");
        assert_eq!(r.source, "x");
        assert_eq!(r.headers.get("X-Access-Key").map(String::as_str), Some("k"));
        assert_eq!(r.params.get("query").map(String::as_str), Some("select *"));
    }
}
