//! Data-format decoders — §4.2's "Data formats API".
//!
//! A [`DataFormat`] turns raw payload bytes plus the data object's schema
//! declaration into a [`Table`]. The built-ins wrap the readers in
//! `shareinsights_tabular::io`; extensions register additional
//! implementations on the [`crate::Catalog`].

use crate::error::{ConnectorError, Result};
use shareinsights_tabular::io::csv::{read_csv, CsvOptions};
use shareinsights_tabular::io::json::{read_json_records, PathMapping};
use shareinsights_tabular::io::record::read_records;
use shareinsights_tabular::io::xml::read_xml_records;
use shareinsights_tabular::Table;

/// Decode-time hints extracted from the data object's configuration.
#[derive(Debug, Clone)]
pub struct FormatSpec {
    /// Declared column names (schema list in the D section). Empty = take
    /// whatever the payload provides.
    pub columns: Vec<String>,
    /// `column => path` mappings for hierarchical payloads; aligned with
    /// `columns` (None for plain names).
    pub paths: Vec<Option<String>>,
    /// CSV separator (`separator: ','`).
    pub separator: Option<char>,
    /// Whether the CSV payload carries a header row (default true).
    pub has_header: bool,
    /// Record element name for XML payloads (`record_element: project`).
    pub record_element: Option<String>,
}

impl FormatSpec {
    /// Spec with declared plain columns.
    pub fn with_columns(names: &[&str]) -> Self {
        FormatSpec {
            columns: names.iter().map(|s| s.to_string()).collect(),
            paths: vec![None; names.len()],
            has_header: true,
            ..Default::default()
        }
    }

    /// The JSON path mapping implied by the schema declaration: explicit
    /// paths where given, same-named paths otherwise.
    pub fn path_mapping(&self) -> PathMapping {
        PathMapping::new(
            self.columns
                .iter()
                .zip(&self.paths)
                .map(|(c, p)| (c.clone(), p.clone().unwrap_or_else(|| c.clone())))
                .collect(),
        )
    }
}

impl Default for FormatSpec {
    fn default() -> Self {
        FormatSpec {
            columns: Vec::new(),
            paths: Vec::new(),
            separator: None,
            has_header: true,
            record_element: None,
        }
    }
}

/// A payload decoder.
pub trait DataFormat: Send + Sync {
    /// Registered format name (`csv`, `json`, `xml`, `record`).
    fn name(&self) -> &str;

    /// Decode bytes to a table.
    fn decode(&self, bytes: &[u8], spec: &FormatSpec) -> Result<Table>;
}

fn utf8(bytes: &[u8]) -> Result<&str> {
    std::str::from_utf8(bytes).map_err(|_| ConnectorError::Decode("payload is not UTF-8".into()))
}

/// CSV decoder.
pub struct CsvFormat;

impl DataFormat for CsvFormat {
    fn name(&self) -> &str {
        "csv"
    }

    fn decode(&self, bytes: &[u8], spec: &FormatSpec) -> Result<Table> {
        let opts = CsvOptions {
            separator: spec.separator.unwrap_or(','),
            has_header: spec.has_header,
            column_names: if spec.columns.is_empty() {
                None
            } else {
                Some(spec.columns.clone())
            },
            infer_types: true,
        };
        Ok(read_csv(utf8(bytes)?, &opts)?)
    }
}

/// JSON decoder (array / NDJSON / `items` layouts, `=>` path mapping).
pub struct JsonFormat;

impl DataFormat for JsonFormat {
    fn name(&self) -> &str {
        "json"
    }

    fn decode(&self, bytes: &[u8], spec: &FormatSpec) -> Result<Table> {
        if spec.columns.is_empty() {
            return Err(ConnectorError::BadConfig(
                "json payloads need a declared schema (the column list tells the reader which paths to extract)".into(),
            ));
        }
        Ok(read_json_records(utf8(bytes)?, &spec.path_mapping())?)
    }
}

/// XML decoder.
pub struct XmlFormat;

impl DataFormat for XmlFormat {
    fn name(&self) -> &str {
        "xml"
    }

    fn decode(&self, bytes: &[u8], spec: &FormatSpec) -> Result<Table> {
        let record = spec.record_element.as_deref().unwrap_or("record");
        let table = read_xml_records(utf8(bytes)?, record)?;
        if spec.columns.is_empty() {
            Ok(table)
        } else {
            // Project/reorder to the declared schema.
            Ok(table.project(&spec.columns)?)
        }
    }
}

/// Binary record decoder (the Avro stand-in).
pub struct RecordFormat;

impl DataFormat for RecordFormat {
    fn name(&self) -> &str {
        "record"
    }

    fn decode(&self, bytes: &[u8], spec: &FormatSpec) -> Result<Table> {
        let table = read_records(bytes)?;
        if spec.columns.is_empty() {
            Ok(table)
        } else {
            Ok(table.project(&spec.columns)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;

    #[test]
    fn csv_with_declared_columns() {
        let spec = FormatSpec::with_columns(&["p", "q"]);
        let t = CsvFormat
            .decode(b"project,question\npig,42\n", &spec)
            .unwrap();
        assert_eq!(t.schema().names(), vec!["p", "q"]);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn csv_custom_separator_no_schema() {
        let spec = FormatSpec {
            separator: Some('|'),
            has_header: true,
            ..Default::default()
        };
        let t = CsvFormat.decode(b"a|b\n1|2\n", &spec).unwrap();
        assert_eq!(t.schema().names(), vec!["a", "b"]);
    }

    #[test]
    fn json_needs_schema() {
        let err = JsonFormat
            .decode(b"[]", &FormatSpec::default())
            .unwrap_err();
        assert!(err.to_string().contains("declared schema"));
    }

    #[test]
    fn json_with_paths() {
        let mut spec = FormatSpec::with_columns(&["body", "loc"]);
        spec.paths = vec![Some("text".into()), Some("user.location".into())];
        let t = JsonFormat
            .decode(br#"[{"text": "hi", "user": {"location": "Pune"}}]"#, &spec)
            .unwrap();
        assert_eq!(t.value(0, "loc").unwrap().to_string(), "Pune");
    }

    #[test]
    fn xml_with_record_element() {
        let spec = FormatSpec {
            record_element: Some("row".into()),
            ..Default::default()
        };
        let t = XmlFormat
            .decode(b"<r><row><a>1</a></row><row><a>2</a></row></r>", &spec)
            .unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn record_roundtrip_through_format() {
        let t = Table::from_rows(&["x"], &[row![1i64]]).unwrap();
        let bytes = shareinsights_tabular::io::record::write_records(&t);
        let back = RecordFormat.decode(&bytes, &FormatSpec::default()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn non_utf8_rejected() {
        let err = CsvFormat
            .decode(&[0xFF, 0xFE, 0x00], &FormatSpec::default())
            .unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
    }
}
