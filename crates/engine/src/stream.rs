//! Continuous (streaming) execution: the third execution context beside
//! batch runs and ad-hoc queries.
//!
//! A [`StreamExec`] wraps a [`CompiledPipeline`] and accepts micro-batches
//! pushed into its sources ([`StreamExec::push_batch`]). Each push is one
//! *tick*: the batch propagates through the DAG and every affected
//! produced object advances to a fresh snapshot. Operators fall into three
//! strategies, chosen per flow at stream start:
//!
//! * **passthrough** — every task in the chain is row-local (filters,
//!   maps, projections): the delta flows straight through the batch
//!   kernels and the output *appends*, bounded by the state cap;
//! * **incremental group-by** — `stateless* | groupby | stateless*`
//!   chains keep one merge-able [`GroupByPartial`] per flow — exactly
//!   the partial the sharded data plane scatters — and emit a full
//!   snapshot per tick by finishing *clones* of the accumulators;
//! * **re-exec** — joins, sorts, unions and custom tasks keep bounded
//!   input buffers (the join's build side) with FIFO eviction and re-run
//!   the chain's batch kernels over them per tick.
//!
//! Snapshots *replace*; appends *accumulate*. Either way the caller swaps
//! the resulting endpoint tables copy-on-write and bumps the dashboard's
//! data generation, so batch readers and generation-stamped caches keep
//! working unchanged.

use crate::compile::{CompiledFlow, CompiledPipeline};
use crate::error::{EngineError, Result};
use crate::task::{NamedTask, TaskKind, TaskRuntime};
use shareinsights_tabular::ops::{union_all, GroupByPartial};
use shareinsights_tabular::Table;
use std::collections::{BTreeMap, BTreeSet};

/// Default cap on rows retained per bounded stream state (source buffers,
/// appended endpoints, join build sides).
pub const DEFAULT_STATE_CAP_ROWS: usize = 100_000;

/// Per-flow execution strategy, fixed at stream start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Row-local chain: deltas pass through, output appends (bounded).
    Passthrough,
    /// `stateless* | groupby | stateless*`: incremental accumulators.
    Incremental {
        /// Index of the group-by task within the flow's chain.
        groupby_at: usize,
    },
    /// Bounded input buffers re-executed through the batch kernels.
    Reexec,
}

// Incremental group-by state is one [`GroupByPartial`] per flow — the
// same merge-able partial the partitioned batch engine scatters, so a
// tick's snapshot and a sharded gather finish through one code path.

/// Outcome of one micro-batch push.
#[derive(Debug, Clone)]
pub struct StreamTick {
    /// Source the batch was pushed into.
    pub source: String,
    /// Rows in the pushed batch.
    pub rows_in: usize,
    /// Rows evicted from bounded state to absorb the batch.
    pub evicted_rows: usize,
    /// Produced objects that advanced this tick, with their new snapshots.
    pub updated: BTreeMap<String, Table>,
}

/// A live streaming context over one compiled pipeline.
pub struct StreamExec {
    pipeline: CompiledPipeline,
    /// Rows retained per bounded object before FIFO eviction.
    pub state_cap_rows: usize,
    strategies: BTreeMap<String, Strategy>,
    current: BTreeMap<String, Table>,
    group_states: BTreeMap<String, GroupByPartial>,
}

fn exec_err(task: &str, e: impl std::fmt::Display) -> EngineError {
    EngineError::Execution {
        task: task.to_string(),
        message: e.to_string(),
    }
}

/// True for tasks that transform rows independently (safe to run on a
/// delta without any cross-batch state).
fn is_stateless(kind: &TaskKind) -> bool {
    kind.is_row_local() || matches!(kind, TaskKind::Project(_))
}

impl StreamExec {
    /// Build a streaming context; flow strategies are classified up front
    /// from the DAG shape. State starts empty: the first pushes seed it.
    pub fn new(pipeline: CompiledPipeline) -> StreamExec {
        let mut strategies = BTreeMap::new();
        // Objects whose updates arrive as appendable deltas (sources, and
        // outputs of passthrough flows).
        let mut delta_kind: BTreeSet<String> = pipeline
            .graph
            .sources()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for flow in &pipeline.flows {
            let inputs_are_deltas = flow.inputs.iter().all(|i| delta_kind.contains(i));
            let strategy = if flow.inputs.len() == 1 && inputs_are_deltas {
                if flow.tasks.iter().all(|t| is_stateless(&t.kind)) {
                    Strategy::Passthrough
                } else {
                    classify_incremental(&flow.tasks).unwrap_or(Strategy::Reexec)
                }
            } else {
                Strategy::Reexec
            };
            if strategy == Strategy::Passthrough {
                delta_kind.insert(flow.output.clone());
            }
            strategies.insert(flow.output.clone(), strategy);
        }
        StreamExec {
            pipeline,
            state_cap_rows: DEFAULT_STATE_CAP_ROWS,
            strategies,
            current: BTreeMap::new(),
            group_states: BTreeMap::new(),
        }
    }

    /// The wrapped pipeline (sources, endpoints, schemas).
    pub fn pipeline(&self) -> &CompiledPipeline {
        &self.pipeline
    }

    /// The execution strategy chosen for a produced object, as a stable
    /// name (`passthrough` / `incremental` / `reexec`) — for telemetry
    /// and span attributes.
    pub fn strategy_name(&self, output: &str) -> Option<&'static str> {
        self.strategies.get(output).map(|s| match s {
            Strategy::Passthrough => "passthrough",
            Strategy::Incremental { .. } => "incremental",
            Strategy::Reexec => "reexec",
        })
    }

    /// Current snapshot of a data object, when it has materialised.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.current.get(name)
    }

    /// Push one micro-batch into a source and propagate it through every
    /// affected flow. Returns the tick outcome with fresh snapshots for
    /// each updated produced object.
    pub fn push_batch(&mut self, source: &str, batch: Table) -> Result<StreamTick> {
        let Self {
            pipeline,
            state_cap_rows,
            strategies,
            current,
            group_states,
        } = self;
        let cap = *state_cap_rows;
        if pipeline.graph.is_produced(source) || !pipeline.graph.nodes().any(|n| n == source) {
            return Err(EngineError::UnresolvedData {
                object: source.to_string(),
                context: "stream push target must be a source data object".into(),
            });
        }

        let rows_in = batch.num_rows();
        let mut evicted_rows = 0usize;
        let mut deltas: BTreeMap<String, Table> = BTreeMap::new();
        let mut touched: BTreeSet<String> = BTreeSet::new();
        let mut updated: BTreeMap<String, Table> = BTreeMap::new();

        // Buffer the source (bounded) for re-exec consumers, and record
        // the delta for passthrough/incremental consumers.
        let (buffered, ev) = append_bounded(current.get(source), &batch, cap)?;
        evicted_rows += ev;
        current.insert(source.to_string(), buffered);
        deltas.insert(source.to_string(), batch);
        touched.insert(source.to_string());

        // `pipeline.flows` is already topologically ordered.
        for flow in &pipeline.flows {
            if !flow.inputs.iter().any(|i| touched.contains(i)) {
                continue;
            }
            let strategy = strategies
                .get(&flow.output)
                .copied()
                .unwrap_or(Strategy::Reexec);
            match strategy {
                Strategy::Passthrough => {
                    let input = &flow.inputs[0];
                    let Some(delta) = deltas.get(input) else {
                        continue;
                    };
                    let out = run_chain(
                        flow,
                        &flow.tasks,
                        vec![(Some(input.clone()), delta.clone())],
                        current,
                    )?;
                    let (acc, ev) = append_bounded(current.get(&flow.output), &out, cap)?;
                    evicted_rows += ev;
                    current.insert(flow.output.clone(), acc.clone());
                    deltas.insert(flow.output.clone(), out);
                    touched.insert(flow.output.clone());
                    updated.insert(flow.output.clone(), acc);
                }
                Strategy::Incremental { groupby_at } => {
                    let input = &flow.inputs[0];
                    let Some(delta) = deltas.get(input) else {
                        continue;
                    };
                    let pre = run_chain(
                        flow,
                        &flow.tasks[..groupby_at],
                        vec![(Some(input.clone()), delta.clone())],
                        current,
                    )?;
                    let gtask = &flow.tasks[groupby_at];
                    let TaskKind::GroupBy { builtin, .. } = &gtask.kind else {
                        return Err(exec_err(&gtask.name, "expected groupby task"));
                    };
                    let st = group_states
                        .entry(flow.output.clone())
                        .or_insert_with(|| GroupByPartial::new(builtin.clone()));
                    st.update(&pre).map_err(|e| exec_err(&gtask.name, e))?;
                    let snap = st.snapshot().map_err(|e| exec_err(&gtask.name, e))?;
                    let out = run_chain(
                        flow,
                        &flow.tasks[groupby_at + 1..],
                        vec![(None, snap)],
                        current,
                    )?;
                    current.insert(flow.output.clone(), out.clone());
                    touched.insert(flow.output.clone());
                    updated.insert(flow.output.clone(), out);
                }
                Strategy::Reexec => {
                    let mut inputs = Vec::with_capacity(flow.inputs.len());
                    let mut complete = true;
                    for i in &flow.inputs {
                        let t = current
                            .get(i)
                            .cloned()
                            .or_else(|| pipeline.schemas.get(i).map(|s| Table::empty(s.clone())));
                        match t {
                            Some(t) => inputs.push((Some(i.clone()), t)),
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                    if !complete {
                        // An input has neither data nor a known schema yet;
                        // the flow catches up once that side is pushed.
                        continue;
                    }
                    let out = run_chain(flow, &flow.tasks, inputs, current)?;
                    current.insert(flow.output.clone(), out.clone());
                    touched.insert(flow.output.clone());
                    updated.insert(flow.output.clone(), out);
                }
            }
        }

        Ok(StreamTick {
            source: source.to_string(),
            rows_in,
            evicted_rows,
            updated,
        })
    }
}

/// `stateless* | groupby(builtin only) | stateless*` chains qualify for
/// incremental accumulation; anything else falls back to re-exec.
fn classify_incremental(tasks: &[NamedTask]) -> Option<Strategy> {
    let mut groupby_at = None;
    for (i, t) in tasks.iter().enumerate() {
        match &t.kind {
            TaskKind::GroupBy { custom, .. } if custom.is_empty() => {
                if groupby_at.is_some() {
                    return None;
                }
                groupby_at = Some(i);
            }
            kind if is_stateless(kind) => {}
            _ => return None,
        }
    }
    groupby_at.map(|groupby_at| Strategy::Incremental { groupby_at })
}

/// Append a delta to an accumulated table, evicting the oldest rows past
/// the cap (the bounded build side / bounded endpoint accumulation).
fn append_bounded(existing: Option<&Table>, delta: &Table, cap: usize) -> Result<(Table, usize)> {
    let merged = match existing {
        Some(t) if t.num_rows() > 0 => union_all(&[t.clone(), delta.clone()])
            .map_err(|e| EngineError::Internal(format!("stream append: {e}")))?,
        _ => delta.clone(),
    };
    let n = merged.num_rows();
    if n > cap {
        Ok((merged.slice(n - cap, cap), n - cap))
    } else {
        Ok((merged, 0))
    }
}

/// Run a task chain over a set of named inputs, mirroring the batch
/// executor's fan-in handling (joins bind left by input name, unions
/// drain everything).
fn run_chain(
    flow: &CompiledFlow,
    tasks: &[NamedTask],
    mut current: Vec<(Option<String>, Table)>,
    tables: &BTreeMap<String, Table>,
) -> Result<Table> {
    let lookup = |name: &str| -> Option<Table> { tables.get(name).cloned() };
    let rt = TaskRuntime {
        selections: None,
        lookup_table: &lookup,
    };
    for task in tasks {
        match &task.kind {
            TaskKind::Join(j) => {
                if current.len() != 2 {
                    return Err(exec_err(
                        &task.name,
                        format!("join needs 2 inputs, found {}", current.len()),
                    ));
                }
                let left_idx = current
                    .iter()
                    .position(|(n, _)| n.as_deref() == Some(j.left_name.as_str()))
                    .unwrap_or(0);
                let right_idx = 1 - left_idx;
                let inputs = [current[left_idx].1.clone(), current[right_idx].1.clone()];
                let out = task.kind.execute(&task.name, &inputs, &rt)?;
                current = vec![(None, out)];
            }
            TaskKind::Union => {
                let inputs: Vec<Table> = current.drain(..).map(|(_, t)| t).collect();
                let out = union_all(&inputs).map_err(|e| exec_err(&task.name, e))?;
                current = vec![(None, out)];
            }
            _ => {
                if current.len() != 1 {
                    return Err(exec_err(
                        &task.name,
                        format!("task consumes one input but found {}", current.len()),
                    ));
                }
                let (_, input) = current.remove(0);
                let out = task
                    .kind
                    .execute(&task.name, std::slice::from_ref(&input), &rt)?;
                current = vec![(None, out)];
            }
        }
    }
    if current.len() != 1 {
        return Err(EngineError::Execution {
            task: format!("flow D.{}", flow.output),
            message: format!("flow ended with {} unmerged tables", current.len()),
        });
    }
    Ok(current.remove(0).1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileEnv};
    use crate::exec::{ExecContext, Executor};
    use crate::ext::TaskRegistry;
    use shareinsights_connectors::Catalog;
    use shareinsights_flowfile::parse_flow_file;
    use shareinsights_tabular::{row, Value};

    fn pipeline_of(src: &str) -> CompiledPipeline {
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        compile(&ff, &CompileEnv::bare(&reg)).unwrap()
    }

    fn sales(rows: &[(&str, i64)]) -> Table {
        let rows: Vec<shareinsights_tabular::Row> =
            rows.iter().map(|(b, r)| row![b.to_string(), *r]).collect();
        Table::from_rows(&["brand", "revenue"], &rows).unwrap()
    }

    const GROUP_FLOW: &str = r#"
D:
  sales: [brand, revenue]
T:
  by_brand:
    type: groupby
    groupby: [brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: total
F:
  +D.brand_sales: D.sales | T.by_brand
"#;

    #[test]
    fn incremental_groupby_matches_batch_reexecution() {
        let mut stream = StreamExec::new(pipeline_of(GROUP_FLOW));
        assert_eq!(
            stream.strategies.get("brand_sales"),
            Some(&Strategy::Incremental { groupby_at: 1 }),
            "optimizer projection + groupby classifies incrementally: {:?}",
            stream.strategies
        );
        let t1 = stream
            .push_batch("sales", sales(&[("acme", 10), ("zeta", 5)]))
            .unwrap();
        assert_eq!(t1.rows_in, 2);
        let t2 = stream
            .push_batch("sales", sales(&[("acme", 7), ("nova", 1)]))
            .unwrap();
        let snap = t2.updated.get("brand_sales").unwrap();

        // The same rows through the batch executor agree exactly.
        let pipeline = pipeline_of(GROUP_FLOW);
        let ctx = ExecContext::new(Catalog::new()).with_table(
            "sales",
            sales(&[("acme", 10), ("zeta", 5), ("acme", 7), ("nova", 1)]),
        );
        let batch = Executor::sequential().execute(&pipeline, &ctx).unwrap();
        assert_eq!(snap, batch.table("brand_sales").unwrap());
        assert_eq!(snap.value(0, "total").unwrap(), Value::Int(17));
    }

    #[test]
    fn passthrough_appends_and_evicts_at_cap() {
        const FLOW: &str = r#"
D:
  events: [kind, n]
T:
  keep:
    type: filter_by
    filter_expression: n > 0
F:
  +D.live_events: D.events | T.keep
"#;
        let mut stream = StreamExec::new(pipeline_of(FLOW));
        assert_eq!(
            stream.strategies.get("live_events"),
            Some(&Strategy::Passthrough)
        );
        stream.state_cap_rows = 3;
        let mk = |vals: &[i64]| {
            let rows: Vec<shareinsights_tabular::Row> =
                vals.iter().map(|v| row!["e".to_string(), *v]).collect();
            Table::from_rows(&["kind", "n"], &rows).unwrap()
        };
        let t1 = stream.push_batch("events", mk(&[1, -1, 2])).unwrap();
        assert_eq!(t1.updated["live_events"].num_rows(), 2);
        assert_eq!(t1.evicted_rows, 0);
        let t2 = stream.push_batch("events", mk(&[3, 4])).unwrap();
        let out = &t2.updated["live_events"];
        assert_eq!(out.num_rows(), 3, "bounded at the cap");
        // Oldest row (n=1) evicted; source buffer (5 rows > 3) evicted too.
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2));
        assert!(t2.evicted_rows >= 2, "{}", t2.evicted_rows);
    }

    #[test]
    fn join_reexecutes_with_bounded_build_side() {
        const FLOW: &str = r#"
D:
  orders: [sku, qty]
  products: [sku, label]
T:
  enrich:
    type: join
    left: orders by sku
    right: products by sku
    join_condition: inner
F:
  +D.labeled: (D.orders, D.products) | T.enrich
"#;
        let mut stream = StreamExec::new(pipeline_of(FLOW));
        assert_eq!(stream.strategies.get("labeled"), Some(&Strategy::Reexec));
        stream.state_cap_rows = 2;
        let orders = |rows: &[(&str, i64)]| {
            let rows: Vec<shareinsights_tabular::Row> =
                rows.iter().map(|(s, q)| row![s.to_string(), *q]).collect();
            Table::from_rows(&["sku", "qty"], &rows).unwrap()
        };
        let products =
            Table::from_rows(&["sku", "label"], &[row!["a", "Alpha"], row!["b", "Beta"]]).unwrap();
        // Push the probe side first: the build side resolves to an empty
        // table from its declared schema, so the join emits nothing yet.
        let t0 = stream.push_batch("orders", orders(&[("a", 1)])).unwrap();
        assert_eq!(t0.updated["labeled"].num_rows(), 0);
        stream.push_batch("products", products).unwrap();
        let t1 = stream.push_batch("orders", orders(&[("b", 2)])).unwrap();
        assert_eq!(t1.updated["labeled"].num_rows(), 2);
        // A third order evicts the oldest buffered order (cap 2).
        let t2 = stream.push_batch("orders", orders(&[("a", 9)])).unwrap();
        assert_eq!(t2.evicted_rows, 1);
        assert_eq!(t2.updated["labeled"].num_rows(), 2);
    }

    #[test]
    fn push_to_unknown_or_produced_object_rejected() {
        let mut stream = StreamExec::new(pipeline_of(GROUP_FLOW));
        assert!(stream.push_batch("ghost", sales(&[])).is_err());
        assert!(stream.push_batch("brand_sales", sales(&[])).is_err());
    }
}
