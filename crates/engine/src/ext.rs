//! Task extension services — the §4.2 "Tasks API".
//!
//! The paper groups extension tasks into four categories; each maps to a
//! trait here:
//!
//! 1. column-value → column-value transforms ⇒ [`ScalarOperator`]
//!    (usable as `type: map / operator: <name>`);
//! 2. bag-of-values → point-value transforms ⇒
//!    [`shareinsights_tabular::agg::AggregateFunction`]
//!    (usable inside `groupby` aggregates);
//! 3. data-object transforms via engine APIs and
//! 4. native whole-table jobs ⇒ [`CustomTask`].
//!
//! "User defined tasks are treated on par with system provided tasks and
//! are represented in the flow file in an identical fashion" — the
//! registry is consulted whenever a task type (or operator/aggregate name)
//! is not a built-in, so the flow-file author cannot tell the difference.

use crate::error::{EngineError, Result};
use parking_lot::RwLock;
use shareinsights_tabular::agg::AggregateFunction;
use shareinsights_tabular::{Schema, Table, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A custom whole-table task (extension categories 3 and 4).
pub trait CustomTask: Send + Sync {
    /// Task type name used in `type:`.
    fn name(&self) -> &str;

    /// Output schema for a given input schema (context-dependent, like all
    /// tasks — §3.3).
    fn output_schema(&self, input: &Schema) -> Result<Schema>;

    /// Execute on a table.
    fn execute(&self, input: &Table) -> Result<Table>;
}

/// A custom scalar map operator (extension category 1).
pub trait ScalarOperator: Send + Sync {
    /// Operator name used in `operator:`.
    fn name(&self) -> &str;

    /// Transform one value.
    fn apply(&self, value: &Value) -> Value;
}

/// Registry of extension tasks, operators and aggregates.
#[derive(Clone, Default)]
pub struct TaskRegistry {
    tasks: Arc<RwLock<BTreeMap<String, Arc<dyn CustomTask>>>>,
    operators: Arc<RwLock<BTreeMap<String, Arc<dyn ScalarOperator>>>>,
    aggregates: Arc<RwLock<BTreeMap<String, Arc<dyn AggregateFunction>>>>,
}

impl TaskRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a whole-table task.
    pub fn register_task(&self, task: Arc<dyn CustomTask>) {
        self.tasks.write().insert(task.name().to_string(), task);
    }

    /// Register a scalar operator.
    pub fn register_operator(&self, op: Arc<dyn ScalarOperator>) {
        self.operators.write().insert(op.name().to_string(), op);
    }

    /// Register an aggregate function.
    pub fn register_aggregate(&self, agg: Arc<dyn AggregateFunction>) {
        self.aggregates.write().insert(agg.name().to_string(), agg);
    }

    /// Look up a whole-table task.
    pub fn task(&self, name: &str) -> Option<Arc<dyn CustomTask>> {
        self.tasks.read().get(name).cloned()
    }

    /// Look up a scalar operator.
    pub fn operator(&self, name: &str) -> Option<Arc<dyn ScalarOperator>> {
        self.operators.read().get(name).cloned()
    }

    /// Look up an aggregate.
    pub fn aggregate(&self, name: &str) -> Option<Arc<dyn AggregateFunction>> {
        self.aggregates.read().get(name).cloned()
    }

    /// All registered custom task type names (for validation).
    pub fn task_names(&self) -> Vec<String> {
        self.tasks.read().keys().cloned().collect()
    }
}

/// Convenience: build a custom task from closures (used heavily in tests
/// and the hackathon simulator's "teams wrote custom tasks" model).
#[allow(clippy::type_complexity)]
pub struct FnTask {
    name: String,
    schema_fn: Box<dyn Fn(&Schema) -> Result<Schema> + Send + Sync>,
    exec_fn: Box<dyn Fn(&Table) -> Result<Table> + Send + Sync>,
}

impl FnTask {
    /// Build from closures.
    pub fn new(
        name: impl Into<String>,
        schema_fn: impl Fn(&Schema) -> Result<Schema> + Send + Sync + 'static,
        exec_fn: impl Fn(&Table) -> Result<Table> + Send + Sync + 'static,
    ) -> Self {
        FnTask {
            name: name.into(),
            schema_fn: Box::new(schema_fn),
            exec_fn: Box::new(exec_fn),
        }
    }
}

impl CustomTask for FnTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self, input: &Schema) -> Result<Schema> {
        (self.schema_fn)(input)
    }

    fn execute(&self, input: &Table) -> Result<Table> {
        (self.exec_fn)(input)
    }
}

/// Helper for custom tasks: wrap a tabular error into an engine execution
/// error with the task name attached.
pub fn exec_err(task: &str, e: impl std::fmt::Display) -> EngineError {
    EngineError::Execution {
        task: task.to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;
    use shareinsights_tabular::{DataType, Field};

    #[test]
    fn register_and_lookup_task() {
        let reg = TaskRegistry::new();
        assert!(reg.task("double").is_none());
        reg.register_task(Arc::new(FnTask::new(
            "double",
            |s: &Schema| Ok(s.clone()),
            |t: &Table| t.concat(t).map_err(|e| exec_err("double", e)),
        )));
        assert!(reg.task("double").is_some());
        assert_eq!(reg.task_names(), vec!["double"]);

        let t = Table::from_rows(&["x"], &[row![1i64]]).unwrap();
        let out = reg.task("double").unwrap().execute(&t).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn register_operator_and_aggregate() {
        struct Upper;
        impl ScalarOperator for Upper {
            fn name(&self) -> &str {
                "upper"
            }
            fn apply(&self, v: &Value) -> Value {
                match v.as_str() {
                    Some(s) => Value::Str(s.to_uppercase()),
                    None => v.clone(),
                }
            }
        }
        struct Median;
        impl AggregateFunction for Median {
            fn name(&self) -> &str {
                "median"
            }
            fn output_type(&self, input: DataType) -> DataType {
                input
            }
            fn aggregate(&self, values: &[Value]) -> shareinsights_tabular::Result<Value> {
                let mut v: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
                v.sort();
                Ok(v.get(v.len() / 2)
                    .map(|v| (*v).clone())
                    .unwrap_or(Value::Null))
            }
        }
        let reg = TaskRegistry::new();
        reg.register_operator(Arc::new(Upper));
        reg.register_aggregate(Arc::new(Median));
        assert_eq!(
            reg.operator("upper").unwrap().apply(&"abc".into()),
            Value::Str("ABC".into())
        );
        let med = reg.aggregate("median").unwrap();
        assert_eq!(
            med.aggregate(&[Value::Int(3), Value::Int(1), Value::Int(2)])
                .unwrap(),
            Value::Int(2)
        );
        let _ = Field::new("x", med.output_type(DataType::Int64));
    }
}
