//! Task interpretation: from a flow file's `T.` section entries to typed,
//! executable [`TaskKind`]s with schema propagation.
//!
//! Tasks are *context-typed* (§3.3): a definition names the columns it
//! consumes and is validated against the schema of whatever data object it
//! is piped after. [`TaskKind::output_schema`] is that validation;
//! [`TaskKind::execute`] is the batch kernel.

use crate::error::{EngineError, Result};
use crate::ext::TaskRegistry;
use crate::selection::{Selection, SelectionProvider};
use shareinsights_flowfile::ast::{DataRef, TaskDef};
use shareinsights_flowfile::config::{ConfigMap, ConfigValue};
use shareinsights_tabular::agg::{AggKind, AggregateFunction};
use shareinsights_tabular::expr::{parse_expr, Expr};
use shareinsights_tabular::ops::{
    self, AggregateSpec, DateMap, ExtractMap, FilterByValues, GroupBy, JoinCondition, JoinSpec,
    LocationMap, ProjectSpec, SortKey, TopN, WordsMap,
};
use shareinsights_tabular::text::{ExtractDict, Gazetteer};
use shareinsights_tabular::{DataType, Field, IndexedTable, Row, Schema, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Where an interactive filter's allowed values come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterSource {
    /// A widget's current selection (`filter_source: W.teams`).
    Widget(String),
    /// Another data object's column values (semijoin).
    Data(String),
}

/// A custom aggregate reference inside a groupby.
#[derive(Clone)]
pub struct CustomAgg {
    /// The registered aggregate.
    pub func: Arc<dyn AggregateFunction>,
    /// Input column.
    pub apply_on: String,
    /// Output column.
    pub out_field: String,
}

impl std::fmt::Debug for CustomAgg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CustomAgg({} on {})", self.func.name(), self.apply_on)
    }
}

/// A join task with its input-object bindings.
#[derive(Debug, Clone)]
pub struct JoinTask {
    /// Left input data-object name (`left: players_tweets by player`).
    pub left_name: String,
    /// Right input data-object name.
    pub right_name: String,
    /// The kernel spec.
    pub spec: JoinSpec,
}

/// A compiled task: its flow-file name plus the typed kind.
#[derive(Debug, Clone)]
pub struct NamedTask {
    /// Flow-file task name.
    pub name: String,
    /// Interpreted kind.
    pub kind: TaskKind,
}

/// Every executable task shape.
#[derive(Clone)]
pub enum TaskKind {
    /// `filter_by` with a `filter_expression`.
    FilterExpr(Expr),
    /// `filter_by` with `filter_source` (interaction / semijoin filter).
    FilterBySource {
        /// Columns of the *input* being filtered.
        columns: Vec<String>,
        /// Where allowed values come from.
        source: FilterSource,
        /// Columns on the source side (`filter_val`), aligned with
        /// `columns`; defaults to the same names.
        source_columns: Vec<String>,
    },
    /// `groupby`.
    GroupBy {
        /// Built-in portion (may be empty when all aggregates are custom).
        builtin: GroupBy,
        /// Custom aggregates resolved from the registry.
        custom: Vec<CustomAgg>,
    },
    /// `join`.
    Join(JoinTask),
    /// `map` / `operator: date`.
    MapDate(DateMap),
    /// `map` / `operator: extract`.
    MapExtract(ExtractMap),
    /// `map` / `operator: extract_location`.
    MapLocation(LocationMap),
    /// `map` / `operator: extract_words`.
    MapWords(WordsMap),
    /// `map` with a custom scalar operator from the registry.
    MapCustom {
        /// The operator.
        op: Arc<dyn crate::ext::ScalarOperator>,
        /// Input column.
        input: String,
        /// Output column.
        output: String,
    },
    /// `topn`.
    TopN(TopN),
    /// `sort` / `orderby`.
    Sort(Vec<SortKey>),
    /// `distinct`.
    Distinct(Vec<String>),
    /// `limit`.
    Limit(usize),
    /// `union` — combines all fan-in inputs.
    Union,
    /// `project` — keep/reorder columns (used by the optimizer too).
    Project(Vec<String>),
    /// `parallel` composite (figure 20).
    Parallel(Vec<NamedTask>),
    /// Registered extension task (§4.2 categories 3/4).
    Custom(Arc<dyn crate::ext::CustomTask>),
}

impl std::fmt::Debug for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::FilterExpr(e) => write!(f, "FilterExpr({e})"),
            TaskKind::FilterBySource { columns, .. } => write!(f, "FilterBySource({columns:?})"),
            TaskKind::GroupBy { builtin, .. } => write!(f, "GroupBy({:?})", builtin.keys),
            TaskKind::Join(j) => write!(f, "Join({} x {})", j.left_name, j.right_name),
            TaskKind::MapDate(m) => write!(f, "MapDate({})", m.input_column),
            TaskKind::MapExtract(m) => write!(f, "MapExtract({})", m.input_column),
            TaskKind::MapLocation(m) => write!(f, "MapLocation({})", m.input_column),
            TaskKind::MapWords(m) => write!(f, "MapWords({})", m.input_column),
            TaskKind::MapCustom { input, output, .. } => {
                write!(f, "MapCustom({input} -> {output})")
            }
            TaskKind::TopN(t) => write!(f, "TopN(limit {})", t.limit),
            TaskKind::Sort(keys) => write!(f, "Sort({} keys)", keys.len()),
            TaskKind::Distinct(c) => write!(f, "Distinct({c:?})"),
            TaskKind::Limit(n) => write!(f, "Limit({n})"),
            TaskKind::Union => write!(f, "Union"),
            TaskKind::Project(c) => write!(f, "Project({c:?})"),
            TaskKind::Parallel(ts) => write!(f, "Parallel({} tasks)", ts.len()),
            TaskKind::Custom(c) => write!(f, "Custom({})", c.name()),
        }
    }
}

/// What a task needs from its surroundings at interpretation time.
pub struct InterpretEnv<'a> {
    /// Extension registry.
    pub registry: &'a TaskRegistry,
    /// Loader for dictionary files (`dict: players.txt`) from the dashboard
    /// data folder.
    pub load_text: &'a dyn Fn(&str) -> Option<String>,
    /// All task definitions (for `parallel` composites).
    pub all_tasks: &'a [TaskDef],
}

fn cfg_err(task: &str, message: impl Into<String>) -> EngineError {
    EngineError::TaskConfig {
        task: task.to_string(),
        message: message.into(),
    }
}

fn scalar_param<'m>(params: &'m ConfigMap, key: &str) -> Option<&'m str> {
    params.get_scalar(key)
}

fn list_param(params: &ConfigMap, key: &str) -> Vec<String> {
    match params.get(key) {
        Some(v) => v.scalar_items().into_iter().map(str::to_string).collect(),
        None => Vec::new(),
    }
}

/// Interpret one task definition.
pub fn interpret_task(def: &TaskDef, env: &InterpretEnv<'_>) -> Result<NamedTask> {
    interpret_task_inner(def, env, 0)
}

fn interpret_task_inner(def: &TaskDef, env: &InterpretEnv<'_>, depth: usize) -> Result<NamedTask> {
    if depth > 8 {
        return Err(cfg_err(
            &def.name,
            "parallel tasks nested too deeply (cycle?)",
        ));
    }
    let name = def.name.as_str();
    let kind = match def.task_type.as_str() {
        "filter_by" | "filterby" | "filter" => interpret_filter(def)?,
        "groupby" | "group_by" | "group" => interpret_groupby(def, env)?,
        "join" => interpret_join(def)?,
        "map" => interpret_map(def, env)?,
        "topn" | "top_n" => interpret_topn(def)?,
        "sort" | "orderby" | "order_by" => {
            let keys = parse_sort_keys(def, "orderby_column")
                .or_else(|_| parse_sort_keys(def, "orderby"))?;
            TaskKind::Sort(keys)
        }
        "distinct" | "dedup" => TaskKind::Distinct(list_param(&def.params, "columns")),
        "limit" => {
            let n = scalar_param(&def.params, "limit")
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| cfg_err(name, "limit needs 'limit: <count>'"))?;
            TaskKind::Limit(n)
        }
        "union" => TaskKind::Union,
        "sql" => {
            let query = scalar_param(&def.params, "query")
                .ok_or_else(|| cfg_err(name, "sql needs 'query: \"SELECT ...\"'"))?;
            let stages = crate::sql::tasks_for_flow(name, query)
                .map_err(|e| cfg_err(name, format!("invalid SQL: {e}")))?;
            TaskKind::Parallel(stages)
        }
        "project" | "select" => {
            let cols = list_param(&def.params, "columns");
            if cols.is_empty() {
                return Err(cfg_err(name, "project needs 'columns: [..]'"));
            }
            TaskKind::Project(cols)
        }
        "parallel" => {
            let subs = list_param(&def.params, "parallel");
            if subs.is_empty() {
                return Err(cfg_err(
                    name,
                    "parallel needs a 'parallel: [T.a, T.b]' list",
                ));
            }
            let mut tasks = Vec::with_capacity(subs.len());
            for s in subs {
                let sub_name = match DataRef::parse(&s) {
                    Some(DataRef::Task(t)) => t,
                    _ => {
                        return Err(cfg_err(
                            name,
                            format!("parallel items must be T.*, got '{s}'"),
                        ))
                    }
                };
                let sub_def = env
                    .all_tasks
                    .iter()
                    .find(|t| t.name == sub_name)
                    .ok_or_else(|| {
                        cfg_err(
                            name,
                            format!("parallel references unknown task 'T.{sub_name}'"),
                        )
                    })?;
                tasks.push(interpret_task_inner(sub_def, env, depth + 1)?);
            }
            TaskKind::Parallel(tasks)
        }
        custom => match env.registry.task(custom) {
            Some(t) => TaskKind::Custom(t),
            None => {
                return Err(cfg_err(
                    name,
                    format!(
                        "unknown task type '{custom}' (not built-in, not a registered extension)"
                    ),
                ))
            }
        },
    };
    Ok(NamedTask {
        name: name.to_string(),
        kind,
    })
}

fn interpret_filter(def: &TaskDef) -> Result<TaskKind> {
    let name = def.name.as_str();
    if let Some(expr_text) = scalar_param(&def.params, "filter_expression") {
        let expr = parse_expr(expr_text).map_err(|e| cfg_err(name, e.to_string()))?;
        return Ok(TaskKind::FilterExpr(expr));
    }
    let columns = list_param(&def.params, "filter_by");
    if columns.is_empty() {
        return Err(cfg_err(
            name,
            "filter_by needs 'filter_expression:' or a 'filter_by: [columns]' list",
        ));
    }
    let source = match scalar_param(&def.params, "filter_source") {
        Some(s) => match DataRef::parse(s) {
            Some(DataRef::Widget(w)) => FilterSource::Widget(w),
            Some(DataRef::Data(d)) => FilterSource::Data(d),
            _ => {
                return Err(cfg_err(
                    name,
                    format!("filter_source must be W.* or D.*, got '{s}'"),
                ))
            }
        },
        None => {
            return Err(cfg_err(
                name,
                "filter_by with columns needs a 'filter_source:' (widget or data object)",
            ))
        }
    };
    let mut source_columns = list_param(&def.params, "filter_val");
    if source_columns.is_empty() {
        source_columns = columns.clone();
    }
    Ok(TaskKind::FilterBySource {
        columns,
        source,
        source_columns,
    })
}

fn interpret_groupby(def: &TaskDef, env: &InterpretEnv<'_>) -> Result<TaskKind> {
    let name = def.name.as_str();
    let keys = list_param(&def.params, "groupby");
    if keys.is_empty() {
        return Err(cfg_err(name, "groupby needs a 'groupby: [columns]' list"));
    }
    let mut builtin_aggs = Vec::new();
    let mut custom = Vec::new();
    if let Some(ConfigValue::List(items)) = def.params.get("aggregates") {
        for item in items {
            let Some(m) = item.as_map() else {
                return Err(cfg_err(
                    name,
                    "each aggregate must be an 'operator/apply_on/out_field' block",
                ));
            };
            let op = m
                .get_scalar("operator")
                .ok_or_else(|| cfg_err(name, "aggregate missing 'operator:'"))?;
            let apply_on = m
                .get_scalar("apply_on")
                .ok_or_else(|| cfg_err(name, "aggregate missing 'apply_on:'"))?
                .to_string();
            let out_field = m
                .get_scalar("out_field")
                .ok_or_else(|| cfg_err(name, "aggregate missing 'out_field:'"))?
                .to_string();
            match AggKind::parse(op) {
                Some(kind) => builtin_aggs.push(AggregateSpec::new(kind, apply_on, out_field)),
                None => match env.registry.aggregate(op) {
                    Some(func) => custom.push(CustomAgg {
                        func,
                        apply_on,
                        out_field,
                    }),
                    None => {
                        return Err(cfg_err(
                            name,
                            format!(
                                "unknown aggregate operator '{op}' (not built-in, not registered)"
                            ),
                        ))
                    }
                },
            }
        }
    }
    let mut builtin = GroupBy::with_aggregates(&keys, builtin_aggs);
    builtin.orderby_aggregates = def.params.get_bool("orderby_aggregates").unwrap_or(false);
    Ok(TaskKind::GroupBy { builtin, custom })
}

/// Parse `left: players_tweets by player` / `right: team_players by player,team`.
fn parse_join_side(name: &str, text: &str) -> Result<(String, Vec<String>)> {
    let lower = text.to_ascii_lowercase();
    let by = lower.find(" by ").ok_or_else(|| {
        cfg_err(
            name,
            format!("join side must be '<object> by <keys>', got '{text}'"),
        )
    })?;
    let obj = text[..by].trim().to_string();
    let keys: Vec<String> = text[by + 4..]
        .split(',')
        .map(|k| k.trim().to_string())
        .filter(|k| !k.is_empty())
        .collect();
    if obj.is_empty() || keys.is_empty() {
        return Err(cfg_err(name, format!("join side malformed: '{text}'")));
    }
    Ok((obj, keys))
}

fn interpret_join(def: &TaskDef) -> Result<TaskKind> {
    let name = def.name.as_str();
    let left_text = scalar_param(&def.params, "left")
        .ok_or_else(|| cfg_err(name, "join needs 'left: <object> by <keys>'"))?;
    let right_text = scalar_param(&def.params, "right")
        .ok_or_else(|| cfg_err(name, "join needs 'right: <object> by <keys>'"))?;
    let (left_name, left_keys) = parse_join_side(name, left_text)?;
    let (right_name, right_keys) = parse_join_side(name, right_text)?;
    let condition = match scalar_param(&def.params, "join_condition") {
        Some(c) => JoinCondition::parse(c)
            .ok_or_else(|| cfg_err(name, format!("unknown join_condition '{c}'")))?,
        None => JoinCondition::Inner,
    };
    // Projection: keys are `<object>_<column>`, values the output names.
    let mut projection = Vec::new();
    if let Some(ConfigValue::Map(proj)) = def.params.get("project") {
        for (key, v, _) in proj.entries() {
            let out = v.as_scalar().ok_or_else(|| {
                cfg_err(
                    name,
                    format!("projection '{key}' must map to a column name"),
                )
            })?;
            let (from_left, column) = if let Some(rest) = strip_prefix_ci(key, &left_name) {
                (true, rest)
            } else if let Some(rest) = strip_prefix_ci(key, &right_name) {
                (false, rest)
            } else {
                return Err(cfg_err(
                    name,
                    format!(
                        "projection key '{key}' must start with '{left_name}_' or '{right_name}_'"
                    ),
                ));
            };
            projection.push(ProjectSpec {
                from_left,
                column,
                rename: out.to_string(),
            });
        }
    }
    Ok(TaskKind::Join(JoinTask {
        left_name,
        right_name,
        spec: JoinSpec {
            left_keys,
            right_keys,
            condition,
            projection,
        },
    }))
}

/// Case-insensitive `<object>_` prefix strip (paper listings mix cases:
/// `dim_teams_Team`).
fn strip_prefix_ci(key: &str, object: &str) -> Option<String> {
    let prefix = format!("{object}_");
    if key.len() > prefix.len() && key[..prefix.len()].eq_ignore_ascii_case(&prefix) {
        Some(key[prefix.len()..].to_string())
    } else {
        None
    }
}

fn interpret_map(def: &TaskDef, env: &InterpretEnv<'_>) -> Result<TaskKind> {
    let name = def.name.as_str();
    let operator = scalar_param(&def.params, "operator")
        .ok_or_else(|| cfg_err(name, "map needs 'operator:'"))?;
    let transform = scalar_param(&def.params, "transform")
        .ok_or_else(|| cfg_err(name, "map needs 'transform: <column>'"))?
        .to_string();
    let output = scalar_param(&def.params, "output")
        .ok_or_else(|| cfg_err(name, "map needs 'output: <column>'"))?
        .to_string();
    Ok(match operator {
        "date" => {
            let input_format = scalar_param(&def.params, "input_format")
                .ok_or_else(|| cfg_err(name, "date map needs 'input_format:'"))?;
            let output_format = scalar_param(&def.params, "output_format")
                .ok_or_else(|| cfg_err(name, "date map needs 'output_format:'"))?;
            // Validate patterns at compile time so bad formats fail the
            // compile, not row 1_000_000 of the run.
            shareinsights_tabular::datefmt::DatePattern::compile(input_format)
                .map_err(|e| cfg_err(name, e.to_string()))?;
            shareinsights_tabular::datefmt::DatePattern::compile(output_format)
                .map_err(|e| cfg_err(name, e.to_string()))?;
            TaskKind::MapDate(DateMap {
                input_column: transform,
                input_format: input_format.to_string(),
                output_format: output_format.to_string(),
                output_column: output,
                lenient: def.params.get_bool("lenient").unwrap_or(true),
            })
        }
        "extract" => {
            let dict_file = scalar_param(&def.params, "dict")
                .ok_or_else(|| cfg_err(name, "extract map needs 'dict: <file>'"))?;
            let content = (env.load_text)(dict_file).ok_or_else(|| {
                cfg_err(
                    name,
                    format!("dictionary file '{dict_file}' not found in the data folder"),
                )
            })?;
            let dict = ExtractDict::parse(&content);
            if dict.is_empty() {
                return Err(cfg_err(
                    name,
                    format!("dictionary '{dict_file}' has no entries"),
                ));
            }
            TaskKind::MapExtract(ExtractMap {
                input_column: transform,
                dict,
                output_column: output,
                explode: def.params.get_bool("explode").unwrap_or(true),
            })
        }
        "extract_location" => {
            let country = scalar_param(&def.params, "country")
                .unwrap_or("IND")
                .to_string();
            TaskKind::MapLocation(LocationMap {
                input_column: transform,
                gazetteer: Gazetteer::india_default(),
                country,
                output_column: output,
            })
        }
        "extract_words" => TaskKind::MapWords(WordsMap {
            input_column: transform,
            output_column: output,
            min_len: scalar_param(&def.params, "min_len")
                .and_then(|s| s.parse().ok())
                .unwrap_or(3),
        }),
        custom => match env.registry.operator(custom) {
            Some(op) => TaskKind::MapCustom {
                op,
                input: transform,
                output,
            },
            None => {
                return Err(cfg_err(
                    name,
                    format!("unknown map operator '{custom}' (not built-in, not registered)"),
                ))
            }
        },
    })
}

fn interpret_topn(def: &TaskDef) -> Result<TaskKind> {
    let name = def.name.as_str();
    let groupby = list_param(&def.params, "groupby");
    let order_by = parse_sort_keys(def, "orderby_column")?;
    let limit = scalar_param(&def.params, "limit")
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| cfg_err(name, "topn needs 'limit: <count>'"))?;
    Ok(TaskKind::TopN(TopN {
        groupby,
        order_by,
        limit,
    }))
}

fn parse_sort_keys(def: &TaskDef, param: &str) -> Result<Vec<SortKey>> {
    let items = list_param(&def.params, param);
    if items.is_empty() {
        return Err(cfg_err(
            &def.name,
            format!("needs '{param}: [column ASC|DESC, ...]'"),
        ));
    }
    items
        .iter()
        .map(|s| {
            SortKey::parse(s)
                .ok_or_else(|| cfg_err(&def.name, format!("bad sort key '{s}' in '{param}'")))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Schema propagation
// ---------------------------------------------------------------------------

impl TaskKind {
    /// True when the task consumes exactly its single input row-by-row
    /// (chunkable by the parallel executor).
    pub fn is_row_local(&self) -> bool {
        matches!(
            self,
            TaskKind::FilterExpr(_)
                | TaskKind::MapDate(_)
                | TaskKind::MapExtract(_)
                | TaskKind::MapLocation(_)
                | TaskKind::MapWords(_)
                | TaskKind::MapCustom { .. }
        )
    }

    /// The operator type name in flow-file vocabulary (`groupby`,
    /// `filter_by`, `map`, …) — the key engine telemetry aggregates
    /// per-operator stats under. Custom tasks report their registered name.
    pub fn type_name(&self) -> &str {
        match self {
            TaskKind::FilterExpr(_) | TaskKind::FilterBySource { .. } => "filter_by",
            TaskKind::GroupBy { .. } => "groupby",
            TaskKind::Join(_) => "join",
            TaskKind::MapDate(_)
            | TaskKind::MapExtract(_)
            | TaskKind::MapLocation(_)
            | TaskKind::MapWords(_)
            | TaskKind::MapCustom { .. } => "map",
            TaskKind::TopN(_) => "topn",
            TaskKind::Sort(_) => "sort",
            TaskKind::Distinct(_) => "distinct",
            TaskKind::Limit(_) => "limit",
            TaskKind::Union => "union",
            TaskKind::Project(_) => "project",
            TaskKind::Parallel(_) => "parallel",
            TaskKind::Custom(c) => c.name(),
        }
    }

    /// Number of inputs the task consumes (None = any).
    pub fn arity(&self) -> Option<usize> {
        match self {
            TaskKind::Join(_) => Some(2),
            TaskKind::Union => None,
            TaskKind::Parallel(_) => Some(1),
            _ => Some(1),
        }
    }

    /// Columns this task reads from its input(s) — drives projection
    /// pruning. `None` = reads everything (custom tasks).
    pub fn input_columns(&self) -> Option<Vec<String>> {
        match self {
            TaskKind::FilterExpr(e) => Some(e.referenced_columns()),
            TaskKind::FilterBySource { columns, .. } => Some(columns.clone()),
            TaskKind::GroupBy { builtin, custom } => {
                let mut cols = builtin.keys.clone();
                for a in &builtin.aggregates {
                    cols.push(a.apply_on.clone());
                }
                for c in custom {
                    cols.push(c.apply_on.clone());
                }
                Some(cols)
            }
            TaskKind::Join(j) => {
                let mut cols = j.spec.left_keys.clone();
                cols.extend(j.spec.right_keys.clone());
                for p in &j.spec.projection {
                    cols.push(p.column.clone());
                }
                if j.spec.projection.is_empty() {
                    None // default projection keeps everything
                } else {
                    Some(cols)
                }
            }
            TaskKind::MapDate(m) => Some(vec![m.input_column.clone()]),
            TaskKind::MapExtract(m) => Some(vec![m.input_column.clone()]),
            TaskKind::MapLocation(m) => Some(vec![m.input_column.clone()]),
            TaskKind::MapWords(m) => Some(vec![m.input_column.clone()]),
            TaskKind::MapCustom { input, .. } => Some(vec![input.clone()]),
            TaskKind::TopN(t) => {
                let mut cols = t.groupby.clone();
                cols.extend(t.order_by.iter().map(|k| k.column.clone()));
                Some(cols)
            }
            TaskKind::Sort(keys) => Some(keys.iter().map(|k| k.column.clone()).collect()),
            TaskKind::Distinct(cols) => {
                if cols.is_empty() {
                    None
                } else {
                    Some(cols.clone())
                }
            }
            TaskKind::Limit(_) | TaskKind::Union => None,
            TaskKind::Project(cols) => Some(cols.clone()),
            TaskKind::Parallel(tasks) => {
                let mut all = Vec::new();
                for t in tasks {
                    match t.kind.input_columns() {
                        Some(cols) => all.extend(cols),
                        None => return None,
                    }
                }
                Some(all)
            }
            TaskKind::Custom(_) => None,
        }
    }

    /// Output schema given the input schema(s); validates use-site columns.
    pub fn output_schema(&self, task_name: &str, inputs: &[Schema]) -> Result<Schema> {
        let sch_err = |e: shareinsights_tabular::TabularError| EngineError::SchemaMismatch {
            task: task_name.to_string(),
            flow: String::new(),
            message: e.to_string(),
        };
        let single = || -> Result<&Schema> {
            inputs.first().ok_or_else(|| {
                EngineError::Internal(format!("task '{task_name}' got no input schema"))
            })
        };
        match self {
            TaskKind::FilterExpr(e) => {
                let s = single()?;
                s.require(&e.referenced_columns()).map_err(sch_err)?;
                Ok(s.clone())
            }
            TaskKind::FilterBySource { columns, .. } => {
                let s = single()?;
                s.require(columns).map_err(sch_err)?;
                Ok(s.clone())
            }
            TaskKind::GroupBy { builtin, custom } => {
                let s = single()?;
                let mut out = builtin.output_schema(s).map_err(sch_err)?;
                for c in custom {
                    let in_ty = s.field(&c.apply_on).map_err(sch_err)?.data_type();
                    out = out.upsert_field(Field::new(&c.out_field, c.func.output_type(in_ty)));
                }
                Ok(out)
            }
            TaskKind::Join(j) => {
                if inputs.len() != 2 {
                    return Err(EngineError::SchemaMismatch {
                        task: task_name.to_string(),
                        flow: String::new(),
                        message: format!("join needs exactly 2 inputs, got {}", inputs.len()),
                    });
                }
                j.spec
                    .output_schema(&inputs[0], &inputs[1])
                    .map_err(sch_err)
            }
            TaskKind::MapDate(m) => {
                let s = single()?;
                s.require(std::slice::from_ref(&m.input_column))
                    .map_err(sch_err)?;
                Ok(s.upsert_field(Field::new(&m.output_column, DataType::Utf8)))
            }
            TaskKind::MapExtract(m) => {
                let s = single()?;
                s.require(std::slice::from_ref(&m.input_column))
                    .map_err(sch_err)?;
                Ok(s.upsert_field(Field::new(&m.output_column, DataType::Utf8)))
            }
            TaskKind::MapLocation(m) => {
                let s = single()?;
                s.require(std::slice::from_ref(&m.input_column))
                    .map_err(sch_err)?;
                Ok(s.upsert_field(Field::new(&m.output_column, DataType::Utf8)))
            }
            TaskKind::MapWords(m) => {
                let s = single()?;
                s.require(std::slice::from_ref(&m.input_column))
                    .map_err(sch_err)?;
                Ok(s.upsert_field(Field::new(&m.output_column, DataType::Utf8)))
            }
            TaskKind::MapCustom { input, output, .. } => {
                let s = single()?;
                s.require(std::slice::from_ref(input)).map_err(sch_err)?;
                // A custom scalar operator's result type is unknown until it
                // runs; declare Utf8-compatible Null (unifies later).
                Ok(s.upsert_field(Field::new(output, DataType::Null)))
            }
            TaskKind::TopN(t) => {
                let s = single()?;
                s.require(&t.groupby).map_err(sch_err)?;
                s.require(
                    &t.order_by
                        .iter()
                        .map(|k| k.column.clone())
                        .collect::<Vec<_>>(),
                )
                .map_err(sch_err)?;
                Ok(s.clone())
            }
            TaskKind::Sort(keys) => {
                let s = single()?;
                s.require(&keys.iter().map(|k| k.column.clone()).collect::<Vec<_>>())
                    .map_err(sch_err)?;
                Ok(s.clone())
            }
            TaskKind::Distinct(cols) => {
                let s = single()?;
                s.require(cols).map_err(sch_err)?;
                Ok(s.clone())
            }
            TaskKind::Limit(_) => Ok(single()?.clone()),
            TaskKind::Union => {
                let mut iter = inputs.iter();
                let first = iter
                    .next()
                    .ok_or_else(|| EngineError::Internal("union with no inputs".into()))?;
                let mut acc = first.clone();
                for s in iter {
                    acc = acc.unify(s).map_err(sch_err)?;
                }
                Ok(acc)
            }
            TaskKind::Project(cols) => single()?.project(cols).map_err(sch_err),
            TaskKind::Parallel(tasks) => {
                let mut schema = single()?.clone();
                for t in tasks {
                    schema = t.kind.output_schema(&t.name, &[schema])?;
                }
                Ok(schema)
            }
            TaskKind::Custom(c) => c.output_schema(single()?),
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Runtime context a task may need: widget selections and shared tables for
/// semijoin filters.
pub struct TaskRuntime<'a> {
    /// Selection provider (None = no selections; filters become no-ops).
    pub selections: Option<&'a dyn SelectionProvider>,
    /// Lookup of already-materialised data objects by name.
    pub lookup_table: &'a dyn Fn(&str) -> Option<Table>,
}

impl<'a> TaskRuntime<'a> {
    /// A runtime with no selections and no shared tables.
    pub fn empty() -> TaskRuntime<'static> {
        TaskRuntime {
            selections: None,
            lookup_table: &|_| None,
        }
    }
}

fn exec_err(task: &str, e: impl std::fmt::Display) -> EngineError {
    EngineError::Execution {
        task: task.to_string(),
        message: e.to_string(),
    }
}

impl TaskKind {
    /// Execute the task on its inputs (columnar kernels).
    pub fn execute(
        &self,
        task_name: &str,
        inputs: &[Table],
        rt: &TaskRuntime<'_>,
    ) -> Result<Table> {
        let single = || -> Result<&Table> {
            inputs
                .first()
                .ok_or_else(|| EngineError::Internal(format!("task '{task_name}' got no input")))
        };
        match self {
            TaskKind::FilterExpr(e) => {
                ops::filter_by_expr(single()?, e).map_err(|er| exec_err(task_name, er))
            }
            TaskKind::FilterBySource {
                columns,
                source,
                source_columns,
            } => {
                execute_filter_by_source(task_name, single()?, columns, source, source_columns, rt)
            }
            TaskKind::GroupBy { builtin, custom } => {
                execute_groupby(task_name, single()?, builtin, custom)
            }
            TaskKind::Join(j) => {
                if inputs.len() != 2 {
                    return Err(exec_err(
                        task_name,
                        format!("join needs 2 inputs, got {}", inputs.len()),
                    ));
                }
                ops::join(&inputs[0], &inputs[1], &j.spec).map_err(|e| exec_err(task_name, e))
            }
            TaskKind::MapDate(m) => ops::map_date(single()?, m).map_err(|e| exec_err(task_name, e)),
            TaskKind::MapExtract(m) => {
                ops::map_extract(single()?, m).map_err(|e| exec_err(task_name, e))
            }
            TaskKind::MapLocation(m) => {
                ops::map_extract_location(single()?, m).map_err(|e| exec_err(task_name, e))
            }
            TaskKind::MapWords(m) => {
                ops::map_extract_words(single()?, m).map_err(|e| exec_err(task_name, e))
            }
            TaskKind::MapCustom { op, input, output } => {
                let t = single()?;
                let col = t.column(input).map_err(|e| exec_err(task_name, e))?;
                let values: Vec<Value> =
                    (0..t.num_rows()).map(|i| op.apply(&col.value(i))).collect();
                t.with_column(output, shareinsights_tabular::Column::from_values(&values))
                    .map_err(|e| exec_err(task_name, e))
            }
            TaskKind::TopN(t) => ops::topn(single()?, t).map_err(|e| exec_err(task_name, e)),
            TaskKind::Sort(keys) => ops::sort(single()?, keys).map_err(|e| exec_err(task_name, e)),
            TaskKind::Distinct(cols) => {
                ops::distinct(single()?, cols).map_err(|e| exec_err(task_name, e))
            }
            TaskKind::Limit(n) => Ok(single()?.limit(*n)),
            TaskKind::Union => ops::union_all(inputs).map_err(|e| exec_err(task_name, e)),
            TaskKind::Project(cols) => single()?.project(cols).map_err(|e| exec_err(task_name, e)),
            TaskKind::Parallel(tasks) => {
                let mut current = single()?.clone();
                for t in tasks {
                    current = t
                        .kind
                        .execute(&t.name, std::slice::from_ref(&current), rt)?;
                }
                Ok(current)
            }
            TaskKind::Custom(c) => c.execute(single()?),
        }
    }

    /// Try to execute this task against an indexed base table, using the
    /// per-column acceleration indexes instead of the scan kernels. Returns
    /// `None` when the task shape (or the specific columns it touches) is
    /// not covered — the caller falls back to [`TaskKind::execute`], which
    /// also reproduces any error the scan path would report. Covered
    /// shapes: widget-sourced `filter_by` (value sets and ranges), builtin
    /// `groupby` over a dictionary key, and single-key `sort`.
    pub fn execute_indexed(&self, indexed: &IndexedTable, rt: &TaskRuntime<'_>) -> Option<Table> {
        match self {
            TaskKind::FilterBySource {
                columns,
                source: FilterSource::Widget(widget),
                source_columns,
            } => {
                let Some(provider) = rt.selections else {
                    // No interaction context: the scan path shows all rows.
                    return Some(indexed.table().clone());
                };
                // The first applied constraint runs against the index; the
                // rest filter the (much smaller) intermediate via scans.
                let mut current: Option<Table> = None;
                for (i, col) in columns.iter().enumerate() {
                    let src_col = source_columns
                        .get(i)
                        .or_else(|| source_columns.first())
                        .map(String::as_str)
                        .unwrap_or("value");
                    match provider.selection(widget, src_col) {
                        Some(Selection::Values(vals)) => {
                            let spec = FilterByValues::single(col.clone(), vals);
                            current = Some(match current.take() {
                                None => indexed.filter_by_values(&spec)?,
                                Some(t) => ops::filter_by_values(&t, &spec).ok()?,
                            });
                        }
                        Some(Selection::Range(lo, hi)) => {
                            let range = FilterByValues::range(col.clone(), lo, hi);
                            current = Some(match current.take() {
                                None => indexed.filter_by_range(&range)?,
                                Some(t) => ops::filter::filter_by_range(&t, &range).ok()?,
                            });
                        }
                        None => {} // unconstrained
                    }
                }
                Some(current.unwrap_or_else(|| indexed.table().clone()))
            }
            TaskKind::GroupBy { builtin, custom } if custom.is_empty() => indexed.groupby(builtin),
            TaskKind::Sort(keys) => indexed.sort(keys),
            _ => None,
        }
    }
}

fn execute_filter_by_source(
    task_name: &str,
    input: &Table,
    columns: &[String],
    source: &FilterSource,
    source_columns: &[String],
    rt: &TaskRuntime<'_>,
) -> Result<Table> {
    match source {
        FilterSource::Widget(widget) => {
            let Some(provider) = rt.selections else {
                return Ok(input.clone()); // no interaction context: show all
            };
            let mut current = input.clone();
            for (i, col) in columns.iter().enumerate() {
                let src_col = source_columns
                    .get(i)
                    .or_else(|| source_columns.first())
                    .map(String::as_str)
                    .unwrap_or("value");
                match provider.selection(widget, src_col) {
                    Some(Selection::Values(vals)) => {
                        let spec = FilterByValues::single(col.clone(), vals);
                        current = ops::filter_by_values(&current, &spec)
                            .map_err(|e| exec_err(task_name, e))?;
                    }
                    Some(Selection::Range(lo, hi)) => {
                        let range = FilterByValues::range(col.clone(), lo, hi);
                        current = ops::filter::filter_by_range(&current, &range)
                            .map_err(|e| exec_err(task_name, e))?;
                    }
                    None => {} // unconstrained
                }
            }
            Ok(current)
        }
        FilterSource::Data(object) => {
            let Some(source_table) = (rt.lookup_table)(object) else {
                return Err(exec_err(
                    task_name,
                    format!("filter_source 'D.{object}' is not materialised"),
                ));
            };
            let mut current = input.clone();
            for (i, col) in columns.iter().enumerate() {
                let src_col = source_columns
                    .get(i)
                    .or_else(|| source_columns.first())
                    .map(String::as_str)
                    .unwrap_or(col.as_str());
                let src = source_table
                    .column(src_col)
                    .map_err(|e| exec_err(task_name, e))?;
                let values: Vec<Value> = src.iter().filter(|v| !v.is_null()).collect();
                let spec = FilterByValues::single(col.clone(), values);
                current =
                    ops::filter_by_values(&current, &spec).map_err(|e| exec_err(task_name, e))?;
            }
            Ok(current)
        }
    }
}

fn execute_groupby(
    task_name: &str,
    input: &Table,
    builtin: &GroupBy,
    custom: &[CustomAgg],
) -> Result<Table> {
    if custom.is_empty() {
        return ops::groupby(input, builtin).map_err(|e| exec_err(task_name, e));
    }
    // Mixed path: run the builtin part (or bare keys) and then attach
    // custom aggregates computed per group.
    let base = if builtin.aggregates.is_empty() {
        // Avoid the spurious default count when only custom aggs exist.
        let keys_only = GroupBy {
            keys: builtin.keys.clone(),
            aggregates: vec![AggregateSpec::new(AggKind::CountAll, "", "__count_tmp")],
            orderby_aggregates: false,
        };
        let t = ops::groupby(input, &keys_only).map_err(|e| exec_err(task_name, e))?;
        t.project(&builtin.keys)
            .map_err(|e| exec_err(task_name, e))?
    } else {
        ops::groupby(input, builtin).map_err(|e| exec_err(task_name, e))?
    };

    // Bucket input rows per key.
    let key_cols: Vec<_> = builtin
        .keys
        .iter()
        .map(|k| input.column(k).cloned())
        .collect::<shareinsights_tabular::Result<Vec<_>>>()
        .map_err(|e| exec_err(task_name, e))?;
    let mut buckets: HashMap<Row, Vec<usize>> = HashMap::new();
    for i in 0..input.num_rows() {
        let key = Row(key_cols.iter().map(|c| c.value(i)).collect());
        buckets.entry(key).or_default().push(i);
    }

    let base_key_cols: Vec<_> = builtin
        .keys
        .iter()
        .map(|k| base.column(k).cloned())
        .collect::<shareinsights_tabular::Result<Vec<_>>>()
        .map_err(|e| exec_err(task_name, e))?;

    let mut out = base.clone();
    for cagg in custom {
        let src = input
            .column(&cagg.apply_on)
            .map_err(|e| exec_err(task_name, e))?;
        let mut vals = Vec::with_capacity(base.num_rows());
        for g in 0..base.num_rows() {
            let key = Row(base_key_cols.iter().map(|c| c.value(g)).collect());
            let rows = buckets.get(&key).map(Vec::as_slice).unwrap_or(&[]);
            let bag: Vec<Value> = rows.iter().map(|&i| src.value(i)).collect();
            vals.push(
                cagg.func
                    .aggregate(&bag)
                    .map_err(|e| exec_err(task_name, e))?,
            );
        }
        out = out
            .with_column(
                &cagg.out_field,
                shareinsights_tabular::Column::from_values(&vals),
            )
            .map_err(|e| exec_err(task_name, e))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_flowfile::parse_flow_file;
    use shareinsights_tabular::row;

    fn env_with<'a>(
        registry: &'a TaskRegistry,
        all_tasks: &'a [TaskDef],
        load: &'a dyn Fn(&str) -> Option<String>,
    ) -> InterpretEnv<'a> {
        InterpretEnv {
            registry,
            load_text: load,
            all_tasks,
        }
    }

    fn interpret_src(src: &str, task: &str) -> Result<NamedTask> {
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let loader = |name: &str| -> Option<String> {
            (name == "players.txt").then(|| "dhoni => MS Dhoni\nkohli => Virat Kohli".to_string())
        };
        let def = ff.task(task).expect("task exists").clone();
        let env = env_with(&reg, &ff.tasks, &loader);
        interpret_task(&def, &env)
    }

    #[test]
    fn interprets_paper_figure7_filter() {
        let t = interpret_src(
            "T:\n  classification:\n    type: filter_by\n    filter_expression: rating < 3\n",
            "classification",
        )
        .unwrap();
        assert!(matches!(t.kind, TaskKind::FilterExpr(_)));
    }

    #[test]
    fn interprets_paper_figure8_groupby() {
        let src = "T:\n  get_svn_jira_count:\n    type: groupby\n    groupby: [project, year]\n    aggregates:\n    - operator: sum\n      apply_on: noOfCheckins\n      out_field: total_checkins\n    - operator: sum\n      apply_on: noOfBugs\n      out_field: total_jira\n";
        let t = interpret_src(src, "get_svn_jira_count").unwrap();
        let TaskKind::GroupBy { builtin, custom } = &t.kind else {
            panic!("expected groupby")
        };
        assert_eq!(builtin.keys, vec!["project", "year"]);
        assert_eq!(builtin.aggregates.len(), 2);
        assert!(custom.is_empty());
        // Schema propagation on the paper's svn_jira_summary shape.
        let input = Schema::of(&[
            ("project", DataType::Utf8),
            ("year", DataType::Int64),
            ("noOfBugs", DataType::Int64),
            ("noOfCheckins", DataType::Int64),
        ]);
        let out = t.kind.output_schema(&t.name, &[input]).unwrap();
        assert_eq!(
            out.names(),
            vec!["project", "year", "total_checkins", "total_jira"]
        );
    }

    #[test]
    fn interprets_paper_join_with_projection() {
        let src = "T:\n  join_player_team:\n    type: join\n    left: players_tweets by player\n    right: team_players by player\n    join_condition: left outer\n    project:\n      players_tweets_date: date\n      players_tweets_count: noOfTweets\n      team_players_team: team\n";
        let t = interpret_src(src, "join_player_team").unwrap();
        let TaskKind::Join(j) = &t.kind else { panic!() };
        assert_eq!(j.left_name, "players_tweets");
        assert_eq!(j.spec.condition, JoinCondition::LeftOuter);
        assert_eq!(j.spec.projection.len(), 3);
        assert!(j.spec.projection[2].rename == "team" && !j.spec.projection[2].from_left);
    }

    #[test]
    fn interprets_map_date_and_validates_pattern() {
        let src = "T:\n  norm_ipldate:\n    type: map\n    operator: date\n    transform: postedTime\n    input_format: 'E MMM dd HH:mm:ss Z yyyy'\n    output_format: yyyy-MM-dd\n    output: date\n";
        let t = interpret_src(src, "norm_ipldate").unwrap();
        assert!(matches!(t.kind, TaskKind::MapDate(_)));

        let bad = "T:\n  bad:\n    type: map\n    operator: date\n    transform: x\n    input_format: 'QQQQ'\n    output_format: yyyy\n    output: y\n";
        let err = interpret_src(bad, "bad").unwrap_err();
        assert!(err.to_string().contains("T.bad"));
    }

    #[test]
    fn interprets_extract_with_dict_loading() {
        let src = "T:\n  extract_players:\n    type: map\n    operator: extract\n    transform: body\n    dict: players.txt\n    output: player\n";
        let t = interpret_src(src, "extract_players").unwrap();
        let TaskKind::MapExtract(m) = &t.kind else {
            panic!()
        };
        assert_eq!(m.dict.len(), 2);
        assert!(m.explode);

        let missing = "T:\n  e:\n    type: map\n    operator: extract\n    transform: body\n    dict: nope.txt\n    output: p\n";
        let err = interpret_src(missing, "e").unwrap_err();
        assert!(err.to_string().contains("nope.txt"));
    }

    #[test]
    fn interprets_parallel_composite() {
        let src = "T:\n  pipeline:\n    parallel: [T.a, T.b]\n  a:\n    type: map\n    operator: extract_words\n    transform: body\n    output: word\n  b:\n    type: limit\n    limit: 5\n";
        let t = interpret_src(src, "pipeline").unwrap();
        let TaskKind::Parallel(subs) = &t.kind else {
            panic!()
        };
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].name, "a");
    }

    #[test]
    fn interprets_topn() {
        let src = "T:\n  topwords:\n    type: topn\n    groupby: [date]\n    orderby_column: [count DESC]\n    limit: 20\n";
        let t = interpret_src(src, "topwords").unwrap();
        let TaskKind::TopN(tn) = &t.kind else {
            panic!()
        };
        assert_eq!(tn.limit, 20);
        assert_eq!(tn.order_by[0].column, "count");
    }

    #[test]
    fn unknown_type_suggests_extensions() {
        let err = interpret_src("T:\n  x:\n    type: frobnicate\n", "x").unwrap_err();
        assert!(err.to_string().contains("registered extension"));
    }

    #[test]
    fn filter_by_source_executes_with_selection() {
        // The figure-15 interaction filter.
        let src = "T:\n  filter_projects:\n    type: filter_by\n    filter_by: [project]\n    filter_source: W.project_category_bubble\n    filter_val: [text]\n";
        let t = interpret_src(src, "filter_projects").unwrap();
        let table =
            Table::from_rows(&["project", "n"], &[row!["pig", 1i64], row!["hive", 2i64]]).unwrap();

        // No provider -> pass-through.
        let out = t
            .kind
            .execute(&t.name, std::slice::from_ref(&table), &TaskRuntime::empty())
            .unwrap();
        assert_eq!(out.num_rows(), 2);

        // With a selection -> filters.
        let sel = crate::selection::StaticSelections::new();
        sel.set(
            "project_category_bubble",
            "text",
            Selection::Values(vec!["pig".into()]),
        );
        let rt = TaskRuntime {
            selections: Some(&sel),
            lookup_table: &|_| None,
        };
        let out = t
            .kind
            .execute(&t.name, std::slice::from_ref(&table), &rt)
            .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "project").unwrap().to_string(), "pig");
    }

    #[test]
    fn filter_by_range_selection() {
        let src = "T:\n  filter_by_date:\n    type: filter_by\n    filter_by: [date]\n    filter_source: W.ipl_duration\n";
        let t = interpret_src(src, "filter_by_date").unwrap();
        let table = Table::from_rows(
            &["date"],
            &[row!["2013-05-01"], row!["2013-05-05"], row!["2013-05-20"]],
        )
        .unwrap();
        let sel = crate::selection::StaticSelections::new();
        sel.set(
            "ipl_duration",
            "date",
            Selection::Range("2013-05-02".into(), "2013-05-10".into()),
        );
        let rt = TaskRuntime {
            selections: Some(&sel),
            lookup_table: &|_| None,
        };
        let out = t
            .kind
            .execute(&t.name, std::slice::from_ref(&table), &rt)
            .unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn indexed_execute_matches_scan_execute() {
        let table = Table::from_rows(
            &["project", "n"],
            &[
                row!["pig", 1i64],
                row!["hive", 2i64],
                row!["pig", 3i64],
                row!["spark", 4i64],
            ],
        )
        .unwrap();
        let indexed = IndexedTable::new(table.clone());
        let sel = crate::selection::StaticSelections::new();
        sel.set(
            "project_category_bubble",
            "text",
            Selection::Values(vec!["pig".into(), "spark".into()]),
        );
        let rt = TaskRuntime {
            selections: Some(&sel),
            lookup_table: &|_| None,
        };

        let filter_src = "T:\n  f:\n    type: filter_by\n    filter_by: [project]\n    filter_source: W.project_category_bubble\n    filter_val: [text]\n";
        let groupby_src = "T:\n  g:\n    type: groupby\n    groupby: [project]\n    aggregates:\n    - operator: sum\n      apply_on: n\n      out_field: total\n";
        let sort_src = "T:\n  s:\n    type: sort\n    orderby_column: [project DESC]\n";
        for src in [filter_src, groupby_src, sort_src] {
            let name = src.split_whitespace().nth(1).unwrap().trim_end_matches(':');
            let t = interpret_src(src, name).unwrap();
            let scan = t
                .kind
                .execute(&t.name, std::slice::from_ref(&table), &rt)
                .unwrap();
            let fast = t.kind.execute_indexed(&indexed, &rt).expect("covered");
            assert_eq!(fast, scan, "task {name}");
        }

        // No selection provider: pass-through, like the scan path.
        let t = interpret_src(filter_src, "f").unwrap();
        let out = t
            .kind
            .execute_indexed(&indexed, &TaskRuntime::empty())
            .unwrap();
        assert_eq!(out.num_rows(), 4);

        // Uncovered shapes decline.
        let t = interpret_src("T:\n  l:\n    type: limit\n    limit: 2\n", "l").unwrap();
        assert!(t.kind.execute_indexed(&indexed, &rt).is_none());
    }

    #[test]
    fn semijoin_filter_from_data_object() {
        let src = "T:\n  keep_known:\n    type: filter_by\n    filter_by: [team]\n    filter_source: D.dim_teams\n    filter_val: [team]\n";
        let t = interpret_src(src, "keep_known").unwrap();
        let table = Table::from_rows(&["team"], &[row!["CSK"], row!["XXX"]]).unwrap();
        let dim = Table::from_rows(&["team"], &[row!["CSK"], row!["MI"]]).unwrap();
        let rt = TaskRuntime {
            selections: None,
            lookup_table: &move |name| (name == "dim_teams").then(|| dim.clone()),
        };
        let out = t
            .kind
            .execute(&t.name, std::slice::from_ref(&table), &rt)
            .unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn custom_aggregate_in_groupby() {
        struct Range01;
        impl AggregateFunction for Range01 {
            fn name(&self) -> &str {
                "spread"
            }
            fn output_type(&self, _input: DataType) -> DataType {
                DataType::Float64
            }
            fn aggregate(&self, values: &[Value]) -> shareinsights_tabular::Result<Value> {
                let nums: Vec<f64> = values.iter().filter_map(|v| v.as_float()).collect();
                if nums.is_empty() {
                    return Ok(Value::Null);
                }
                let max = nums.iter().cloned().fold(f64::MIN, f64::max);
                let min = nums.iter().cloned().fold(f64::MAX, f64::min);
                Ok(Value::Float(max - min))
            }
        }
        let ff = parse_flow_file(
            "t",
            "T:\n  g:\n    type: groupby\n    groupby: [k]\n    aggregates:\n    - operator: spread\n      apply_on: v\n      out_field: v_spread\n",
        )
        .unwrap();
        let reg = TaskRegistry::new();
        reg.register_aggregate(Arc::new(Range01));
        let loader = |_: &str| None;
        let env = env_with(&reg, &ff.tasks, &loader);
        let t = interpret_task(ff.task("g").unwrap(), &env).unwrap();

        let table = Table::from_rows(
            &["k", "v"],
            &[row!["a", 1i64], row!["a", 5i64], row!["b", 2i64]],
        )
        .unwrap();
        let out = t
            .kind
            .execute(&t.name, std::slice::from_ref(&table), &TaskRuntime::empty())
            .unwrap();
        assert_eq!(out.schema().names(), vec!["k", "v_spread"]);
        assert_eq!(out.value(0, "v_spread").unwrap(), Value::Float(4.0));
        assert_eq!(out.value(1, "v_spread").unwrap(), Value::Float(0.0));
    }

    #[test]
    fn parallel_composes_schemas_and_rows() {
        let src = "T:\n  pipe:\n    parallel: [T.d, T.w]\n  d:\n    type: map\n    operator: date\n    transform: posted\n    input_format: yyyy-MM-dd\n    output_format: 'yyyy/MM/dd'\n    output: date\n  w:\n    type: map\n    operator: extract_words\n    transform: body\n    output: word\n";
        let t = interpret_src(src, "pipe").unwrap();
        let table = Table::from_rows(
            &["posted", "body"],
            &[row!["2013-05-02", "great match today"]],
        )
        .unwrap();
        let schema = t
            .kind
            .output_schema(&t.name, &[table.schema().clone()])
            .unwrap();
        assert_eq!(schema.names(), vec!["posted", "body", "date", "word"]);
        let out = t
            .kind
            .execute(&t.name, std::slice::from_ref(&table), &TaskRuntime::empty())
            .unwrap();
        assert_eq!(out.num_rows(), 3, "one row per word");
        assert_eq!(out.value(0, "date").unwrap().to_string(), "2013/05/02");
    }

    #[test]
    fn input_columns_for_pruning() {
        let t = interpret_src(
            "T:\n  f:\n    type: filter_by\n    filter_expression: a < 3 and b == 'x'\n",
            "f",
        )
        .unwrap();
        assert_eq!(
            t.kind.input_columns(),
            Some(vec!["a".to_string(), "b".to_string()])
        );
    }
}
