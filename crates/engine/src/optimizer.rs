//! AST/plan optimization (§4.1: "The AST provides opportunities to
//! optimize the complete flow"; §6 names minimizing data transfers to the
//! client as the headline example).
//!
//! Three passes, individually toggleable so the PERF-OPT ablation bench can
//! measure each:
//!
//! * **Dead-sink elimination** — flows whose outputs feed no endpoint, no
//!   published object and no downstream flow are dropped entirely.
//! * **Filter reordering** — within a flow chain, expression filters are
//!   hoisted ahead of row-expanding or column-adding tasks when every
//!   column they reference already exists upstream (filters shrink data
//!   before the expensive work).
//! * **Projection pruning** — when the tail of a chain only reads a subset
//!   of columns (e.g. a groupby), a `Project` task is inserted as early as
//!   possible so unused columns are dropped before wide operators.

use crate::compile::CompiledPipeline;
use crate::task::{NamedTask, TaskKind};
use std::collections::BTreeSet;

/// Pass toggles.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Drop flows that feed nothing observable.
    pub dead_sink_elimination: bool,
    /// Hoist filters toward the head of chains.
    pub filter_reorder: bool,
    /// Insert early projections.
    pub projection_pruning: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            dead_sink_elimination: true,
            filter_reorder: true,
            projection_pruning: true,
        }
    }
}

impl OptimizerConfig {
    /// Everything off — the ablation baseline.
    pub fn disabled() -> Self {
        OptimizerConfig {
            dead_sink_elimination: false,
            filter_reorder: false,
            projection_pruning: false,
        }
    }
}

/// Statistics of what the optimizer did (surfaced in compile reports).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptimizerReport {
    /// Flows removed by dead-sink elimination.
    pub flows_removed: usize,
    /// Filter hoists performed.
    pub filters_hoisted: usize,
    /// Projections inserted.
    pub projections_inserted: usize,
}

/// Run the configured passes in place.
pub fn optimize(pipeline: &mut CompiledPipeline, cfg: &OptimizerConfig) -> OptimizerReport {
    let mut report = OptimizerReport::default();
    if cfg.dead_sink_elimination {
        report.flows_removed = eliminate_dead_sinks(pipeline);
    }
    if cfg.filter_reorder {
        for flow in &mut pipeline.flows {
            report.filters_hoisted += hoist_filters(&mut flow.tasks, &flow.inputs.len().clone());
        }
    }
    if cfg.projection_pruning {
        for flow in &mut pipeline.flows {
            report.projections_inserted += insert_projection(flow);
        }
    }
    report
}

/// Drop flows not needed for endpoints, published objects, or any object a
/// widget could read (endpoints cover that: widgets read endpoint data).
fn eliminate_dead_sinks(pipeline: &mut CompiledPipeline) -> usize {
    let mut targets: Vec<String> = pipeline.endpoints.clone();
    targets.extend(pipeline.published.keys().cloned());
    if targets.is_empty() {
        // Nothing observable declared: keep everything (data-processing
        // files under construction).
        return 0;
    }
    let live = pipeline.graph.needed_for(&targets);
    let before = pipeline.flows.len();
    pipeline.flows.retain(|f| live.contains(&f.output));
    before - pipeline.flows.len()
}

/// Hoist `FilterExpr` tasks leftwards past tasks that (a) don't remove the
/// columns the filter reads and (b) don't change row identity in a way the
/// filter depends on. Safe swaps: past `MapDate`/`MapLocation`/
/// `MapExtract`/`MapWords`/`MapCustom` when the filter doesn't read the map
/// output column, and past `Sort`.
fn hoist_filters(tasks: &mut [NamedTask], _n_inputs: &usize) -> usize {
    let mut hoists = 0;
    // Bubble-sort-style single pass repeated until fixpoint (chains are
    // short — the paper's longest is 3 tasks).
    loop {
        let mut moved = false;
        for i in 1..tasks.len() {
            let can_swap = {
                let (prev, cur) = (&tasks[i - 1], &tasks[i]);
                let TaskKind::FilterExpr(expr) = &cur.kind else {
                    continue;
                };
                let reads: BTreeSet<String> = expr.referenced_columns().into_iter().collect();
                match &prev.kind {
                    TaskKind::MapDate(m) => !reads.contains(&m.output_column),
                    TaskKind::MapLocation(m) => !reads.contains(&m.output_column),
                    TaskKind::MapExtract(m) => !m.explode && !reads.contains(&m.output_column),
                    TaskKind::MapCustom { output, .. } => !reads.contains(output),
                    TaskKind::Sort(_) => true,
                    _ => false,
                }
            };
            if can_swap {
                tasks.swap(i - 1, i);
                hoists += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    hoists
}

/// When a chain contains a `GroupBy` — the one genuinely column-reducing
/// task: its output holds only keys and aggregates — insert a `Project`
/// at the head of the flow keeping just the columns the prefix and the
/// group-by read. Only applied to single-input flows whose head tasks are
/// row-local (so the projection commutes with everything in between).
/// `TopN`/`Distinct` are column-*preserving*, so pruning before them would
/// drop columns the flow's output still carries.
fn insert_projection(flow: &mut crate::compile::CompiledFlow) -> usize {
    if flow.inputs.len() != 1 {
        return 0;
    }
    let Some(reduce_idx) = flow
        .tasks
        .iter()
        .position(|t| matches!(t.kind, TaskKind::GroupBy { .. }))
    else {
        return 0;
    };
    if !flow.tasks[..reduce_idx]
        .iter()
        .all(|t| t.kind.is_row_local())
    {
        return 0;
    }
    // Columns the group-by itself reads. Tasks after it consume its output
    // (keys + aggregate fields), which a source projection cannot affect.
    let mut needed: BTreeSet<String> = BTreeSet::new();
    match flow.tasks[reduce_idx].kind.input_columns() {
        Some(cols) => needed.extend(cols),
        None => return 0,
    }
    // Columns needed by the row-local prefix (their inputs), plus the
    // outputs they produce that the suffix needs are created anyway.
    for t in &flow.tasks[..reduce_idx] {
        if let Some(cols) = t.kind.input_columns() {
            needed.extend(cols);
        }
        // Outputs produced upstream don't need to come from the source.
        match &t.kind {
            TaskKind::MapDate(m) => {
                needed.remove(&m.output_column);
                needed.insert(m.input_column.clone());
            }
            TaskKind::MapExtract(m) => {
                needed.remove(&m.output_column);
                needed.insert(m.input_column.clone());
            }
            TaskKind::MapLocation(m) => {
                needed.remove(&m.output_column);
                needed.insert(m.input_column.clone());
            }
            TaskKind::MapWords(m) => {
                needed.remove(&m.output_column);
                needed.insert(m.input_column.clone());
            }
            TaskKind::MapCustom { input, output, .. } => {
                needed.remove(output);
                needed.insert(input.clone());
            }
            _ => {}
        }
    }
    if needed.is_empty() {
        return 0;
    }
    // Only worthwhile when it actually prunes: compare against the input
    // schema when known. Without a schema we still insert — Project of the
    // full set is a no-op at runtime but we avoid the task when we can
    // prove it useless.
    let cols: Vec<String> = needed.into_iter().collect();
    flow.tasks.insert(
        0,
        NamedTask {
            name: format!("__prune_{}", flow.output),
            kind: TaskKind::Project(cols),
        },
    );
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileEnv};
    use crate::ext::TaskRegistry;
    use shareinsights_flowfile::parse_flow_file;

    fn compile_with(src: &str, cfg: OptimizerConfig) -> CompiledPipeline {
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let mut env = CompileEnv::bare(&reg);
        env.optimizer = cfg;
        compile(&ff, &env).unwrap()
    }

    const DEAD_SINK: &str = r#"
D:
  src: [a, b]
T:
  f:
    type: filter_by
    filter_expression: a < 3
F:
  +D.live: D.src | T.f
  D.dead: D.src | T.f
"#;

    #[test]
    fn dead_sinks_removed_when_enabled() {
        let p = compile_with(DEAD_SINK, OptimizerConfig::default());
        assert_eq!(p.flows.len(), 1);
        assert_eq!(p.flows[0].output, "live");

        let p = compile_with(DEAD_SINK, OptimizerConfig::disabled());
        assert_eq!(p.flows.len(), 2);
    }

    #[test]
    fn published_objects_are_live() {
        let src = r#"
D:
  src: [a]
T:
  f:
    type: filter_by
    filter_expression: a < 3
F:
  D.shared: D.src | T.f
  D.shared:
    publish: shared_name
"#;
        let p = compile_with(src, OptimizerConfig::default());
        assert_eq!(p.flows.len(), 1, "published flow survives");
    }

    const FILTER_AFTER_MAP: &str = r#"
D:
  src: [posted, body, rating]
T:
  norm:
    type: map
    operator: date
    transform: posted
    input_format: yyyy-MM-dd
    output_format: 'yyyy/MM/dd'
    output: nice_date
  keep:
    type: filter_by
    filter_expression: rating < 3
F:
  +D.out: D.src | T.norm | T.keep
"#;

    #[test]
    fn filter_hoisted_before_map() {
        let p = compile_with(FILTER_AFTER_MAP, OptimizerConfig::default());
        let names: Vec<&str> = p.flows[0].tasks.iter().map(|t| t.name.as_str()).collect();
        let keep_pos = names.iter().position(|n| *n == "keep").unwrap();
        let norm_pos = names.iter().position(|n| *n == "norm").unwrap();
        assert!(keep_pos < norm_pos, "filter hoisted: {names:?}");

        let p = compile_with(FILTER_AFTER_MAP, OptimizerConfig::disabled());
        let names: Vec<&str> = p.flows[0].tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["norm", "keep"]);
    }

    #[test]
    fn filter_not_hoisted_past_producing_map() {
        // The filter reads the map's output column: must stay after it.
        let src = r#"
D:
  src: [posted]
T:
  norm:
    type: map
    operator: date
    transform: posted
    input_format: yyyy-MM-dd
    output_format: 'yyyy/MM/dd'
    output: date
  keep:
    type: filter_by
    filter_expression: date contains '2013'
F:
  +D.out: D.src | T.norm | T.keep
"#;
        let p = compile_with(src, OptimizerConfig::default());
        let names: Vec<&str> = p.flows[0].tasks.iter().map(|t| t.name.as_str()).collect();
        let keep_pos = names.iter().position(|n| *n == "keep").unwrap();
        let norm_pos = names.iter().position(|n| *n == "norm").unwrap();
        assert!(norm_pos < keep_pos, "{names:?}");
    }

    const WIDE_GROUPBY: &str = r#"
D:
  src: [a, b, c, d, e, f, wanted]
T:
  g:
    type: groupby
    groupby: [a]
    aggregates:
    - operator: sum
      apply_on: wanted
      out_field: total
F:
  +D.out: D.src | T.g
"#;

    #[test]
    fn projection_inserted_before_groupby() {
        let p = compile_with(WIDE_GROUPBY, OptimizerConfig::default());
        let first = &p.flows[0].tasks[0];
        let TaskKind::Project(cols) = &first.kind else {
            panic!("expected projection first, got {:?}", first.kind)
        };
        assert!(cols.contains(&"a".to_string()) && cols.contains(&"wanted".to_string()));
        assert_eq!(cols.len(), 2, "{cols:?}");

        let p = compile_with(WIDE_GROUPBY, OptimizerConfig::disabled());
        assert_eq!(p.flows[0].tasks.len(), 1);
    }

    #[test]
    fn optimized_schema_unchanged() {
        // The observable schema must be identical with and without passes.
        for src in [FILTER_AFTER_MAP, WIDE_GROUPBY] {
            let a = compile_with(src, OptimizerConfig::default());
            let b = compile_with(src, OptimizerConfig::disabled());
            assert_eq!(a.schemas.get("out"), b.schemas.get("out"), "{src}");
        }
    }
}
