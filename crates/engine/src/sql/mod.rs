//! SQL frontend over the shared task DAG (the *DashQL* direction).
//!
//! One engine, two languages: this module parses a practical `SELECT`
//! subset and lowers it onto exactly the operators the flow-file and
//! path-segment query languages already execute — the optimizer, the
//! `IndexedTable` kernels, and the server's generation-stamped result
//! caches are shared for free because nothing new executes.
//!
//! ```text
//! SELECT [DISTINCT] item[, ...]      item := col | agg(col) | count(*)
//! FROM endpoint [JOIN other ON a = b]          (with optional AS alias
//! [WHERE predicate]                             on aggregates)
//! [GROUP BY col[, ...]]
//! [ORDER BY col [ASC|DESC][, ...]]
//! [LIMIT n] [OFFSET n]
//! ```
//!
//! The pipeline is `tokenize` → [`parse::parse_select`] → [`lower::lower`]
//! producing a [`lower::SqlPlan`]: a linear stage list in the tabular
//! operator vocabulary. The server maps stages onto ad-hoc `QueryOp`s
//! (canonicalising to path segments when expressible, so equivalent SQL
//! and path queries share cache entries); the flow layer maps them onto
//! [`crate::task::TaskKind`]s for the `T.sql` task type.
//!
//! Everything is hand-rolled and dependency-free; diagnostics carry byte
//! offsets resolved to line/column, following `flowfile`'s `diag.rs`
//! conventions (`error (line N): message`, line 0 = whole input).

pub mod lex;
pub mod lower;
pub mod parse;

pub use lower::{lower, tasks_for_flow, SqlPlan, SqlStage};
pub use parse::{parse_select, ItemKind, JoinClause, SelectItem, SelectStmt};

use shareinsights_flowfile::diag::Diagnostic;
use std::fmt;

/// A spanned SQL diagnostic: what went wrong and where in the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line (0 = position unknown / whole query).
    pub line: usize,
    /// 1-based column within the line (0 = unknown).
    pub column: usize,
    /// Byte offset into the query text.
    pub offset: usize,
}

impl SqlError {
    /// Build an error at a byte offset of `src`.
    pub fn at(src: &str, offset: usize, message: impl Into<String>) -> SqlError {
        let (line, column) = line_col(src, offset);
        SqlError {
            message: message.into(),
            line,
            column,
            offset,
        }
    }

    /// Build an error with no position (line 0 = whole query, matching the
    /// flow-file convention).
    pub fn whole(message: impl Into<String>) -> SqlError {
        SqlError {
            message: message.into(),
            line: 0,
            column: 0,
            offset: 0,
        }
    }

    /// Convert to a flow-file diagnostic (used by the `T.sql` task type).
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error(self.line, self.message.clone())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "error: {}", self.message)
        } else {
            write!(
                f,
                "error (line {}, column {}): {}",
                self.line, self.column, self.message
            )
        }
    }
}

impl std::error::Error for SqlError {}

/// Resolve a byte offset to a 1-based (line, column) pair. Columns count
/// characters, not bytes, so a caret under the column lands correctly in
/// UTF-8 text.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src[..floor_char_boundary(src, offset)];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = before
        .rsplit('\n')
        .next()
        .map(|l| l.chars().count())
        .unwrap_or(0)
        + 1;
    (line, col)
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based_and_counts_chars() {
        assert_eq!(line_col("abc", 0), (1, 1));
        assert_eq!(line_col("abc", 2), (1, 3));
        assert_eq!(line_col("a\nbc", 2), (2, 1));
        assert_eq!(line_col("a\nbc", 3), (2, 2));
        // Multi-byte char counts as one column.
        assert_eq!(line_col("é x", 3), (1, 3));
        // Past-the-end clamps.
        assert_eq!(line_col("ab", 99), (1, 3));
    }

    #[test]
    fn display_matches_diag_conventions() {
        let e = SqlError::at("select", 3, "boom");
        assert_eq!(e.to_string(), "error (line 1, column 4): boom");
        assert_eq!(SqlError::whole("boom").to_string(), "error: boom");
        assert_eq!(e.to_diagnostic().to_string(), "error (line 1): boom");
    }
}
