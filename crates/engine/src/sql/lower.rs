//! AST → operator lowering.
//!
//! [`lower`] turns a parsed [`SelectStmt`] into a [`SqlPlan`]: a linear
//! list of stages in the tabular operator vocabulary, ordered by SQL's
//! logical evaluation order —
//!
//! ```text
//! JOIN* → WHERE → GROUP BY+aggregates → ORDER BY → projection → DISTINCT
//!       → LIMIT → OFFSET
//! ```
//!
//! (`ORDER BY` runs before the projection so it may reference any
//! pre-projection column; projected output is unaffected because `take`
//! preserves row order.) The server maps stages onto ad-hoc `QueryOp`s;
//! [`tasks_for_flow`] maps them onto [`TaskKind`]s for the `T.sql` flow
//! task. Both consumers therefore execute the exact operators the other
//! query languages already exercise — nothing in this module evaluates
//! data.

use super::parse::{ItemKind, SelectStmt};
use super::SqlError;
use crate::task::{NamedTask, TaskKind};
use shareinsights_tabular::agg::AggKind;
use shareinsights_tabular::expr::Expr;
use shareinsights_tabular::ops::{AggregateSpec, GroupBy, SortKey};

/// One lowered pipeline stage, in the shared operator vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStage {
    /// Inner equi-join against another endpoint.
    Join {
        /// Right-side endpoint name.
        table: String,
        /// Key column on the accumulated left side.
        left_on: String,
        /// Key column on the right side.
        right_on: String,
    },
    /// Row filter (`WHERE`).
    Filter(Expr),
    /// Grouped aggregation (keys + aggregates, including the global
    /// no-key case for `SELECT count(*) FROM t`).
    GroupBy(GroupBy),
    /// Multi-key sort (`ORDER BY`).
    Sort(Vec<SortKey>),
    /// Column selection, in select-list order.
    Project(Vec<String>),
    /// Whole-row deduplication (`SELECT DISTINCT`); runs post-projection.
    Distinct,
    /// `LIMIT n`.
    Limit(usize),
    /// `OFFSET n` (row skip; applied after `LIMIT` lowering keeps SQL's
    /// `LIMIT n OFFSET m` meaning because the stage order is
    /// offset-then-limit).
    Offset(usize),
}

/// A lowered query: the driving endpoint plus its stage pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlPlan {
    /// `FROM` endpoint name.
    pub table: String,
    /// Stages, in execution order.
    pub stages: Vec<SqlStage>,
}

/// Lower a parsed statement to a stage pipeline. Errors are semantic
/// (non-grouped select column, `*` mixed with `GROUP BY`, …) and carry
/// the offending item's span.
pub fn lower(src: &str, stmt: &SelectStmt) -> Result<SqlPlan, SqlError> {
    let mut stages = Vec::new();
    for j in &stmt.joins {
        stages.push(SqlStage::Join {
            table: j.table.clone(),
            left_on: j.left_on.clone(),
            right_on: j.right_on.clone(),
        });
    }
    if let Some(w) = &stmt.where_clause {
        stages.push(SqlStage::Filter(w.clone()));
    }

    let has_aggregates = stmt
        .items
        .iter()
        .any(|i| matches!(i.kind, ItemKind::Aggregate { .. }));

    // Output column names in select-list order (None = `*`).
    let projection: Option<Vec<String>>;

    if has_aggregates || !stmt.group_by.is_empty() {
        let mut aggregates = Vec::new();
        let mut names = Vec::new();
        for item in &stmt.items {
            match &item.kind {
                ItemKind::Star => {
                    return Err(SqlError::at(
                        src,
                        item.offset,
                        "'*' cannot be combined with GROUP BY or aggregates",
                    ));
                }
                ItemKind::Column(c) => {
                    if !stmt.group_by.iter().any(|k| k == c) {
                        return Err(SqlError::at(
                            src,
                            item.offset,
                            format!("column '{c}' must appear in GROUP BY or inside an aggregate"),
                        ));
                    }
                    names.push(c.clone());
                }
                ItemKind::Aggregate { func, apply_on } => {
                    let out_field = item
                        .alias
                        .clone()
                        .unwrap_or_else(|| default_agg_name(*func, apply_on));
                    names.push(out_field.clone());
                    aggregates.push(AggregateSpec::new(*func, apply_on.clone(), out_field));
                }
            }
        }
        if aggregates.is_empty() {
            return Err(SqlError::at(
                src,
                stmt.items.first().map(|i| i.offset).unwrap_or(0),
                "GROUP BY needs at least one aggregate in the select list",
            ));
        }
        stages.push(SqlStage::GroupBy(GroupBy::with_aggregates(
            &stmt.group_by,
            aggregates.clone(),
        )));
        // The groupby kernel emits keys then aggregates; skip the
        // projection when the select list already reads that way.
        let natural: Vec<String> = stmt
            .group_by
            .iter()
            .cloned()
            .chain(aggregates.iter().map(|a| a.out_field.clone()))
            .collect();
        projection = if names == natural { None } else { Some(names) };
    } else {
        let mut names = Vec::new();
        let mut star = false;
        for item in &stmt.items {
            match &item.kind {
                ItemKind::Star => star = true,
                ItemKind::Column(c) => {
                    if item.alias.is_some() {
                        return Err(SqlError::at(
                            src,
                            item.offset,
                            "AS aliases are only supported on aggregates",
                        ));
                    }
                    names.push(c.clone());
                }
                ItemKind::Aggregate { .. } => unreachable!("has_aggregates is false"),
            }
        }
        if star {
            if !names.is_empty() {
                return Err(SqlError::at(
                    src,
                    stmt.items.first().map(|i| i.offset).unwrap_or(0),
                    "'*' cannot be mixed with named columns",
                ));
            }
            projection = None;
        } else {
            projection = Some(names);
        }
    }

    if !stmt.order_by.is_empty() {
        stages.push(SqlStage::Sort(stmt.order_by.clone()));
    }
    if let Some(cols) = projection {
        stages.push(SqlStage::Project(cols));
    }
    if stmt.distinct {
        stages.push(SqlStage::Distinct);
    }
    if let Some(n) = stmt.offset_rows {
        stages.push(SqlStage::Offset(n));
    }
    if let Some(n) = stmt.limit {
        stages.push(SqlStage::Limit(n));
    }
    Ok(SqlPlan {
        table: stmt.table.clone(),
        stages,
    })
}

/// The default output column name for an aggregate, matching the
/// path-segment query convention (`sum_revenue`) so unaliased SQL
/// aggregates produce byte-identical results — and share cache entries —
/// with `groupby/<key>/<agg>/<col>`.
pub fn default_agg_name(func: AggKind, apply_on: &str) -> String {
    if apply_on.is_empty() {
        func.name().to_string()
    } else {
        format!("{}_{}", func.name(), apply_on)
    }
}

/// Parse + lower a query into a sequential task pipeline for the `T.sql`
/// flow task type. The `FROM` name is nominal — flow wiring decides the
/// actual input — and stages that only make sense against the serving
/// layer (`JOIN`, `OFFSET`) are rejected with a diagnostic pointing at
/// the flow-level alternative.
pub fn tasks_for_flow(task_name: &str, query: &str) -> Result<Vec<NamedTask>, SqlError> {
    let stmt = super::parse::parse_select(query)?;
    let plan = lower(query, &stmt)?;
    let mut out = Vec::new();
    for (i, stage) in plan.stages.iter().enumerate() {
        let (label, kind) = match stage {
            SqlStage::Join { .. } => {
                return Err(SqlError::whole(
                    "JOIN is not supported inside T.sql tasks; use a flow-level join task",
                ));
            }
            SqlStage::Offset(_) => {
                return Err(SqlError::whole(
                    "OFFSET is not supported inside T.sql tasks; page via the serving API",
                ));
            }
            SqlStage::Filter(e) => ("filter", TaskKind::FilterExpr(e.clone())),
            SqlStage::GroupBy(g) => (
                "groupby",
                TaskKind::GroupBy {
                    builtin: g.clone(),
                    custom: Vec::new(),
                },
            ),
            SqlStage::Sort(keys) => ("sort", TaskKind::Sort(keys.clone())),
            SqlStage::Project(cols) => ("project", TaskKind::Project(cols.clone())),
            SqlStage::Distinct => ("distinct", TaskKind::Distinct(Vec::new())),
            SqlStage::Limit(n) => ("limit", TaskKind::Limit(*n)),
        };
        out.push(NamedTask {
            name: format!("{task_name}:{i}.{label}"),
            kind,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::parse::parse_select;
    use super::*;
    use shareinsights_tabular::ops::SortOrder;

    fn plan(src: &str) -> SqlPlan {
        lower(src, &parse_select(src).unwrap()).unwrap()
    }

    #[test]
    fn canonical_groupby_needs_no_projection() {
        let p = plan("select brand, sum(revenue) from sales group by brand");
        assert_eq!(p.table, "sales");
        assert_eq!(p.stages.len(), 1);
        match &p.stages[0] {
            SqlStage::GroupBy(g) => {
                assert_eq!(g.keys, vec!["brand"]);
                assert_eq!(g.aggregates.len(), 1);
                assert_eq!(g.aggregates[0].out_field, "sum_revenue");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reordered_select_list_adds_projection() {
        let p = plan("select sum(revenue), brand from sales group by brand");
        assert!(matches!(&p.stages[1], SqlStage::Project(c) if c == &["sum_revenue", "brand"]));
    }

    #[test]
    fn stage_order_follows_sql_semantics() {
        let p = plan(
            "select distinct region from sales where units > 1 \
             order by region desc limit 3 offset 1",
        );
        let kinds: Vec<&str> = p
            .stages
            .iter()
            .map(|s| match s {
                SqlStage::Join { .. } => "join",
                SqlStage::Filter(_) => "filter",
                SqlStage::GroupBy(_) => "groupby",
                SqlStage::Sort(_) => "sort",
                SqlStage::Project(_) => "project",
                SqlStage::Distinct => "distinct",
                SqlStage::Limit(_) => "limit",
                SqlStage::Offset(_) => "offset",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["filter", "sort", "project", "distinct", "offset", "limit"]
        );
        assert!(
            matches!(&p.stages[1], SqlStage::Sort(k) if k[0].order == SortOrder::Desc),
            "sort key direction survives"
        );
    }

    #[test]
    fn global_aggregate_groups_without_keys() {
        let p = plan("select count(*) from t");
        match &p.stages[0] {
            SqlStage::GroupBy(g) => {
                assert!(g.keys.is_empty());
                assert_eq!(g.aggregates[0].out_field, "count_all");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn semantic_errors_are_spanned() {
        let src = "select brand, units from sales group by brand";
        let e = lower(src, &parse_select(src).unwrap()).unwrap_err();
        assert!(e.message.contains("'units' must appear in GROUP BY"), "{e}");
        assert_eq!(e.line, 1);
        assert!(e.column > 1);

        let src = "select * from t group by a";
        assert!(lower(src, &parse_select(src).unwrap()).is_err());
        let src = "select a as b from t";
        assert!(lower(src, &parse_select(src).unwrap())
            .unwrap_err()
            .message
            .contains("aliases"));
    }

    #[test]
    fn flow_tasks_mirror_stages_and_reject_serving_only_shapes() {
        let tasks = tasks_for_flow(
            "t_sql",
            "select brand, sum(revenue) from s group by brand limit 2",
        )
        .unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].name, "t_sql:0.groupby");
        assert!(matches!(tasks[1].kind, TaskKind::Limit(2)));

        assert!(tasks_for_flow("t", "select * from a join b on x = y")
            .unwrap_err()
            .message
            .contains("flow-level join"));
        assert!(tasks_for_flow("t", "select * from a offset 3")
            .unwrap_err()
            .message
            .contains("OFFSET"));
    }
}
