//! Hand-rolled SQL tokenizer. No dependencies, no panics: every byte of
//! arbitrary input either becomes a token or a spanned [`SqlError`].

use super::SqlError;

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What it is.
    pub tok: Tok,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Token payloads. Keywords are not distinguished here — the parser
/// matches identifiers case-insensitively in context, so `select` stays
/// usable as a column name wherever the grammar is unambiguous.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier: name plus whether it was `"quoted"`. Quoted
    /// identifiers are never treated as keywords, so reserved words stay
    /// usable as column names.
    Ident(String, bool),
    /// Single-quoted string literal; `''` escapes a quote.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Punctuation or operator.
    Sym(Sym),
}

/// Punctuation and comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `-` (only valid before a numeric literal).
    Minus,
    /// `=` or `==`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Sym {
    /// Spelling used in diagnostics.
    pub fn spelling(self) -> &'static str {
        match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::Comma => ",",
            Sym::Star => "*",
            Sym::Dot => ".",
            Sym::Semi => ";",
            Sym::Minus => "-",
            Sym::Eq => "=",
            Sym::Ne => "!=",
            Sym::Lt => "<",
            Sym::Le => "<=",
            Sym::Gt => ">",
            Sym::Ge => ">=",
        }
    }
}

impl Tok {
    /// Short description for "expected X, found Y" diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s, _) => format!("'{s}'"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Int(i) => format!("'{i}'"),
            Tok::Float(f) => format!("'{f}'"),
            Tok::Sym(s) => format!("'{}'", s.spelling()),
        }
    }
}

/// Tokenize a query. Whitespace separates tokens; `--` starts a
/// line comment. Returns the first lexical error encountered.
pub fn tokenize(src: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => push_sym(&mut out, Sym::LParen, start, &mut i),
            b')' => push_sym(&mut out, Sym::RParen, start, &mut i),
            b',' => push_sym(&mut out, Sym::Comma, start, &mut i),
            b'*' => push_sym(&mut out, Sym::Star, start, &mut i),
            b'.' => push_sym(&mut out, Sym::Dot, start, &mut i),
            b';' => push_sym(&mut out, Sym::Semi, start, &mut i),
            b'-' => push_sym(&mut out, Sym::Minus, start, &mut i),
            b'=' => {
                i += if bytes.get(i + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
                out.push(Token {
                    tok: Tok::Sym(Sym::Eq),
                    offset: start,
                });
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    out.push(Token {
                        tok: Tok::Sym(Sym::Ne),
                        offset: start,
                    });
                } else {
                    return Err(SqlError::at(src, start, "unexpected character '!'"));
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    i += 2;
                    out.push(Token {
                        tok: Tok::Sym(Sym::Le),
                        offset: start,
                    });
                }
                Some(b'>') => {
                    i += 2;
                    out.push(Token {
                        tok: Tok::Sym(Sym::Ne),
                        offset: start,
                    });
                }
                _ => push_sym(&mut out, Sym::Lt, start, &mut i),
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    out.push(Token {
                        tok: Tok::Sym(Sym::Ge),
                        offset: start,
                    });
                } else {
                    push_sym(&mut out, Sym::Gt, start, &mut i);
                }
            }
            b'\'' => {
                let (s, end) = lex_quoted(src, i, b'\'')?;
                out.push(Token {
                    tok: Tok::Str(s),
                    offset: start,
                });
                i = end;
            }
            b'"' => {
                let (s, end) = lex_quoted(src, i, b'"')?;
                if s.is_empty() {
                    return Err(SqlError::at(src, start, "empty quoted identifier"));
                }
                out.push(Token {
                    tok: Tok::Ident(s, true),
                    offset: start,
                });
                i = end;
            }
            b'0'..=b'9' => {
                let (tok, end) = lex_number(src, i)?;
                out.push(Token { tok, offset: start });
                i = end;
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string(), false),
                    offset: start,
                });
            }
            _ => {
                // Render the full (possibly multi-byte) character.
                let ch = src[super::floor_char_boundary(src, i)..]
                    .chars()
                    .next()
                    .unwrap_or('?');
                return Err(SqlError::at(
                    src,
                    start,
                    format!("unexpected character '{}'", ch.escape_default()),
                ));
            }
        }
    }
    Ok(out)
}

fn push_sym(out: &mut Vec<Token>, sym: Sym, start: usize, i: &mut usize) {
    *i += 1;
    out.push(Token {
        tok: Tok::Sym(sym),
        offset: start,
    });
}

/// Lex a `'...'` string or `"..."` identifier, with doubled-quote escapes.
/// Returns the unescaped content and the byte index past the closing quote.
fn lex_quoted(src: &str, start: usize, quote: u8) -> Result<(String, usize), SqlError> {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    let mut s = String::new();
    while i < bytes.len() {
        if bytes[i] == quote {
            if bytes.get(i + 1) == Some(&quote) {
                s.push(quote as char);
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            // Copy one whole character (handles UTF-8 content).
            let rest = &src[i..];
            let ch = rest.chars().next().unwrap_or('\u{fffd}');
            s.push(ch);
            i += ch.len_utf8().max(1);
        }
    }
    let what = if quote == b'\'' {
        "unterminated string literal"
    } else {
        "unterminated quoted identifier"
    };
    Err(SqlError::at(src, start, what))
}

/// Lex an unsigned numeric literal: digits, optional fraction, optional
/// exponent. Returns the token and the byte index past it.
fn lex_number(src: &str, start: usize) -> Result<(Tok, usize), SqlError> {
    let bytes = src.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &src[start..i];
    if is_float {
        match text.parse::<f64>() {
            Ok(f) => Ok((Tok::Float(f), i)),
            Err(_) => Err(SqlError::at(src, start, format!("bad number '{text}'"))),
        }
    } else {
        match text.parse::<i64>() {
            Ok(n) => Ok((Tok::Int(n), i)),
            Err(_) => Err(SqlError::at(
                src,
                start,
                format!("integer literal '{text}' out of range"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("select a, sum(b) from t -- trailing\n"),
            vec![
                Tok::Ident("select".into(), false),
                Tok::Ident("a".into(), false),
                Tok::Sym(Sym::Comma),
                Tok::Ident("sum".into(), false),
                Tok::Sym(Sym::LParen),
                Tok::Ident("b".into(), false),
                Tok::Sym(Sym::RParen),
                Tok::Ident("from".into(), false),
                Tok::Ident("t".into(), false),
            ]
        );
    }

    #[test]
    fn operators_and_literals() {
        assert_eq!(
            toks("a <= 2.5 and b <> 'it''s' or c == 3e2"),
            vec![
                Tok::Ident("a".into(), false),
                Tok::Sym(Sym::Le),
                Tok::Float(2.5),
                Tok::Ident("and".into(), false),
                Tok::Ident("b".into(), false),
                Tok::Sym(Sym::Ne),
                Tok::Str("it's".into()),
                Tok::Ident("or".into(), false),
                Tok::Ident("c".into(), false),
                Tok::Sym(Sym::Eq),
                Tok::Float(300.0),
            ]
        );
    }

    #[test]
    fn quoted_identifier_and_errors() {
        assert_eq!(
            toks("\"odd name\""),
            vec![Tok::Ident("odd name".into(), true)]
        );
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("99999999999999999999").is_err());
        let err = tokenize("x @ y").unwrap_err();
        assert_eq!((err.line, err.column), (1, 3));
    }

    #[test]
    fn multibyte_content_is_preserved() {
        assert_eq!(toks("'héllo'"), vec![Tok::Str("héllo".into())]);
        assert!(tokenize("héllo").is_err(), "non-ascii bare ident rejected");
    }
}
