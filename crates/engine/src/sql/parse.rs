//! Recursive-descent SQL parser producing a [`SelectStmt`].
//!
//! The grammar is a pragmatic `SELECT` subset (see the module docs). The
//! parser is total: any input — valid, hostile, or random bytes — either
//! yields an AST or a spanned [`SqlError`]; it never panics and always
//! advances (expression nesting is depth-capped, so adversarial
//! `((((...` input errors out instead of exhausting the stack).

use super::lex::{tokenize, Sym, Tok, Token};
use super::SqlError;
use shareinsights_tabular::agg::AggKind;
use shareinsights_tabular::expr::{CmpOp, Expr};
use shareinsights_tabular::ops::{SortKey, SortOrder};
use shareinsights_tabular::Value;

/// Maximum boolean-expression nesting depth (parentheses + `NOT`).
const MAX_DEPTH: usize = 64;

/// Words with grammatical meaning. Bare identifiers matching these are
/// rejected in name position (quote them — `"from"` — to use as names);
/// this is what lets the parser stop a select list at `FROM` instead of
/// swallowing the keyword as a column.
const RESERVED: &[&str] = &[
    "select", "distinct", "from", "join", "inner", "on", "where", "group", "order", "by", "asc",
    "desc", "limit", "offset", "and", "or", "not", "in", "between", "is", "null", "true", "false",
    "as", "having", "union",
];

fn is_reserved(name: &str) -> bool {
    RESERVED.iter().any(|k| name.eq_ignore_ascii_case(k))
}

/// One `SELECT` list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected thing.
    pub kind: ItemKind,
    /// `AS alias` (aggregates only; renames the output column).
    pub alias: Option<String>,
    /// Byte offset of the item's first token (for diagnostics).
    pub offset: usize,
}

/// What a select item projects.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    /// `*`
    Star,
    /// A bare column.
    Column(String),
    /// `agg(col)` or `count(*)` (`apply_on` empty for `count(*)`).
    Aggregate {
        /// Aggregate function.
        func: AggKind,
        /// Input column (empty for `count(*)`).
        apply_on: String,
    },
}

/// `JOIN other ON left_col = right_col` (inner equi-join).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// Right-side endpoint name.
    pub table: String,
    /// Key column on the left (FROM) side.
    pub left_on: String,
    /// Key column on the joined side.
    pub right_on: String,
    /// Byte offset of the `JOIN` keyword.
    pub offset: usize,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Select list, in source order.
    pub items: Vec<SelectItem>,
    /// `FROM` endpoint name.
    pub table: String,
    /// Inner joins, in source order.
    pub joins: Vec<JoinClause>,
    /// `WHERE` predicate, already in the shared [`Expr`] vocabulary.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` key columns.
    pub group_by: Vec<String>,
    /// `ORDER BY` keys.
    pub order_by: Vec<SortKey>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
    /// `OFFSET n`.
    pub offset_rows: Option<usize>,
}

/// Parse one `SELECT` statement (an optional trailing `;` is allowed).
pub fn parse_select(src: &str) -> Result<SelectStmt, SqlError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        src,
        toks,
        pos: 0,
        depth: 0,
    };
    let stmt = p.select_stmt()?;
    if p.eat_sym(Sym::Semi) {
        // allow one trailing semicolon
    }
    match p.peek() {
        None => Ok(stmt),
        Some(t) => Err(p.err_at(
            t.offset,
            format!("unexpected {} after end of query", t.tok.describe()),
        )),
    }
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.peek().map(|t| t.offset).unwrap_or(self.src.len())
    }

    fn err_at(&self, offset: usize, message: impl Into<String>) -> SqlError {
        SqlError::at(self.src, offset, message)
    }

    fn err_here(&self, message: impl Into<String>) -> SqlError {
        self.err_at(self.here(), message)
    }

    /// Case-insensitive keyword check without consuming. Quoted
    /// identifiers are never keywords.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(
            self.peek(),
            Some(Token { tok: Tok::Ident(s, false), .. }) if s.eq_ignore_ascii_case(kw)
        )
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require a keyword.
    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            let found = match self.peek() {
                Some(t) => t.tok.describe(),
                None => "end of query".to_string(),
            };
            Err(self.err_here(format!("expected {}, found {found}", kw.to_uppercase())))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Sym(s), .. }) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<(), SqlError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            let found = match self.peek() {
                Some(t) => t.tok.describe(),
                None => "end of query".to_string(),
            };
            Err(self.err_here(format!("expected '{}', found {found}", sym.spelling())))
        }
    }

    /// Require an identifier (column / table name). Bare reserved words
    /// are rejected here so clause keywords terminate name lists.
    fn expect_ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s, quoted),
                offset,
            }) => {
                if !quoted && is_reserved(s) {
                    return Err(self.err_at(
                        *offset,
                        format!("expected {what}, found keyword '{s}' (quote it to use as a name)"),
                    ));
                }
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.err_at(
                t.offset,
                format!("expected {what}, found {}", t.tok.describe()),
            )),
            None => Err(self.err_here(format!("expected {what}, found end of query"))),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("select")?;
        // `DISTINCT` as set quantifier, unless it is the `distinct(col)`
        // aggregate call.
        let distinct = self.at_kw("distinct")
            && !matches!(
                self.peek2(),
                Some(Token {
                    tok: Tok::Sym(Sym::LParen),
                    ..
                })
            )
            && {
                self.pos += 1;
                true
            };
        let items = self.select_list()?;
        self.expect_kw("from")?;
        let table = self.expect_ident("table name")?;
        let mut joins = Vec::new();
        loop {
            let offset = self.here();
            if self.eat_kw("inner") {
                self.expect_kw("join")?;
            } else if !self.eat_kw("join") {
                break;
            }
            joins.push(self.join_clause(&table, offset)?);
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr_or()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expect_ident("GROUP BY column")?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let column = self.expect_ident("ORDER BY column")?;
                let order = if self.eat_kw("desc") {
                    SortOrder::Desc
                } else {
                    self.eat_kw("asc");
                    SortOrder::Asc
                };
                order_by.push(SortKey { column, order });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            Some(self.expect_count("LIMIT")?)
        } else {
            None
        };
        let offset_rows = if self.eat_kw("offset") {
            Some(self.expect_count("OFFSET")?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            table,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
            offset_rows,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let offset = self.here();
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem {
                kind: ItemKind::Star,
                alias: None,
                offset,
            });
        }
        // Aggregate call? (`ident (` — the name may collide with reserved
        // words like `distinct`, so look ahead before requiring a plain
        // identifier.)
        let is_call = matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Ident(..),
                ..
            })
        ) && matches!(
            self.peek2(),
            Some(Token {
                tok: Tok::Sym(Sym::LParen),
                ..
            })
        );
        let name = if is_call {
            match self.bump() {
                Some(Token {
                    tok: Tok::Ident(s, _),
                    ..
                }) => s,
                _ => unreachable!("peek said ident"),
            }
        } else {
            self.expect_ident("column or aggregate")?
        };
        let kind = if self.eat_sym(Sym::LParen) {
            let func = AggKind::parse(&name).ok_or_else(|| {
                self.err_at(offset, format!("unknown aggregate function '{name}'"))
            })?;
            let apply_on = if self.eat_sym(Sym::Star) {
                if func != AggKind::CountAll && func != AggKind::Count {
                    return Err(self.err_at(
                        offset,
                        format!("aggregate '{name}' needs a column, not '*'"),
                    ));
                }
                String::new()
            } else {
                self.expect_ident("aggregate input column")?
            };
            self.expect_sym(Sym::RParen)?;
            let func = if apply_on.is_empty() {
                AggKind::CountAll
            } else {
                func
            };
            ItemKind::Aggregate { func, apply_on }
        } else {
            ItemKind::Column(name)
        };
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident("alias")?)
        } else {
            None
        };
        Ok(SelectItem {
            kind,
            alias,
            offset,
        })
    }

    fn join_clause(&mut self, from_table: &str, offset: usize) -> Result<JoinClause, SqlError> {
        let table = self.expect_ident("join table name")?;
        self.expect_kw("on")?;
        let (aq, a) = self.qualified_ident("join key column")?;
        self.expect_sym(Sym::Eq)?;
        let (bq, b) = self.qualified_ident("join key column")?;
        // Qualifiers, when present, decide which side each key belongs to;
        // unqualified keys read left-to-right as `left = right`.
        let (left_on, right_on) =
            if aq.as_deref() == Some(table.as_str()) || bq.as_deref() == Some(from_table) {
                (b, a)
            } else {
                (a, b)
            };
        Ok(JoinClause {
            table,
            left_on,
            right_on,
            offset,
        })
    }

    /// `col` or `table.col`; returns (qualifier, column).
    fn qualified_ident(&mut self, what: &str) -> Result<(Option<String>, String), SqlError> {
        let first = self.expect_ident(what)?;
        if self.eat_sym(Sym::Dot) {
            let col = self.expect_ident(what)?;
            Ok((Some(first), col))
        } else {
            Ok((None, first))
        }
    }

    fn expect_count(&mut self, what: &str) -> Result<usize, SqlError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Int(n),
                offset,
            }) => {
                let (n, offset) = (*n, *offset);
                self.pos += 1;
                usize::try_from(n)
                    .map_err(|_| self.err_at(offset, format!("{what} must be non-negative")))
            }
            _ => Err(self.err_here(format!("{what} needs a non-negative integer"))),
        }
    }

    // ---- WHERE expression grammar -------------------------------------

    fn expr_or(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.expr_and()?;
        while self.eat_kw("or") {
            let rhs = self.expr_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.expr_not()?;
        while self.eat_kw("and") {
            let rhs = self.expr_not()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_not(&mut self) -> Result<Expr, SqlError> {
        self.depth += 1;
        let result = if self.depth > MAX_DEPTH {
            Err(self.err_here("expression too deeply nested"))
        } else if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.expr_not()?)))
        } else {
            self.expr_predicate()
        };
        self.depth -= 1;
        result
    }

    fn expr_predicate(&mut self) -> Result<Expr, SqlError> {
        if self.eat_sym(Sym::LParen) {
            self.depth += 1;
            let inner = if self.depth > MAX_DEPTH {
                Err(self.err_here("expression too deeply nested"))
            } else {
                self.expr_or()
            };
            self.depth -= 1;
            let inner = inner?;
            self.expect_sym(Sym::RParen)?;
            return Ok(inner);
        }
        let lhs = self.operand()?;
        // Comparison tail?
        if let Some(op) = self.eat_cmp() {
            let rhs = self.operand()?;
            return Ok(normalize_cmp(op, lhs, rhs));
        }
        let negated = self.eat_kw("not");
        if self.eat_kw("in") {
            self.expect_sym(Sym::LParen)?;
            let mut values = Vec::new();
            loop {
                values.push(self.literal("IN list value")?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            let e = Expr::InList(Box::new(lhs), values);
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.eat_kw("between") {
            let lo = self.operand()?;
            self.expect_kw("and")?;
            let hi = self.operand()?;
            let e = Expr::And(
                Box::new(Expr::Cmp(CmpOp::Ge, Box::new(lhs.clone()), Box::new(lo))),
                Box::new(Expr::Cmp(CmpOp::Le, Box::new(lhs), Box::new(hi))),
            );
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if negated {
            return Err(self.err_here("expected IN or BETWEEN after NOT"));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            let e = Expr::IsNull(Box::new(lhs));
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        // Bare operand: truthy boolean column (`WHERE active`).
        Ok(lhs)
    }

    fn eat_cmp(&mut self) -> Option<CmpOp> {
        let op = match self.peek()?.tok {
            Tok::Sym(Sym::Eq) => CmpOp::Eq,
            Tok::Sym(Sym::Ne) => CmpOp::Ne,
            Tok::Sym(Sym::Lt) => CmpOp::Lt,
            Tok::Sym(Sym::Le) => CmpOp::Le,
            Tok::Sym(Sym::Gt) => CmpOp::Gt,
            Tok::Sym(Sym::Ge) => CmpOp::Ge,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    /// A comparison operand: column reference or literal.
    fn operand(&mut self) -> Result<Expr, SqlError> {
        if let Some(v) = self.try_literal()? {
            return Ok(Expr::Literal(v));
        }
        let name = self.expect_ident("column or literal")?;
        Ok(Expr::Column(name))
    }

    /// A literal in value position (IN lists).
    fn literal(&mut self, what: &str) -> Result<Value, SqlError> {
        match self.try_literal()? {
            Some(v) => Ok(v),
            None => Err(self.err_here(format!("expected {what}"))),
        }
    }

    /// Consume a literal if the next token(s) form one.
    fn try_literal(&mut self) -> Result<Option<Value>, SqlError> {
        let neg = matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Sym(Sym::Minus),
                ..
            })
        );
        let at = if neg { self.peek2() } else { self.peek() };
        let v = match at.map(|t| &t.tok) {
            Some(Tok::Int(n)) => {
                let n = *n;
                Value::Int(if neg { -n } else { n })
            }
            Some(Tok::Float(f)) => {
                let f = *f;
                Value::Float(if neg { -f } else { f })
            }
            Some(Tok::Str(s)) if !neg => Value::Str(s.clone()),
            Some(Tok::Ident(s, false)) if !neg && s.eq_ignore_ascii_case("true") => {
                Value::Bool(true)
            }
            Some(Tok::Ident(s, false)) if !neg && s.eq_ignore_ascii_case("false") => {
                Value::Bool(false)
            }
            Some(Tok::Ident(s, false)) if !neg && s.eq_ignore_ascii_case("null") => Value::Null,
            _ if neg => {
                return Err(self.err_here("expected a number after '-'"));
            }
            _ => return Ok(None),
        };
        self.pos += if neg { 2 } else { 1 };
        Ok(Some(v))
    }
}

/// Normalize comparisons involving `NULL` to `IS [NOT] NULL` semantics,
/// matching `tabular::expr::parse_expr`'s convention (`x = null` means
/// "x is null", not the SQL three-valued never-true comparison).
fn normalize_cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
    let (null_side, other) = match (&lhs, &rhs) {
        (Expr::Literal(Value::Null), _) => (true, rhs.clone()),
        (_, Expr::Literal(Value::Null)) => (true, lhs.clone()),
        _ => (false, Expr::Literal(Value::Null)),
    };
    if null_side {
        match op {
            CmpOp::Eq => return Expr::IsNull(Box::new(other)),
            CmpOp::Ne => return Expr::Not(Box::new(Expr::IsNull(Box::new(other)))),
            _ => {}
        }
    }
    Expr::Cmp(op, Box::new(lhs), Box::new(rhs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_statement_parses() {
        let s = parse_select(
            "SELECT brand, sum(revenue) AS total FROM sales \
             JOIN regions ON region = name \
             WHERE units > 2 AND region IN ('east', 'west') \
             GROUP BY brand ORDER BY total DESC, brand LIMIT 10 OFFSET 5;",
        )
        .unwrap();
        assert!(!s.distinct);
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.items[0].kind, ItemKind::Column("brand".into()));
        assert_eq!(
            s.items[1].kind,
            ItemKind::Aggregate {
                func: AggKind::Sum,
                apply_on: "revenue".into()
            }
        );
        assert_eq!(s.items[1].alias.as_deref(), Some("total"));
        assert_eq!(s.table, "sales");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table, "regions");
        assert_eq!(s.joins[0].left_on, "region");
        assert_eq!(s.joins[0].right_on, "name");
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by, vec!["brand"]);
        assert_eq!(s.order_by.len(), 2);
        assert_eq!(s.order_by[0].order, SortOrder::Desc);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset_rows, Some(5));
    }

    #[test]
    fn where_shapes_lower_to_shared_exprs() {
        let w = |src: &str| {
            parse_select(&format!("select * from t where {src}"))
                .unwrap()
                .where_clause
                .unwrap()
        };
        assert_eq!(
            w("a = 1"),
            Expr::cmp(CmpOp::Eq, Expr::col("a"), Expr::lit(1i64))
        );
        assert_eq!(
            w("a between 1 and 3"),
            Expr::And(
                Box::new(Expr::cmp(CmpOp::Ge, Expr::col("a"), Expr::lit(1i64))),
                Box::new(Expr::cmp(CmpOp::Le, Expr::col("a"), Expr::lit(3i64))),
            )
        );
        assert_eq!(
            w("a in (1, 'x')"),
            Expr::InList(
                Box::new(Expr::col("a")),
                vec![Value::Int(1), Value::Str("x".into())]
            )
        );
        assert_eq!(w("a is null"), Expr::IsNull(Box::new(Expr::col("a"))));
        assert_eq!(
            w("a != null"),
            Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::col("a")))))
        );
        assert_eq!(w("a = null"), Expr::IsNull(Box::new(Expr::col("a"))));
        assert_eq!(
            w("not (a = 1 or b < -2.5)"),
            Expr::Not(Box::new(Expr::Or(
                Box::new(Expr::cmp(CmpOp::Eq, Expr::col("a"), Expr::lit(1i64))),
                Box::new(Expr::cmp(CmpOp::Lt, Expr::col("b"), Expr::lit(-2.5))),
            )))
        );
    }

    #[test]
    fn count_star_and_distinct() {
        let s = parse_select("select count(*) from t").unwrap();
        assert_eq!(
            s.items[0].kind,
            ItemKind::Aggregate {
                func: AggKind::CountAll,
                apply_on: String::new()
            }
        );
        let s = parse_select("select distinct region from t").unwrap();
        assert!(s.distinct);
        // `distinct(x)` is the count_distinct aggregate, not the quantifier.
        let s = parse_select("select distinct(x) from t").unwrap();
        assert!(!s.distinct);
        assert_eq!(
            s.items[0].kind,
            ItemKind::Aggregate {
                func: AggKind::CountDistinct,
                apply_on: "x".into()
            }
        );
    }

    #[test]
    fn errors_carry_spans() {
        let e = parse_select("select from t").unwrap_err();
        assert_eq!((e.line, e.column), (1, 8), "{e}");
        let e = parse_select("select * from t where a ~ 1").unwrap_err();
        assert!(e.to_string().contains("line 1, column 25"), "{e}");
        let e = parse_select("select * from t limit -1").unwrap_err();
        assert!(e.message.contains("non-negative"), "{e}");
        let e = parse_select("select bogus(x) from t").unwrap_err();
        assert!(e.message.contains("unknown aggregate"), "{e}");
        assert!(parse_select("").is_err());
        assert!(parse_select("select * from t extra").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let q = format!(
            "select * from t where {}a = 1{}",
            "(".repeat(500),
            ")".repeat(500)
        );
        let e = parse_select(&q).unwrap_err();
        assert!(e.message.contains("deeply nested"), "{e}");
    }
}
