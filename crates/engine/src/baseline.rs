//! The naive row-at-a-time baseline executor.
//!
//! Stands in for the "traditional stack" comparator in the PERF-ENGINE
//! bench: same compiled pipeline, same task semantics, but every operator
//! works on `Vec<Row>` with per-row dynamic dispatch — a nested-loop join,
//! a BTreeMap group-by, no parallelism, no columnar layout. The crossover
//! against the columnar executor is the shape the engine ablation reports.

use crate::compile::CompiledPipeline;
use crate::error::{EngineError, Result};
use crate::exec::{ExecContext, ExecResult, ExecStats};
use crate::task::{NamedTask, TaskKind, TaskRuntime};
use shareinsights_tabular::expr::Expr;
use shareinsights_tabular::ops::JoinCondition;
use shareinsights_tabular::{Row, Schema, Table, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// Rows plus their schema — the baseline's working representation.
#[derive(Debug, Clone)]
struct RowSet {
    schema: Schema,
    rows: Vec<Row>,
}

impl RowSet {
    fn from_table(t: &Table) -> RowSet {
        RowSet {
            schema: t.schema().clone(),
            rows: t.to_rows(),
        }
    }

    fn into_table(self) -> Result<Table> {
        let names = self
            .schema
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>();
        Table::from_rows(&names, &self.rows).map_err(|e| EngineError::Internal(e.to_string()))
    }

    fn col(&self, name: &str) -> Result<usize> {
        self.schema
            .index_of(name)
            .map_err(|e| EngineError::Internal(e.to_string()))
    }
}

/// Run a compiled pipeline with the naive row engine.
pub fn execute_naive(pipeline: &CompiledPipeline, ctx: &ExecContext) -> Result<ExecResult> {
    let start = Instant::now();
    let mut tables: BTreeMap<String, Table> = ctx.tables.clone();
    let mut stats = ExecStats::default();

    for f in &pipeline.flows {
        for i in &f.inputs {
            if let Some(cfg) = pipeline.sources.get(i) {
                if !tables.contains_key(i) {
                    let t = ctx.catalog.load(cfg).map_err(|e| EngineError::Source {
                        object: i.clone(),
                        message: e.to_string(),
                    })?;
                    stats.source_rows += t.num_rows();
                    tables.insert(i.clone(), t);
                }
            }
        }
    }

    for flow in &pipeline.flows {
        let mut current: Vec<(Option<String>, RowSet)> = Vec::new();
        for i in &flow.inputs {
            let t = tables.get(i).ok_or_else(|| EngineError::UnresolvedData {
                object: i.clone(),
                context: format!("flow 'D.{}' (baseline)", flow.output),
            })?;
            current.push((Some(i.clone()), RowSet::from_table(t)));
        }
        for task in &flow.tasks {
            let t0 = Instant::now();
            let start_us = start.elapsed().as_micros() as u64;
            let in_rows: usize = current.iter().map(|(_, r)| r.rows.len()).sum();
            current = apply_naive(task, current, &tables, ctx)?;
            let out_rows: usize = current.iter().map(|(_, r)| r.rows.len()).sum();
            stats.task_runs.push(crate::exec::TaskRunStat {
                task: task.name.clone(),
                task_type: task.kind.type_name().to_string(),
                flow: flow.output.clone(),
                rows_in: in_rows,
                rows_out: out_rows,
                start_us,
                elapsed_us: t0.elapsed().as_micros() as u64,
            });
        }
        if current.len() != 1 {
            return Err(EngineError::Execution {
                task: format!("flow D.{}", flow.output),
                message: format!("flow ended with {} unmerged inputs", current.len()),
            });
        }
        let table = current.remove(0).1.into_table()?;
        stats.rows_out.insert(flow.output.clone(), table.num_rows());
        tables.insert(flow.output.clone(), table);
    }

    stats.total_micros = start.elapsed().as_micros();
    stats.endpoint_bytes = pipeline
        .endpoints
        .iter()
        .filter_map(|e| tables.get(e))
        .map(Table::approx_bytes)
        .sum();
    Ok(ExecResult {
        tables,
        endpoints: pipeline.endpoints.clone(),
        stats,
    })
}

fn apply_naive(
    task: &NamedTask,
    mut current: Vec<(Option<String>, RowSet)>,
    tables: &BTreeMap<String, Table>,
    ctx: &ExecContext,
) -> Result<Vec<(Option<String>, RowSet)>> {
    match &task.kind {
        TaskKind::FilterExpr(e) => {
            let (_, rs) = take_single(task, &mut current)?;
            Ok(vec![(None, naive_filter(task, rs, e)?)])
        }
        TaskKind::GroupBy { builtin, custom } if custom.is_empty() => {
            let (_, rs) = take_single(task, &mut current)?;
            Ok(vec![(None, naive_groupby(task, rs, builtin)?)])
        }
        TaskKind::Join(j) => {
            if current.len() != 2 {
                return Err(EngineError::Execution {
                    task: task.name.clone(),
                    message: format!("join needs 2 inputs, found {}", current.len()),
                });
            }
            let left_idx = current
                .iter()
                .position(|(n, _)| n.as_deref() == Some(j.left_name.as_str()))
                .unwrap_or(0);
            let right = current.remove(1 - left_idx.min(1)).1;
            // After removal the left sits at index 0 regardless.
            let left = current.remove(0).1;
            let (left, right) = if left_idx == 0 {
                (left, right)
            } else {
                (right, left)
            };
            Ok(vec![(None, naive_join(task, left, right, j)?)])
        }
        // Everything else reuses the columnar kernels via a table
        // round-trip: the baseline's interesting divergences are the three
        // hot operators above.
        _ => {
            let inputs: Vec<Table> = current
                .drain(..)
                .map(|(_, rs)| rs.into_table())
                .collect::<Result<Vec<_>>>()?;
            let lookup = |name: &str| tables.get(name).cloned();
            let rt = TaskRuntime {
                selections: ctx.selections.as_deref(),
                lookup_table: &lookup,
            };
            let out = task.kind.execute(&task.name, &inputs, &rt)?;
            Ok(vec![(None, RowSet::from_table(&out))])
        }
    }
}

fn take_single(
    task: &NamedTask,
    current: &mut Vec<(Option<String>, RowSet)>,
) -> Result<(Option<String>, RowSet)> {
    if current.len() != 1 {
        return Err(EngineError::Execution {
            task: task.name.clone(),
            message: format!("task consumes one input, found {}", current.len()),
        });
    }
    Ok(current.remove(0))
}

fn naive_filter(task: &NamedTask, rs: RowSet, expr: &Expr) -> Result<RowSet> {
    let schema = rs.schema.clone();
    let mut out = Vec::new();
    for row in rs.rows {
        let lookup =
            |name: &str| -> Option<Value> { schema.index_of(name).ok().map(|i| row[i].clone()) };
        let keep = expr.eval_row(&lookup).map_err(|e| EngineError::Execution {
            task: task.name.clone(),
            message: e.to_string(),
        })?;
        if matches!(keep, Value::Bool(true)) {
            out.push(row);
        }
    }
    Ok(RowSet { schema, rows: out })
}

fn naive_groupby(
    task: &NamedTask,
    rs: RowSet,
    cfg: &shareinsights_tabular::ops::GroupBy,
) -> Result<RowSet> {
    let exec_err = |e: shareinsights_tabular::TabularError| EngineError::Execution {
        task: task.name.clone(),
        message: e.to_string(),
    };
    let key_idx: Vec<usize> = cfg
        .keys
        .iter()
        .map(|k| rs.col(k))
        .collect::<Result<Vec<_>>>()?;
    let aggs = cfg.effective_aggregates();
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| {
            if a.operator == shareinsights_tabular::agg::AggKind::CountAll {
                Ok(None)
            } else {
                rs.col(&a.apply_on).map(Some)
            }
        })
        .collect::<Result<Vec<_>>>()?;

    // BTreeMap keeps deterministic (sorted) group order for the baseline.
    let mut groups: BTreeMap<Row, Vec<shareinsights_tabular::agg::Accumulator>> = BTreeMap::new();
    for row in &rs.rows {
        let key = row.project(&key_idx);
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| a.operator.accumulator()).collect());
        for (ai, idx) in agg_idx.iter().enumerate() {
            let v = idx.map(|i| row[i].clone()).unwrap_or(Value::Null);
            accs[ai].update(&v).map_err(exec_err)?;
        }
    }
    let out_schema = cfg.output_schema(&rs.schema).map_err(exec_err)?;
    let mut rows = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut row = key;
        for acc in accs {
            row.push(acc.finish());
        }
        rows.push(row);
    }
    Ok(RowSet {
        schema: out_schema,
        rows,
    })
}

/// Nested-loop join — O(n·m), the whole point of the baseline.
fn naive_join(
    task: &NamedTask,
    left: RowSet,
    right: RowSet,
    j: &crate::task::JoinTask,
) -> Result<RowSet> {
    let exec_err = |e: shareinsights_tabular::TabularError| EngineError::Execution {
        task: task.name.clone(),
        message: e.to_string(),
    };
    let spec = &j.spec;
    let out_schema = spec
        .output_schema(&left.schema, &right.schema)
        .map_err(exec_err)?;
    let lkeys: Vec<usize> = spec
        .left_keys
        .iter()
        .map(|k| left.col(k))
        .collect::<Result<Vec<_>>>()?;
    let rkeys: Vec<usize> = spec
        .right_keys
        .iter()
        .map(|k| right.col(k))
        .collect::<Result<Vec<_>>>()?;

    // Projection plan: (from_left, column index on that side).
    let proj: Vec<(bool, usize)> = if spec.projection.is_empty() {
        let mut p: Vec<(bool, usize)> = (0..left.schema.len()).map(|i| (true, i)).collect();
        p.extend((0..right.schema.len()).map(|i| (false, i)));
        p
    } else {
        spec.projection
            .iter()
            .map(|ps| {
                let side = if ps.from_left { &left } else { &right };
                // Same case-insensitive fallback the columnar join applies.
                let idx = side.col(&ps.column).or_else(|e| {
                    side.schema
                        .fields()
                        .iter()
                        .position(|f| f.name().eq_ignore_ascii_case(&ps.column))
                        .ok_or(e)
                })?;
                Ok((ps.from_left, idx))
            })
            .collect::<Result<Vec<_>>>()?
    };

    let emit = |l: Option<&Row>, r: Option<&Row>| -> Row {
        Row(proj
            .iter()
            .map(|(from_left, idx)| {
                let side = if *from_left { l } else { r };
                side.map(|row| row[*idx].clone()).unwrap_or(Value::Null)
            })
            .collect())
    };

    let keys_match = |l: &Row, r: &Row| -> bool {
        lkeys.iter().zip(&rkeys).all(|(&li, &ri)| {
            let (a, b) = (&l[li], &r[ri]);
            !a.is_null() && !b.is_null() && a == b
        })
    };

    let mut rows = Vec::new();
    let mut right_matched = vec![false; right.rows.len()];
    for l in &left.rows {
        let mut matched = false;
        for (ri, r) in right.rows.iter().enumerate() {
            if keys_match(l, r) {
                rows.push(emit(Some(l), Some(r)));
                right_matched[ri] = true;
                matched = true;
            }
        }
        if !matched
            && matches!(
                spec.condition,
                JoinCondition::LeftOuter | JoinCondition::FullOuter
            )
        {
            rows.push(emit(Some(l), None));
        }
    }
    if matches!(
        spec.condition,
        JoinCondition::RightOuter | JoinCondition::FullOuter
    ) {
        for (ri, m) in right_matched.iter().enumerate() {
            if !m {
                rows.push(emit(None, Some(&right.rows[ri])));
            }
        }
    }
    Ok(RowSet {
        schema: out_schema,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileEnv};
    use crate::exec::Executor;
    use crate::ext::TaskRegistry;
    use shareinsights_connectors::Catalog;
    use shareinsights_flowfile::parse_flow_file;
    use shareinsights_tabular::row;

    /// Run both engines on the same pipeline and compare row multisets.
    fn both(src: &str, inject: Vec<(&str, Table)>) -> (ExecResult, ExecResult) {
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let pipeline = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        let mut ctx = ExecContext::new(Catalog::new());
        for (name, table) in inject {
            ctx = ctx.with_table(name, table);
        }
        let columnar = Executor::default().execute(&pipeline, &ctx).unwrap();
        let naive = execute_naive(&pipeline, &ctx).unwrap();
        (columnar, naive)
    }

    fn sorted_rows(t: &Table) -> Vec<Row> {
        let mut rows = t.to_rows();
        rows.sort();
        rows
    }

    #[test]
    fn filter_and_groupby_agree() {
        let src = r#"
D:
  data: [k, v]
T:
  keep:
    type: filter_by
    filter_expression: v > 1
  agg:
    type: groupby
    groupby: [k]
    aggregates:
    - operator: sum
      apply_on: v
      out_field: total
F:
  +D.out: D.data | T.keep | T.agg
"#;
        let data = Table::from_rows(
            &["k", "v"],
            &[
                row!["a", 1i64],
                row!["a", 2i64],
                row!["b", 3i64],
                row!["b", 4i64],
            ],
        )
        .unwrap();
        let (col, naive) = both(src, vec![("data", data)]);
        assert_eq!(
            sorted_rows(col.table("out").unwrap()),
            sorted_rows(naive.table("out").unwrap())
        );
    }

    #[test]
    fn joins_agree_on_all_conditions() {
        for cond in ["inner", "left outer", "right outer", "full outer"] {
            let src = format!(
                r#"
D:
  l: [k, v]
  r: [k, w]
T:
  j:
    type: join
    left: l by k
    right: r by k
    join_condition: {cond}
F:
  +D.out: (D.l, D.r) | T.j
"#
            );
            let l = Table::from_rows(
                &["k", "v"],
                &[row!["x", 1i64], row!["y", 2i64], row![Value::Null, 3i64]],
            )
            .unwrap();
            let r = Table::from_rows(
                &["k", "w"],
                &[row!["x", 10i64], row!["x", 11i64], row!["z", 12i64]],
            )
            .unwrap();
            let (col, naive) = both(&src, vec![("l", l), ("r", r)]);
            assert_eq!(
                sorted_rows(col.table("out").unwrap()),
                sorted_rows(naive.table("out").unwrap()),
                "condition {cond}"
            );
        }
    }

    #[test]
    fn map_chain_agrees() {
        let src = r#"
D:
  tweets: [posted, body]
T:
  norm:
    type: map
    operator: date
    transform: posted
    input_format: yyyy-MM-dd
    output_format: 'dd/MM/yyyy'
    output: date
  words:
    type: map
    operator: extract_words
    transform: body
    output: word
  count:
    type: groupby
    groupby: [word]
F:
  +D.out: D.tweets | T.norm | T.words | T.count
"#;
        let tweets = Table::from_rows(
            &["posted", "body"],
            &[
                row!["2013-05-02", "great game tonight"],
                row!["2013-05-03", "great crowd"],
            ],
        )
        .unwrap();
        let (col, naive) = both(src, vec![("tweets", tweets)]);
        assert_eq!(
            sorted_rows(col.table("out").unwrap()),
            sorted_rows(naive.table("out").unwrap())
        );
    }

    #[test]
    fn naive_is_slower_on_big_joins() {
        // Sanity check of the ablation premise: nested loop loses by a wide
        // margin at modest sizes.
        let n = 600;
        let rows_l: Vec<Row> = (0..n)
            .map(|i| row![format!("k{}", i % 50), i as i64])
            .collect();
        let rows_r: Vec<Row> = (0..n)
            .map(|i| row![format!("k{}", i % 50), (i * 2) as i64])
            .collect();
        let l = Table::from_rows(&["k", "v"], &rows_l).unwrap();
        let r = Table::from_rows(&["k", "w"], &rows_r).unwrap();
        let src = r#"
D:
  l: [k, v]
  r: [k, w]
T:
  j:
    type: join
    left: l by k
    right: r by k
F:
  +D.out: (D.l, D.r) | T.j
"#;
        let (col, naive) = both(src, vec![("l", l), ("r", r)]);
        assert_eq!(
            col.table("out").unwrap().num_rows(),
            naive.table("out").unwrap().num_rows()
        );
        // Not asserting on wall time (CI variance); the bench measures it.
        assert!(naive.stats.total_micros > 0 && col.stats.total_micros > 0);
    }
}
