//! The flow graph: data objects as nodes, flows as hyper-edges.
//!
//! §3.4.2: users only write *linear* flows, but because sinks can feed
//! other flows, "it is possible to build up arbitrarily complicated
//! transformation paths. On submission, the platform internally builds a
//! directed acyclic graph (DAG) from the collection of flows." This module
//! is that construction: edges, cycle detection with the offending path in
//! the diagnostic, topological order, and reachability for dead-sink
//! elimination.

use crate::error::{EngineError, Result};
use shareinsights_flowfile::ast::Flow;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The dependency graph over data-object names.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    /// object -> objects it depends on (flow inputs).
    dependencies: BTreeMap<String, Vec<String>>,
    /// object -> objects depending on it.
    dependents: BTreeMap<String, Vec<String>>,
    /// Objects that are flow outputs.
    produced: BTreeSet<String>,
    /// All nodes (inputs and outputs).
    nodes: BTreeSet<String>,
}

impl FlowGraph {
    /// Build from a flow list.
    pub fn build(flows: &[Flow]) -> Result<FlowGraph> {
        let mut g = FlowGraph::default();
        for f in flows {
            g.nodes.insert(f.output.clone());
            g.produced.insert(f.output.clone());
            let deps = g.dependencies.entry(f.output.clone()).or_default();
            for i in &f.inputs {
                g.nodes.insert(i.clone());
                deps.push(i.clone());
                g.dependents
                    .entry(i.clone())
                    .or_default()
                    .push(f.output.clone());
            }
        }
        g.check_acyclic()?;
        Ok(g)
    }

    /// All node names.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    /// True when the object is produced by some flow (a sink); false for
    /// pure sources.
    pub fn is_produced(&self, object: &str) -> bool {
        self.produced.contains(object)
    }

    /// Pure sources: nodes no flow produces.
    pub fn sources(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter(|n| !self.produced.contains(*n))
            .map(String::as_str)
            .collect()
    }

    /// Direct dependencies of an object.
    pub fn dependencies_of(&self, object: &str) -> &[String] {
        self.dependencies
            .get(object)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Direct dependents of an object.
    pub fn dependents_of(&self, object: &str) -> &[String] {
        self.dependents
            .get(object)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn check_acyclic(&self) -> Result<()> {
        // DFS with colouring; reconstruct the cycle path for the message.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<&str, Colour> = self
            .nodes
            .iter()
            .map(|n| (n.as_str(), Colour::White))
            .collect();

        fn dfs<'a>(
            node: &'a str,
            g: &'a FlowGraph,
            colour: &mut BTreeMap<&'a str, Colour>,
            stack: &mut Vec<&'a str>,
        ) -> Option<Vec<String>> {
            colour.insert(node, Colour::Grey);
            stack.push(node);
            for dep in g.dependencies_of(node) {
                match colour.get(dep.as_str()).copied().unwrap_or(Colour::White) {
                    Colour::Grey => {
                        // Found a cycle: slice the stack from dep onward.
                        let start = stack.iter().position(|n| *n == dep).unwrap_or(0);
                        let mut path: Vec<String> =
                            stack[start..].iter().map(|s| s.to_string()).collect();
                        path.push(dep.clone());
                        return Some(path);
                    }
                    Colour::White => {
                        if let Some(c) = dfs(dep, g, colour, stack) {
                            return Some(c);
                        }
                    }
                    Colour::Black => {}
                }
            }
            stack.pop();
            colour.insert(node, Colour::Black);
            None
        }

        let names: Vec<&str> = self.nodes.iter().map(String::as_str).collect();
        for n in names {
            if colour[n] == Colour::White {
                let mut stack = Vec::new();
                if let Some(path) = dfs(n, self, &mut colour, &mut stack) {
                    return Err(EngineError::Cycle { path });
                }
            }
        }
        Ok(())
    }

    /// Topological order of *produced* objects: every flow's inputs come
    /// before its output. Deterministic (name-ordered among ready nodes).
    pub fn topo_order(&self) -> Vec<String> {
        let mut indegree: BTreeMap<&str, usize> = BTreeMap::new();
        for n in &self.produced {
            let deg = self
                .dependencies_of(n)
                .iter()
                .filter(|d| self.produced.contains(*d))
                .count();
            indegree.insert(n.as_str(), deg);
        }
        let mut queue: VecDeque<&str> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut order = Vec::with_capacity(self.produced.len());
        while let Some(n) = queue.pop_front() {
            order.push(n.to_string());
            for dep in self.dependents_of(n) {
                if let Some(d) = indegree.get_mut(dep.as_str()) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(dep.as_str());
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), self.produced.len(), "acyclic by construction");
        order
    }

    /// Every object transitively needed to produce `targets` (including the
    /// targets themselves) — the live set for dead-sink elimination.
    pub fn needed_for(&self, targets: &[impl AsRef<str>]) -> BTreeSet<String> {
        let mut live = BTreeSet::new();
        let mut stack: Vec<String> = targets.iter().map(|t| t.as_ref().to_string()).collect();
        while let Some(n) = stack.pop() {
            if live.insert(n.clone()) {
                for dep in self.dependencies_of(&n) {
                    stack.push(dep.clone());
                }
            }
        }
        live
    }

    /// Execution levels: flows whose outputs share a level have no
    /// dependencies between them and may run concurrently.
    pub fn levels(&self) -> Vec<Vec<String>> {
        let mut level_of: BTreeMap<&str, usize> = BTreeMap::new();
        for n in self.topo_order() {
            let lvl = self
                .dependencies_of(&n)
                .iter()
                .filter(|d| self.produced.contains(*d))
                .map(|d| level_of.get(d.as_str()).copied().unwrap_or(0) + 1)
                .max()
                .unwrap_or(0);
            // Keys borrow from self; look the node back up for a stable ref.
            let key = self
                .produced
                .get(n.as_str())
                .expect("topo order yields produced nodes");
            level_of.insert(key.as_str(), lvl);
        }
        let max_level = level_of.values().copied().max().map_or(0, |m| m + 1);
        let mut levels = vec![Vec::new(); max_level];
        for (n, l) in level_of {
            levels[l].push(n.to_string());
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(output: &str, inputs: &[&str]) -> Flow {
        Flow {
            output: output.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            tasks: vec!["t".to_string()],
            endpoint_alias: false,
            line: 0,
        }
    }

    #[test]
    fn builds_ipl_shaped_dag() {
        // The appendix-A.1 topology (trimmed).
        let flows = vec![
            flow("players_tweets", &["ipl_tweets"]),
            flow("player_tweets", &["players_tweets", "team_players"]),
            flow("teams_tweets", &["ipl_tweets"]),
            flow("team_tweets", &["teams_tweets", "dim_teams"]),
        ];
        let g = FlowGraph::build(&flows).unwrap();
        assert_eq!(g.sources(), vec!["dim_teams", "ipl_tweets", "team_players"]);
        let topo = g.topo_order();
        let pos = |n: &str| topo.iter().position(|x| x == n).unwrap();
        assert!(pos("players_tweets") < pos("player_tweets"));
        assert!(pos("teams_tweets") < pos("team_tweets"));
    }

    #[test]
    fn detects_cycles_with_path() {
        let flows = vec![flow("a", &["c"]), flow("b", &["a"]), flow("c", &["b"])];
        let err = FlowGraph::build(&flows).unwrap_err();
        let EngineError::Cycle { path } = err else {
            panic!()
        };
        assert_eq!(path.len(), 4, "closed path: {path:?}");
        assert_eq!(path.first(), path.last());
    }

    #[test]
    fn self_cycle_detected() {
        let err = FlowGraph::build(&[flow("a", &["a"])]).unwrap_err();
        assert!(matches!(err, EngineError::Cycle { .. }));
    }

    #[test]
    fn needed_for_prunes_dead_branches() {
        let flows = vec![
            flow("live", &["src"]),
            flow("dead", &["src2"]),
            flow("final", &["live"]),
        ];
        let g = FlowGraph::build(&flows).unwrap();
        let live = g.needed_for(&["final"]);
        assert!(live.contains("final") && live.contains("live") && live.contains("src"));
        assert!(!live.contains("dead") && !live.contains("src2"));
    }

    #[test]
    fn levels_group_independent_flows() {
        let flows = vec![
            flow("a", &["src"]),
            flow("b", &["src"]),
            flow("c", &["a", "b"]),
        ];
        let g = FlowGraph::build(&flows).unwrap();
        let levels = g.levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0], vec!["a", "b"]);
        assert_eq!(levels[1], vec!["c"]);
    }

    #[test]
    fn empty_graph() {
        let g = FlowGraph::build(&[]).unwrap();
        assert!(g.topo_order().is_empty());
        assert!(g.levels().is_empty());
    }
}
