//! The columnar batch executor — the Pig/Spark substitute.
//!
//! Executes a [`CompiledPipeline`] in dependency order with two axes of
//! parallelism:
//!
//! * **inter-flow**: flows in the same DAG level have no dependencies and
//!   run on scoped threads;
//! * **intra-task**: row-local tasks (filters, maps) on large tables are
//!   split into chunks processed concurrently and re-concatenated.
//!
//! All intermediate data objects are cached, so a sink feeding three
//! downstream flows is computed once — the "efficient processing of raw
//! data sources" §4.5.3 point 3 attributes to shared flows.

use crate::compile::CompiledPipeline;
use crate::error::{EngineError, Result};
use crate::selection::SelectionProvider;
use crate::task::{NamedTask, TaskKind, TaskRuntime};
use parking_lot::{Mutex, RwLock};
use shareinsights_connectors::Catalog;
use shareinsights_tabular::ops::union_all;
use shareinsights_tabular::Table;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Execution context: where sources load from and what feeds interaction
/// filters.
#[derive(Clone)]
pub struct ExecContext {
    /// Connector/format catalog (sources resolve through it).
    pub catalog: Catalog,
    /// Pre-materialised tables: shared/published objects from other
    /// dashboards, or direct injections in tests.
    pub tables: BTreeMap<String, Table>,
    /// Widget selections (interaction flows).
    pub selections: Option<Arc<dyn SelectionProvider>>,
}

impl ExecContext {
    /// Context over a catalog with no shared tables or selections.
    pub fn new(catalog: Catalog) -> Self {
        ExecContext {
            catalog,
            tables: BTreeMap::new(),
            selections: None,
        }
    }

    /// Add a pre-materialised table.
    pub fn with_table(mut self, name: impl Into<String>, table: Table) -> Self {
        self.tables.insert(name.into(), table);
        self
    }
}

/// One task execution inside a run: which operator ran where, how many
/// rows it consumed and emitted, and when (offsets from run start) — the
/// per-node record request traces and operator histograms are built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRunStat {
    /// Task name as written in the flow file (`T.get_count` → `get_count`).
    pub task: String,
    /// Operator type name (`groupby`, `filter_by`, `join`, …).
    pub task_type: String,
    /// The flow this execution belonged to, named by its output object.
    pub flow: String,
    /// Rows consumed (summed across fan-in inputs).
    pub rows_in: usize,
    /// Rows emitted.
    pub rows_out: usize,
    /// Start offset from run start, in microseconds.
    pub start_us: u64,
    /// Elapsed wall time, in microseconds.
    pub elapsed_us: u64,
}

/// One source load inside a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceLoadStat {
    /// Data object name.
    pub source: String,
    /// Rows loaded.
    pub rows: usize,
    /// Start offset from run start, in microseconds.
    pub start_us: u64,
    /// Elapsed wall time, in microseconds.
    pub elapsed_us: u64,
}

/// Per-run statistics (the execution-log data the hackathon dashboards of
/// §5.2.1 were built from).
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Rows read from sources.
    pub source_rows: usize,
    /// Rows produced per data object.
    pub rows_out: BTreeMap<String, usize>,
    /// Per-source load timings.
    pub source_loads: Vec<SourceLoadStat>,
    /// Per-task executions with rows and timing offsets.
    pub task_runs: Vec<TaskRunStat>,
    /// Total wall time in microseconds.
    pub total_micros: u128,
    /// Approximate bytes held by endpoint objects (what would ship to the
    /// browser — the §6 optimization metric).
    pub endpoint_bytes: usize,
}

/// Result of a pipeline run.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Every materialised data object (sources and sinks).
    pub tables: BTreeMap<String, Table>,
    /// Endpoint object names (subset of `tables`).
    pub endpoints: Vec<String>,
    /// Run statistics.
    pub stats: ExecStats,
}

impl ExecResult {
    /// Fetch a materialised table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }
}

/// The batch executor.
#[derive(Debug, Clone)]
pub struct Executor {
    /// Run DAG levels on threads.
    pub parallel_flows: bool,
    /// Chunk row-local tasks when tables exceed this many rows.
    pub chunk_threshold: usize,
    /// Worker threads for chunked execution.
    pub workers: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            parallel_flows: true,
            chunk_threshold: 8_192,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        }
    }
}

impl Executor {
    /// Single-threaded executor (deterministic timings for tests).
    pub fn sequential() -> Self {
        Executor {
            parallel_flows: false,
            chunk_threshold: usize::MAX,
            workers: 1,
        }
    }

    /// Run a pipeline to completion.
    pub fn execute(&self, pipeline: &CompiledPipeline, ctx: &ExecContext) -> Result<ExecResult> {
        let start = Instant::now();
        let tables: Arc<RwLock<BTreeMap<String, Table>>> =
            Arc::new(RwLock::new(ctx.tables.clone()));
        let stats = Arc::new(Mutex::new(ExecStats::default()));

        // Load sources needed by surviving flows.
        let mut needed_sources: Vec<&str> = Vec::new();
        for f in &pipeline.flows {
            for i in &f.inputs {
                if pipeline.sources.contains_key(i)
                    && !tables.read().contains_key(i)
                    && !needed_sources.contains(&i.as_str())
                {
                    needed_sources.push(i);
                }
            }
        }
        for name in needed_sources {
            let cfg = &pipeline.sources[name];
            let load_start_us = start.elapsed().as_micros() as u64;
            let t = ctx.catalog.load(cfg).map_err(|e| EngineError::Source {
                object: name.to_string(),
                message: e.to_string(),
            })?;
            {
                let mut s = stats.lock();
                s.source_rows += t.num_rows();
                s.source_loads.push(SourceLoadStat {
                    source: name.to_string(),
                    rows: t.num_rows(),
                    start_us: load_start_us,
                    elapsed_us: start.elapsed().as_micros() as u64 - load_start_us,
                });
            }
            tables.write().insert(name.to_string(), t);
        }

        // Execute flows level by level.
        let flows_by_output: BTreeMap<&str, &crate::compile::CompiledFlow> = pipeline
            .flows
            .iter()
            .map(|f| (f.output.as_str(), f))
            .collect();
        for level in pipeline.graph.levels() {
            let level_flows: Vec<&crate::compile::CompiledFlow> = level
                .iter()
                .filter_map(|o| flows_by_output.get(o.as_str()).copied())
                .collect();
            if level_flows.is_empty() {
                continue;
            }
            if self.parallel_flows && level_flows.len() > 1 {
                type FlowResult = (String, Result<(Table, Vec<TaskRunStat>)>);
                let results: Mutex<Vec<FlowResult>> = Mutex::new(Vec::new());
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    std::thread::scope(|scope| {
                        for flow in &level_flows {
                            let tables = Arc::clone(&tables);
                            let results = &results;
                            let ctx = ctx.clone();
                            scope.spawn(move || {
                                let r = self.run_flow(flow, &tables, &ctx, start);
                                results.lock().push((flow.output.clone(), r));
                            });
                        }
                    })
                }))
                .map_err(|_| EngineError::Internal("flow worker panicked".into()))?;
                for (output, result) in results.into_inner() {
                    let (table, task_stats) = result?;
                    stats.lock().task_runs.extend(task_stats);
                    stats
                        .lock()
                        .rows_out
                        .insert(output.clone(), table.num_rows());
                    tables.write().insert(output, table);
                }
            } else {
                for flow in level_flows {
                    let (table, task_stats) = self.run_flow(flow, &tables, ctx, start)?;
                    stats.lock().task_runs.extend(task_stats);
                    stats
                        .lock()
                        .rows_out
                        .insert(flow.output.clone(), table.num_rows());
                    tables.write().insert(flow.output.clone(), table);
                }
            }
        }

        let tables = Arc::try_unwrap(tables)
            .map_err(|_| EngineError::Internal("table cache still shared".into()))?
            .into_inner();
        let mut stats = Arc::try_unwrap(stats)
            .map_err(|_| EngineError::Internal("stats still shared".into()))?
            .into_inner();
        stats.total_micros = start.elapsed().as_micros();
        stats.endpoint_bytes = pipeline
            .endpoints
            .iter()
            .filter_map(|e| tables.get(e))
            .map(Table::approx_bytes)
            .sum();
        Ok(ExecResult {
            tables,
            endpoints: pipeline.endpoints.clone(),
            stats,
        })
    }

    fn run_flow(
        &self,
        flow: &crate::compile::CompiledFlow,
        tables: &RwLock<BTreeMap<String, Table>>,
        ctx: &ExecContext,
        run_start: Instant,
    ) -> Result<(Table, Vec<TaskRunStat>)> {
        // Gather inputs.
        let mut current: Vec<(Option<String>, Table)> = Vec::with_capacity(flow.inputs.len());
        for i in &flow.inputs {
            let t = tables
                .read()
                .get(i)
                .cloned()
                .ok_or_else(|| EngineError::UnresolvedData {
                    object: i.clone(),
                    context: format!("flow 'D.{}' at execution time", flow.output),
                })?;
            current.push((Some(i.clone()), t));
        }

        let selections = ctx.selections.clone();
        let mut task_stats = Vec::with_capacity(flow.tasks.len());
        for task in &flow.tasks {
            let t0 = Instant::now();
            let start_us = run_start.elapsed().as_micros() as u64;
            let in_rows: usize = current.iter().map(|(_, t)| t.num_rows()).sum();
            current = self.apply_task(task, current, tables, selections.as_deref())?;
            let out_rows: usize = current.iter().map(|(_, t)| t.num_rows()).sum();
            task_stats.push(TaskRunStat {
                task: task.name.clone(),
                task_type: task.kind.type_name().to_string(),
                flow: flow.output.clone(),
                rows_in: in_rows,
                rows_out: out_rows,
                start_us,
                elapsed_us: t0.elapsed().as_micros() as u64,
            });
        }
        if current.len() != 1 {
            return Err(EngineError::Execution {
                task: format!("flow D.{}", flow.output),
                message: format!("flow ended with {} unmerged tables", current.len()),
            });
        }
        Ok((current.remove(0).1, task_stats))
    }

    fn apply_task(
        &self,
        task: &NamedTask,
        mut current: Vec<(Option<String>, Table)>,
        tables: &RwLock<BTreeMap<String, Table>>,
        selections: Option<&dyn SelectionProvider>,
    ) -> Result<Vec<(Option<String>, Table)>> {
        let lookup = |name: &str| -> Option<Table> { tables.read().get(name).cloned() };
        let rt = TaskRuntime {
            selections,
            lookup_table: &lookup,
        };
        match &task.kind {
            TaskKind::Join(j) => {
                if current.len() != 2 {
                    return Err(EngineError::Execution {
                        task: task.name.clone(),
                        message: format!("join needs 2 inputs, found {}", current.len()),
                    });
                }
                let left_idx = current
                    .iter()
                    .position(|(n, _)| n.as_deref() == Some(j.left_name.as_str()))
                    .unwrap_or(0);
                let right_idx = 1 - left_idx;
                let inputs = [current[left_idx].1.clone(), current[right_idx].1.clone()];
                let out = task.kind.execute(&task.name, &inputs, &rt)?;
                Ok(vec![(None, out)])
            }
            TaskKind::Union => {
                let inputs: Vec<Table> = current.drain(..).map(|(_, t)| t).collect();
                let out = union_all(&inputs).map_err(|e| EngineError::Execution {
                    task: task.name.clone(),
                    message: e.to_string(),
                })?;
                Ok(vec![(None, out)])
            }
            _ => {
                if current.len() != 1 {
                    return Err(EngineError::Execution {
                        task: task.name.clone(),
                        message: format!(
                            "task consumes one input but found {} at this point",
                            current.len()
                        ),
                    });
                }
                let (_, input) = current.remove(0);
                let out = if task.kind.is_row_local()
                    && input.num_rows() > self.chunk_threshold
                    && self.workers > 1
                {
                    self.run_chunked(task, &input, &rt)?
                } else {
                    task.kind
                        .execute(&task.name, std::slice::from_ref(&input), &rt)?
                };
                Ok(vec![(None, out)])
            }
        }
    }

    /// Split a row-local task across worker threads by row ranges.
    fn run_chunked(&self, task: &NamedTask, input: &Table, rt: &TaskRuntime<'_>) -> Result<Table> {
        let n = input.num_rows();
        let chunks = self.workers.min(n.div_ceil(self.chunk_threshold)).max(1);
        let chunk_size = n.div_ceil(chunks);
        let slices: Vec<Table> = (0..chunks)
            .map(|c| input.slice(c * chunk_size, chunk_size))
            .collect();

        let results: Mutex<Vec<(usize, Result<Table>)>> = Mutex::new(Vec::new());
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                for (i, slice) in slices.iter().enumerate() {
                    let results = &results;
                    let task = &task;
                    let rt_sel = rt.selections;
                    scope.spawn(move || {
                        let lookup = |_: &str| None; // row-local tasks never look up tables
                        let local_rt = TaskRuntime {
                            selections: rt_sel,
                            lookup_table: &lookup,
                        };
                        let r =
                            task.kind
                                .execute(&task.name, std::slice::from_ref(slice), &local_rt);
                        results.lock().push((i, r));
                    });
                }
            })
        }))
        .map_err(|_| EngineError::Internal("chunk worker panicked".into()))?;

        let mut parts = results.into_inner();
        parts.sort_by_key(|(i, _)| *i);
        let tables: Vec<Table> = parts
            .into_iter()
            .map(|(_, r)| r)
            .collect::<Result<Vec<_>>>()?;
        union_all(&tables).map_err(|e| EngineError::Execution {
            task: task.name.clone(),
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileEnv};
    use crate::ext::TaskRegistry;
    use shareinsights_flowfile::parse_flow_file;
    use shareinsights_tabular::{row, Value};

    fn run(src: &str, setup: impl Fn(&Catalog)) -> ExecResult {
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let env = CompileEnv::bare(&reg);
        let pipeline = compile(&ff, &env).unwrap();
        let catalog = Catalog::new();
        setup(&catalog);
        let ctx = ExecContext::new(catalog);
        Executor::default().execute(&pipeline, &ctx).unwrap()
    }

    const APACHE: &str = r#"
D:
  svn_jira_summary: [project, year, noOfBugs, noOfCheckins]
  checkin_jira: [project, year, total_checkins, total_jira]

D.svn_jira_summary:
  source: 'svn_jira.csv'
  format: csv

T:
  get_count:
    type: groupby
    groupby: [project, year]
    aggregates:
    - operator: sum
      apply_on: noOfCheckins
      out_field: total_checkins
    - operator: sum
      apply_on: noOfBugs
      out_field: total_jira

F:
  +D.checkin_jira: D.svn_jira_summary | T.get_count
"#;

    #[test]
    fn executes_figure8_end_to_end() {
        let result = run(APACHE, |cat| {
            cat.data_folder().put_text(
                "svn_jira.csv",
                "p,y,b,c\npig,2013,5,100\npig,2013,3,50\nhive,2014,2,30\n",
            );
        });
        let out = result.table("checkin_jira").unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "total_checkins").unwrap(), Value::Int(150));
        assert_eq!(result.endpoints, vec!["checkin_jira"]);
        assert!(result.stats.endpoint_bytes > 0);
        assert_eq!(result.stats.source_rows, 3);
        assert_eq!(result.stats.rows_out.get("checkin_jira"), Some(&2));
        // Optimizer inserts a pruning projection ahead of the groupby.
        assert_eq!(result.stats.task_runs.len(), 2);
        let group = result
            .stats
            .task_runs
            .iter()
            .find(|t| t.task == "get_count")
            .expect("groupby task recorded");
        assert_eq!(group.task_type, "groupby");
        assert_eq!(group.flow, "checkin_jira");
        assert_eq!(group.rows_in, 3);
        assert_eq!(group.rows_out, 2);
        assert!(
            u128::from(group.start_us + group.elapsed_us) <= result.stats.total_micros,
            "task timing fits inside the run window"
        );
        assert_eq!(result.stats.source_loads.len(), 1);
        let load = &result.stats.source_loads[0];
        assert_eq!(load.source, "svn_jira_summary");
        assert_eq!(load.rows, 3);
    }

    #[test]
    fn intermediate_sinks_feed_downstream_flows() {
        // figure 11: sinks as inputs to other flows.
        let src = r#"
D:
  raw: [k, v]
T:
  keep:
    type: filter_by
    filter_expression: v > 1
  count:
    type: groupby
    groupby: [k]
F:
  D.mid: D.raw | T.keep
  +D.final: D.mid | T.count
"#;
        // 'raw' has no source: inject via context.
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let pipeline = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        let catalog = Catalog::new();
        let ctx = ExecContext::new(catalog).with_table(
            "raw",
            Table::from_rows(
                &["k", "v"],
                &[row!["a", 1i64], row!["a", 2i64], row!["b", 3i64]],
            )
            .unwrap(),
        );
        let result = Executor::default().execute(&pipeline, &ctx).unwrap();
        let final_t = result.table("final").unwrap();
        assert_eq!(final_t.num_rows(), 2);
        assert_eq!(result.table("mid").unwrap().num_rows(), 2);
    }

    #[test]
    fn fan_in_join_executes() {
        let src = r#"
D:
  left_data: [k, v]
  right_data: [k, w]
T:
  j:
    type: join
    left: left_data by k
    right: right_data by k
    join_condition: inner
F:
  +D.joined: (D.left_data, D.right_data) | T.j
"#;
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let pipeline = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        let ctx = ExecContext::new(Catalog::new())
            .with_table(
                "left_data",
                Table::from_rows(&["k", "v"], &[row!["x", 1i64], row!["y", 2i64]]).unwrap(),
            )
            .with_table(
                "right_data",
                Table::from_rows(&["k", "w"], &[row!["x", 9i64]]).unwrap(),
            );
        let result = Executor::default().execute(&pipeline, &ctx).unwrap();
        assert_eq!(result.table("joined").unwrap().num_rows(), 1);
    }

    #[test]
    fn chunked_execution_matches_sequential() {
        let rows: Vec<shareinsights_tabular::Row> = (0..50_000)
            .map(|i| row![format!("2013-05-{:02}", (i % 28) + 1), i as i64])
            .collect();
        let table = Table::from_rows(&["d", "n"], &rows).unwrap();
        let src = r#"
D:
  big: [d, n]
T:
  keep:
    type: filter_by
    filter_expression: n % 7 == 0
F:
  +D.out: D.big | T.keep
"#;
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let pipeline = compile(&ff, &CompileEnv::bare(&reg)).unwrap();

        let ctx = ExecContext::new(Catalog::new()).with_table("big", table.clone());
        let par = Executor::default().execute(&pipeline, &ctx).unwrap();
        let seq = Executor::sequential().execute(&pipeline, &ctx).unwrap();
        assert_eq!(par.table("out").unwrap(), seq.table("out").unwrap());
        assert_eq!(par.table("out").unwrap().num_rows(), 50_000 / 7 + 1);
    }

    #[test]
    fn missing_source_errors_with_object_name() {
        let ff = parse_flow_file("t", APACHE).unwrap();
        let reg = TaskRegistry::new();
        let pipeline = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        let ctx = ExecContext::new(Catalog::new()); // nothing in the folder
        let err = Executor::default().execute(&pipeline, &ctx).unwrap_err();
        assert!(err.to_string().contains("svn_jira_summary"), "{err}");
    }

    #[test]
    fn parallel_levels_execute_independent_flows() {
        let src = r#"
D:
  src_data: [a]
T:
  one:
    type: filter_by
    filter_expression: a > 0
  all:
    type: groupby
    groupby: [a]
F:
  +D.x: D.src_data | T.one
  +D.y: D.src_data | T.all
"#;
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let pipeline = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        let ctx = ExecContext::new(Catalog::new()).with_table(
            "src_data",
            Table::from_rows(&["a"], &[row![1i64], row![2i64]]).unwrap(),
        );
        let result = Executor::default().execute(&pipeline, &ctx).unwrap();
        assert!(result.table("x").is_some() && result.table("y").is_some());
    }
}
