//! # shareinsights-engine
//!
//! Flow-file compilation services (§4.1 of the paper) and the batch
//! execution substrate.
//!
//! The paper compiles the flow/widget sections into an AST and emits either
//! a Pig/Spark job (data processing) or a JavaScript data cube (widget
//! interaction). This reproduction keeps the same pipeline shape with a
//! from-scratch backend:
//!
//! ```text
//! FlowFile ──task interpretation──▶ TaskKind
//!          ──DAG construction────▶ FlowGraph (cycle detection, topo order)
//!          ──schema propagation──▶ per-object schemas, use-site validation
//!          ──optimizer──────────▶ rewritten pipeline (dead-sink elim,
//!                                  filter reorder, projection pruning)
//!          ──execution──────────▶ columnar parallel executor, or the
//!                                  naive row-at-a-time baseline
//! ```
//!
//! The [`ext`] module is the §4.2 Tasks extension API: custom whole-table
//! tasks, custom scalar map operators, and custom aggregates all register
//! there and are *indistinguishable from platform tasks in the flow file* —
//! the property §5.2.2 observation 2 highlights.

pub mod baseline;
pub mod compile;
pub mod error;
pub mod exec;
pub mod ext;
pub mod graph;
pub mod optimizer;
pub mod selection;
pub mod sql;
pub mod stream;
pub mod task;

pub use compile::{compile, CompileEnv, CompiledFlow, CompiledPipeline, CompiledTask};
pub use error::{EngineError, Result};
pub use exec::{ExecContext, ExecResult, ExecStats, Executor};
pub use ext::TaskRegistry;
pub use graph::FlowGraph;
pub use optimizer::OptimizerConfig;
pub use selection::{Selection, SelectionProvider, StaticSelections};
pub use stream::{StreamExec, StreamTick};
pub use task::TaskKind;
