//! Flow-file compilation: tasks → [`TaskKind`], flows → DAG, schemas
//! propagated and validated (§4.1's "flow file compilation services").

use crate::error::{EngineError, Result};
use crate::ext::TaskRegistry;
use crate::graph::FlowGraph;
use crate::optimizer::OptimizerConfig;
use crate::task::{interpret_task, InterpretEnv, NamedTask, TaskKind};
use shareinsights_connectors::catalog::DataObjectConfig;
use shareinsights_flowfile::ast::{DataObject, FlowFile};
use shareinsights_flowfile::config::ConfigValue;
use shareinsights_tabular::Schema;
use std::collections::BTreeMap;

/// A compiled flow: output, named inputs, interpreted task chain.
#[derive(Debug, Clone)]
pub struct CompiledFlow {
    /// Output data-object name.
    pub output: String,
    /// Input data-object names in declaration order.
    pub inputs: Vec<String>,
    /// Interpreted tasks in pipe order.
    pub tasks: Vec<NamedTask>,
    /// Whether the output is an endpoint (props or `+` alias).
    pub endpoint: bool,
    /// Publish name, when shared.
    pub publish: Option<String>,
}

/// Alias re-export so callers can name the compiled task type.
pub type CompiledTask = NamedTask;

/// The compiled pipeline handed to the executors.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    /// Dashboard name.
    pub name: String,
    /// Flows in executable (topological) order.
    pub flows: Vec<CompiledFlow>,
    /// The dependency graph.
    pub graph: FlowGraph,
    /// Source data-object configurations (connector layer), by name.
    pub sources: BTreeMap<String, DataObjectConfig>,
    /// Schema per data object where statically known.
    pub schemas: BTreeMap<String, Schema>,
    /// Endpoint object names.
    pub endpoints: Vec<String>,
    /// Published objects: local name → publish name.
    pub published: BTreeMap<String, String>,
}

/// Compilation environment.
pub struct CompileEnv<'a> {
    /// Extension registry (custom tasks/operators/aggregates).
    pub registry: &'a TaskRegistry,
    /// Loader for dictionary files referenced by `dict:` params.
    pub load_text: &'a dyn Fn(&str) -> Option<String>,
    /// Schemas of shared (published) objects resolvable by name.
    pub shared_schemas: BTreeMap<String, Schema>,
    /// Optimizer configuration.
    pub optimizer: OptimizerConfig,
}

impl<'a> CompileEnv<'a> {
    /// Environment with no dictionaries, no shared objects and default
    /// optimization.
    pub fn bare(registry: &'a TaskRegistry) -> CompileEnv<'a> {
        static NO_LOAD: fn(&str) -> Option<String> = |_| None;
        CompileEnv {
            registry,
            load_text: &NO_LOAD,
            shared_schemas: BTreeMap::new(),
            optimizer: OptimizerConfig::default(),
        }
    }
}

/// Convert a flow-file data object to the connector layer's config.
pub fn to_source_config(obj: &DataObject) -> DataObjectConfig {
    let mut cfg = DataObjectConfig {
        columns: obj.columns.iter().map(|c| c.name.clone()).collect(),
        paths: obj.columns.iter().map(|c| c.path.clone()).collect(),
        source: obj.props.get_scalar("source").map(str::to_string),
        protocol: obj.props.get_scalar("protocol").map(str::to_string),
        format: obj.props.get_scalar("format").map(str::to_string),
        separator: obj
            .props
            .get_scalar("separator")
            .and_then(|s| s.chars().next()),
        record_element: obj.props.get_scalar("record_element").map(str::to_string),
        request_type: obj.props.get_scalar("request_type").map(str::to_string),
        ..Default::default()
    };
    if let Some(ConfigValue::Map(headers)) = obj.props.get("http_headers") {
        for (k, v, _) in headers.entries() {
            if let Some(val) = v.as_scalar() {
                cfg.headers.insert(k.to_string(), val.to_string());
            }
        }
    }
    if let Some(q) = obj.props.get_scalar("query") {
        cfg.params.insert("query".into(), q.to_string());
    }
    cfg
}

/// The declared schema of a data object (bare column lists type as Utf8 —
/// §3.2's schema-light declarations).
pub fn declared_schema(obj: &DataObject) -> Option<Schema> {
    if obj.columns.is_empty() {
        None
    } else {
        Schema::all_utf8(&obj.column_names()).ok()
    }
}

/// Compile a flow file into an executable pipeline.
///
/// Order of operations: interpret tasks, build the DAG (cycle check),
/// resolve source schemas, propagate schemas through every flow in
/// topological order (validating each task at its use site), then run the
/// optimizer.
pub fn compile(ff: &FlowFile, env: &CompileEnv<'_>) -> Result<CompiledPipeline> {
    let graph = FlowGraph::build(&ff.flows)?;

    let ienv = InterpretEnv {
        registry: env.registry,
        load_text: env.load_text,
        all_tasks: &ff.tasks,
    };

    // Interpret flows' task chains.
    let mut flows_by_output: BTreeMap<String, CompiledFlow> = BTreeMap::new();
    for f in &ff.flows {
        let mut tasks = Vec::with_capacity(f.tasks.len());
        for tname in &f.tasks {
            let def = ff.task(tname).ok_or_else(|| EngineError::TaskConfig {
                task: tname.clone(),
                message: format!("not defined (used in flow 'D.{}')", f.output),
            })?;
            tasks.push(interpret_task(def, &ienv)?);
        }
        let obj = ff.data_object(&f.output);
        flows_by_output.insert(
            f.output.clone(),
            CompiledFlow {
                output: f.output.clone(),
                inputs: f.inputs.clone(),
                tasks,
                endpoint: f.endpoint_alias || obj.is_some_and(|o| o.endpoint),
                publish: obj.and_then(|o| o.publish.clone()),
            },
        );
    }

    // Source configurations and initial schemas.
    let mut sources = BTreeMap::new();
    let mut schemas: BTreeMap<String, Schema> = BTreeMap::new();
    for obj in &ff.data {
        let produced = graph.is_produced(&obj.name);
        if !produced && obj.props.get_scalar("source").is_some() {
            sources.insert(obj.name.clone(), to_source_config(obj));
        }
        if let Some(s) = declared_schema(obj) {
            schemas.insert(obj.name.clone(), s);
        }
    }
    for (name, schema) in &env.shared_schemas {
        schemas
            .entry(name.clone())
            .or_insert_with(|| schema.clone());
    }

    // Any referenced object that is not produced, has no source and no
    // shared schema is unresolved *unless* it at least declares columns
    // (a schema-only declaration can still be fed at execution time).
    for f in &ff.flows {
        for input in &f.inputs {
            let known = graph.is_produced(input)
                || sources.contains_key(input)
                || schemas.contains_key(input)
                || env.shared_schemas.contains_key(input);
            if !known {
                return Err(EngineError::UnresolvedData {
                    object: input.clone(),
                    context: format!("flow 'D.{}'", f.output),
                });
            }
        }
    }

    // Schema propagation in topological order.
    let topo = graph.topo_order();
    for output in &topo {
        let flow = flows_by_output
            .get(output)
            .expect("topo yields produced outputs");
        let mut input_schemas: Vec<Option<(String, Schema)>> = Vec::new();
        for i in &flow.inputs {
            input_schemas.push(schemas.get(i).map(|s| (i.clone(), s.clone())));
        }
        if input_schemas.iter().any(Option::is_none) {
            // An input schema is unknown (e.g. source without declared
            // columns) — defer validation to execution.
            continue;
        }
        let mut current: Vec<(Option<String>, Schema)> = input_schemas
            .into_iter()
            .map(|p| {
                let (n, s) = p.expect("checked above");
                (Some(n), s)
            })
            .collect();
        let mut ok = true;
        for task in &flow.tasks {
            match apply_task_schema(task, &mut current, output) {
                Ok(()) => {}
                Err(e) => {
                    return Err(match e {
                        EngineError::SchemaMismatch { task, message, .. } => {
                            EngineError::SchemaMismatch {
                                task,
                                flow: output.clone(),
                                message,
                            }
                        }
                        other => other,
                    });
                }
            }
            if current.is_empty() {
                ok = false;
                break;
            }
        }
        if ok {
            if current.len() != 1 {
                return Err(EngineError::SchemaMismatch {
                    task: flow
                        .tasks
                        .last()
                        .map(|t| t.name.clone())
                        .unwrap_or_default(),
                    flow: output.clone(),
                    message: format!(
                        "flow ends with {} unmerged inputs; add a join or union task",
                        current.len()
                    ),
                });
            }
            schemas.insert(output.clone(), current.remove(0).1);
        }
    }

    // Order flows topologically for the executors.
    let ordered: Vec<CompiledFlow> = topo
        .iter()
        .map(|o| flows_by_output.get(o).expect("present").clone())
        .collect();

    let endpoints: Vec<String> = {
        let mut v: Vec<String> = ff
            .endpoint_objects()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for f in &ordered {
            if f.endpoint && !v.contains(&f.output) {
                v.push(f.output.clone());
            }
        }
        v
    };
    let published: BTreeMap<String, String> = ff
        .data
        .iter()
        .filter_map(|d| d.publish.clone().map(|p| (d.name.clone(), p)))
        .collect();

    let mut pipeline = CompiledPipeline {
        name: ff.name.clone(),
        flows: ordered,
        graph,
        sources,
        schemas,
        endpoints,
        published,
    };
    crate::optimizer::optimize(&mut pipeline, &env.optimizer);
    Ok(pipeline)
}

/// Apply one task to the current multi-input schema set, consuming inputs
/// per its arity. Joins bind left/right by input name when possible.
fn apply_task_schema(
    task: &NamedTask,
    current: &mut Vec<(Option<String>, Schema)>,
    flow: &str,
) -> Result<()> {
    match &task.kind {
        TaskKind::Join(j) => {
            if current.len() != 2 {
                return Err(EngineError::SchemaMismatch {
                    task: task.name.clone(),
                    flow: flow.to_string(),
                    message: format!(
                        "join needs exactly 2 inputs at this point in the flow, found {}",
                        current.len()
                    ),
                });
            }
            // Bind by name when the flow inputs are named like the task's
            // left/right; otherwise positional.
            let left_idx = current
                .iter()
                .position(|(n, _)| n.as_deref() == Some(j.left_name.as_str()))
                .unwrap_or(0);
            let right_idx = 1 - left_idx;
            let schemas = [current[left_idx].1.clone(), current[right_idx].1.clone()];
            let out = task.kind.output_schema(&task.name, &schemas)?;
            current.clear();
            current.push((None, out));
        }
        TaskKind::Union => {
            let schemas: Vec<Schema> = current.iter().map(|(_, s)| s.clone()).collect();
            let out = task.kind.output_schema(&task.name, &schemas)?;
            current.clear();
            current.push((None, out));
        }
        _ => {
            if current.len() != 1 {
                return Err(EngineError::SchemaMismatch {
                    task: task.name.clone(),
                    flow: flow.to_string(),
                    message: format!(
                        "task consumes one input but the flow provides {} here; combine them with a join or union first",
                        current.len()
                    ),
                });
            }
            let schema = current[0].1.clone();
            let out = task.kind.output_schema(&task.name, &[schema])?;
            current[0] = (None, out);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_flowfile::parse_flow_file;

    const APACHE_MINI: &str = r#"
D:
  svn_jira_summary: [project, year, noOfBugs, noOfCheckins, noOfEmailsTotal]
  checkin_jira_emails: [project, year, total_checkins, total_jira, total_emails]

D.svn_jira_summary:
  source: 'svn_jira.csv'
  format: csv

T:
  get_svn_jira_count:
    type: groupby
    groupby: [project, year]
    aggregates:
    - operator: sum
      apply_on: noOfCheckins
      out_field: total_checkins
    - operator: sum
      apply_on: noOfBugs
      out_field: total_jira
    - operator: sum
      apply_on: noOfEmailsTotal
      out_field: total_emails

F:
  +D.checkin_jira_emails: D.svn_jira_summary | T.get_svn_jira_count
"#;

    #[test]
    fn compiles_figure8_flow() {
        let ff = parse_flow_file("apache", APACHE_MINI).unwrap();
        let reg = TaskRegistry::new();
        let env = CompileEnv::bare(&reg);
        let p = compile(&ff, &env).unwrap();
        assert_eq!(p.flows.len(), 1);
        assert!(p.flows[0].endpoint);
        assert!(p.sources.contains_key("svn_jira_summary"));
        let schema = p.schemas.get("checkin_jira_emails").unwrap();
        assert_eq!(
            schema.names(),
            vec![
                "project",
                "year",
                "total_checkins",
                "total_jira",
                "total_emails"
            ]
        );
        assert_eq!(p.endpoints, vec!["checkin_jira_emails"]);
    }

    #[test]
    fn schema_mismatch_names_task_and_flow() {
        let src = "D:\n  a: [x, y]\nT:\n  f:\n    type: filter_by\n    filter_expression: missing_col < 3\nF:\n  D.b: D.a | T.f\n";
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let err = compile(&ff, &CompileEnv::bare(&reg)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("T.f") && msg.contains("D.b") && msg.contains("missing_col"),
            "{msg}"
        );
    }

    #[test]
    fn unresolved_input_is_an_error() {
        let src = "T:\n  f:\n    type: limit\n    limit: 5\nF:\n  D.b: D.ghost | T.f\n";
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let err = compile(&ff, &CompileEnv::bare(&reg)).unwrap_err();
        assert!(matches!(err, EngineError::UnresolvedData { .. }));
    }

    #[test]
    fn shared_schema_resolves_input() {
        let src = "T:\n  f:\n    type: limit\n    limit: 5\nF:\n  D.b: D.shared_obj | T.f\n";
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let mut env = CompileEnv::bare(&reg);
        env.shared_schemas
            .insert("shared_obj".into(), Schema::all_utf8(&["a", "b"]).unwrap());
        let p = compile(&ff, &env).unwrap();
        assert_eq!(p.schemas.get("b").unwrap().names(), vec!["a", "b"]);
    }

    #[test]
    fn fan_in_without_combiner_rejected() {
        let src = "D:\n  a: [x]\n  b: [x]\nT:\n  f:\n    type: limit\n    limit: 5\nF:\n  D.c: (D.a, D.b) | T.f\n";
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let err = compile(&ff, &CompileEnv::bare(&reg)).unwrap_err();
        assert!(err.to_string().contains("join or union"), "{err}");
    }

    #[test]
    fn sql_task_compiles_to_a_pipeline_with_propagated_schema() {
        let src = "D:\n  sales: [region, brand, revenue]\nT:\n  top:\n    type: sql\n    \
                   query: \"select region, sum(revenue) from sales group by region \
                   order by sum_revenue desc limit 3\"\nF:\n  D.best: D.sales | T.top\n";
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let p = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        assert_eq!(
            p.schemas.get("best").unwrap().names(),
            vec!["region", "sum_revenue"]
        );
    }

    #[test]
    fn sql_task_with_bad_query_reports_the_diagnostic() {
        let src = "D:\n  sales: [region]\nT:\n  bad:\n    type: sql\n    \
                   query: \"select from sales\"\nF:\n  D.out: D.sales | T.bad\n";
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let err = compile(&ff, &CompileEnv::bare(&reg)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("invalid SQL"), "{msg}");
        assert!(msg.contains("line 1"), "spanned: {msg}");
    }

    #[test]
    fn fan_in_with_union_compiles() {
        let src =
            "D:\n  a: [x]\n  b: [x]\nT:\n  u:\n    type: union\nF:\n  D.c: (D.a, D.b) | T.u\n";
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let p = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        assert_eq!(p.schemas.get("c").unwrap().names(), vec!["x"]);
    }

    #[test]
    fn join_binds_sides_by_input_name() {
        let src = r#"
D:
  small: [k, v1]
  big: [k, v2]
T:
  j:
    type: join
    left: big by k
    right: small by k
    project:
      big_v2: value_big
      small_v1: value_small
F:
  D.out: (D.small, D.big) | T.j
"#;
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let p = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        // Despite (small, big) order in the flow, left binds to 'big'.
        assert_eq!(
            p.schemas.get("out").unwrap().names(),
            vec!["value_big", "value_small"]
        );
    }

    #[test]
    fn cycle_caught_at_compile() {
        let src =
            "T:\n  f:\n    type: limit\n    limit: 1\nF:\n  D.a: D.b | T.f\n  D.b: D.a | T.f\n";
        let ff = parse_flow_file("t", src).unwrap();
        let reg = TaskRegistry::new();
        let err = compile(&ff, &CompileEnv::bare(&reg)).unwrap_err();
        assert!(matches!(err, EngineError::Cycle { .. }));
    }

    #[test]
    fn source_config_conversion() {
        let src = "D:\n  api: [q => title, tags => tags]\nD.api:\n  source: 'https://api.example.com/questions'\n  protocol: http\n  format: json\n  request_type: get\n  http_headers:\n    X-Access-Key: XXX\n";
        let ff = parse_flow_file("t", src).unwrap();
        let cfg = to_source_config(ff.data_object("api").unwrap());
        assert_eq!(cfg.protocol.as_deref(), Some("http"));
        assert_eq!(cfg.columns, vec!["q", "tags"]);
        assert_eq!(cfg.paths[0].as_deref(), Some("title"));
        assert_eq!(
            cfg.headers.get("X-Access-Key").map(String::as_str),
            Some("XXX")
        );
    }
}
