//! Widget selection state as seen by the engine.
//!
//! Interaction flows filter by values "retrieved from widget X's widget
//! column property" (figure 15). The engine stays decoupled from the widget
//! crate through [`SelectionProvider`]: at execution time a `filter_by`
//! task with a `filter_source: W.<widget>` asks the provider for that
//! widget's current selection.

use parking_lot::RwLock;
use shareinsights_tabular::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A widget's current selection, keyed by widget column.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// Discrete selected values (list widgets, bubble selection).
    Values(Vec<Value>),
    /// An inclusive range (sliders).
    Range(Value, Value),
}

/// Resolves `(widget, widget column)` to the current selection.
pub trait SelectionProvider: Send + Sync {
    /// The selection, or `None` when nothing is selected (no constraint).
    fn selection(&self, widget: &str, column: &str) -> Option<Selection>;
}

/// A simple map-backed provider used by tests, the server's headless mode
/// and the hackathon simulator.
#[derive(Debug, Clone, Default)]
pub struct StaticSelections {
    map: Arc<RwLock<HashMap<(String, String), Selection>>>,
}

impl StaticSelections {
    /// Empty provider (everything unconstrained).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a selection.
    pub fn set(&self, widget: &str, column: &str, selection: Selection) {
        self.map
            .write()
            .insert((widget.to_string(), column.to_string()), selection);
    }

    /// Clear a widget column's selection.
    pub fn clear(&self, widget: &str, column: &str) {
        self.map
            .write()
            .remove(&(widget.to_string(), column.to_string()));
    }
}

impl SelectionProvider for StaticSelections {
    fn selection(&self, widget: &str, column: &str) -> Option<Selection> {
        self.map
            .read()
            .get(&(widget.to_string(), column.to_string()))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let s = StaticSelections::new();
        assert!(s.selection("teams", "text").is_none());
        s.set("teams", "text", Selection::Values(vec!["CSK".into()]));
        assert_eq!(
            s.selection("teams", "text"),
            Some(Selection::Values(vec!["CSK".into()]))
        );
        s.set(
            "ipl_duration",
            "value",
            Selection::Range("2013-05-02".into(), "2013-05-10".into()),
        );
        assert!(matches!(
            s.selection("ipl_duration", "value"),
            Some(Selection::Range(_, _))
        ));
        s.clear("teams", "text");
        assert!(s.selection("teams", "text").is_none());
    }

    #[test]
    fn clones_share_state() {
        let a = StaticSelections::new();
        let b = a.clone();
        a.set("w", "c", Selection::Values(vec![Value::Int(1)]));
        assert!(b.selection("w", "c").is_some());
    }
}
