//! Engine-layer errors.
//!
//! Compile errors always name the flow-file element (task, flow, data
//! object) they arose in — the abstraction-preserving diagnostics the
//! paper's §5.2.2 observation 7 asks for.

use std::fmt;

/// Result alias.
pub type Result<T, E = EngineError> = std::result::Result<T, E>;

/// Errors from compilation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A task configuration is invalid for its declared type.
    TaskConfig {
        /// Task name.
        task: String,
        /// What is wrong.
        message: String,
    },
    /// The flow graph has a cycle.
    Cycle {
        /// The data objects on the cycle, in order.
        path: Vec<String>,
    },
    /// A task is used against a schema missing required columns.
    SchemaMismatch {
        /// Task name.
        task: String,
        /// Flow output it is used in.
        flow: String,
        /// Underlying schema error text.
        message: String,
    },
    /// A data object could not be resolved to a source or upstream flow.
    UnresolvedData {
        /// Object name.
        object: String,
        /// Context (flow/widget).
        context: String,
    },
    /// Fetch/decode failed for a source object.
    Source {
        /// Object name.
        object: String,
        /// Connector error text.
        message: String,
    },
    /// A kernel failed at execution time.
    Execution {
        /// Task name (or `flow <name>`).
        task: String,
        /// Error text.
        message: String,
    },
    /// Anything else.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TaskConfig { task, message } => {
                write!(f, "task 'T.{task}': {message}")
            }
            EngineError::Cycle { path } => {
                write!(f, "flows form a cycle: {}", path.join(" -> "))
            }
            EngineError::SchemaMismatch {
                task,
                flow,
                message,
            } => {
                write!(f, "task 'T.{task}' in flow 'D.{flow}': {message}")
            }
            EngineError::UnresolvedData { object, context } => {
                write!(
                    f,
                    "data object 'D.{object}' used by {context} has no source, no producing flow, and no shared match"
                )
            }
            EngineError::Source { object, message } => {
                write!(f, "loading 'D.{object}' failed: {message}")
            }
            EngineError::Execution { task, message } => {
                write!(f, "executing 'T.{task}' failed: {message}")
            }
            EngineError::Internal(m) => write!(f, "internal engine error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_use_flowfile_vocabulary() {
        let e = EngineError::TaskConfig {
            task: "players_count".into(),
            message: "groupby needs a 'groupby:' column list".into(),
        };
        assert!(e.to_string().contains("T.players_count"));

        let e = EngineError::Cycle {
            path: vec!["a".into(), "b".into(), "a".into()],
        };
        assert_eq!(e.to_string(), "flows form a cycle: a -> b -> a");

        let e = EngineError::UnresolvedData {
            object: "ghost".into(),
            context: "flow 'D.out'".into(),
        };
        assert!(e.to_string().contains("D.ghost"));
        assert!(e.to_string().contains("shared match"));
    }
}
