//! Self-hosted telemetry time-series: a bounded in-memory columnar ring
//! the serving layer scrapes the [`ApiMetrics`] registry into, so the
//! stack can observe *itself* with its own query machinery instead of
//! point-in-time `/stats` snapshots that discard history the moment you
//! read them.
//!
//! Samples are `(ts, family, label, value)` rows — family is the registry
//! block (`routes`, `cache`, `index`, `reactor`, `stream`, `sql`, …),
//! label is `series|metric` (e.g. `GET /stats|p95_us`), value is an
//! integer counter or microsecond quantile. Each family has its own
//! retention budget; the oldest samples of that family are evicted first,
//! so a chatty family (per-route histograms) cannot starve a quiet one
//! (reactor gauges) out of history.
//!
//! The ring materialises one [`Table`] snapshot per scrape — not per
//! query — and hands out cheap clones (columns are shared), so the entire
//! existing query stack (path grammar, SQL, paging, caches, SSE) runs on
//! the `_system/telemetry` dataset unchanged.

use crate::telemetry::ApiMetrics;
use parking_lot::RwLock;
use shareinsights_tabular::{Column, DataType, Field, Schema, Table};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Default samples retained per family before FIFO eviction.
pub const DEFAULT_FAMILY_BUDGET: usize = 4096;

/// One sampled telemetry point, prior to timestamping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Registry block the sample came from (`routes`, `cache`, …).
    pub family: String,
    /// Series within the family, `series|metric` style.
    pub label: String,
    /// Integer value (counts, bytes, or microseconds).
    pub value: i64,
}

impl Sample {
    /// Convenience constructor.
    pub fn new(family: &str, label: impl Into<String>, value: i64) -> Sample {
        Sample {
            family: family.to_string(),
            label: label.into(),
            value,
        }
    }
}

/// Outcome of one scrape tick, for meta-telemetry and SSE fan-out.
#[derive(Debug, Clone)]
pub struct ScrapeOutcome {
    /// Samples appended this tick.
    pub samples: usize,
    /// Samples evicted (across families) to hold the retention budgets.
    pub evicted: usize,
    /// Samples currently retained across all families, post-scrape.
    pub retained: usize,
    /// Ring generation after the scrape (stamps caches and SSE frames).
    pub generation: u64,
    /// Just the rows appended this tick, as a table — the SSE delta frame
    /// a live widget appends, sparing subscribers the full snapshot.
    pub delta: Table,
}

/// Columnar per-family ring: parallel deques, FIFO-evicted at the budget.
#[derive(Debug, Default)]
struct FamilyRing {
    ts_us: VecDeque<i64>,
    labels: VecDeque<String>,
    values: VecDeque<i64>,
}

impl FamilyRing {
    fn len(&self) -> usize {
        self.ts_us.len()
    }

    fn push(&mut self, ts_us: i64, label: String, value: i64) {
        self.ts_us.push_back(ts_us);
        self.labels.push_back(label);
        self.values.push_back(value);
    }

    fn evict_to(&mut self, budget: usize) -> usize {
        let mut evicted = 0;
        while self.ts_us.len() > budget {
            self.ts_us.pop_front();
            self.labels.pop_front();
            self.values.pop_front();
            evicted += 1;
        }
        evicted
    }
}

#[derive(Debug, Default)]
struct Inner {
    families: BTreeMap<String, FamilyRing>,
    budgets: BTreeMap<String, usize>,
    generation: u64,
    scrapes: u64,
    appended: u64,
    evicted: u64,
    snapshot: Option<Table>,
}

/// Cumulative history-store statistics (surfaced under `/stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Scrape ticks recorded.
    pub scrapes: u64,
    /// Samples appended over the store's lifetime.
    pub appended: u64,
    /// Samples evicted to hold retention budgets.
    pub evicted: u64,
    /// Samples currently retained.
    pub retained: u64,
    /// Distinct families present.
    pub families: u64,
    /// Current ring generation.
    pub generation: u64,
}

/// The schema every snapshot table carries: `ts, family, label, value`.
fn history_schema() -> Schema {
    Schema::new(vec![
        Field::new("ts", DataType::Int64),
        Field::new("family", DataType::Utf8),
        Field::new("label", DataType::Utf8),
        Field::new("value", DataType::Int64),
    ])
    .expect("history schema fields are distinct")
}

fn table_of(rows: &[(i64, &str, &str, i64)]) -> Table {
    Table::new(
        history_schema(),
        vec![
            Column::int(rows.iter().map(|r| r.0)),
            Column::utf8(rows.iter().map(|r| r.1)),
            Column::utf8(rows.iter().map(|r| r.2)),
            Column::int(rows.iter().map(|r| r.3)),
        ],
    )
    .expect("history columns are rectangular")
}

/// Bounded time-series store over the telemetry registry. Cheap to clone
/// (shared interior); every handle sees the same ring.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHistory {
    default_budget: usize,
    inner: Arc<RwLock<Inner>>,
}

impl TelemetryHistory {
    /// Store with the default per-family budget.
    pub fn new() -> TelemetryHistory {
        TelemetryHistory::with_budget(DEFAULT_FAMILY_BUDGET)
    }

    /// Store retaining at most `per_family` samples per family.
    pub fn with_budget(per_family: usize) -> TelemetryHistory {
        TelemetryHistory {
            default_budget: per_family.max(1),
            inner: Arc::new(RwLock::new(Inner::default())),
        }
    }

    /// Override the retention budget of one family.
    pub fn set_family_budget(&self, family: &str, budget: usize) {
        let budget = budget.max(1);
        let mut inner = self.inner.write();
        inner.budgets.insert(family.to_string(), budget);
        let evicted = match inner.families.get_mut(family) {
            Some(ring) => ring.evict_to(budget),
            None => 0,
        };
        inner.evicted += evicted as u64;
        if evicted > 0 {
            inner.snapshot = None;
        }
    }

    /// Current ring generation. Bumped once per scrape so
    /// generation-stamped caches invalidate exactly when history advances.
    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }

    /// Cumulative store statistics.
    pub fn stats(&self) -> HistoryStats {
        let inner = self.inner.read();
        HistoryStats {
            scrapes: inner.scrapes,
            appended: inner.appended,
            evicted: inner.evicted,
            retained: inner.families.values().map(|r| r.len() as u64).sum(),
            families: inner.families.len() as u64,
            generation: inner.generation,
        }
    }

    /// Append one scrape tick of samples at `ts_us`, evicting per-family
    /// overflow, bumping the generation, and rebuilding the snapshot
    /// lazily (on next read).
    pub fn record(&self, ts_us: i64, samples: Vec<Sample>) -> ScrapeOutcome {
        let delta_rows: Vec<(i64, &str, &str, i64)> = samples
            .iter()
            .map(|s| (ts_us, s.family.as_str(), s.label.as_str(), s.value))
            .collect();
        let delta = table_of(&delta_rows);

        let mut inner = self.inner.write();
        let appended = samples.len();
        let mut evicted = 0usize;
        for s in samples {
            let budget = inner
                .budgets
                .get(&s.family)
                .copied()
                .unwrap_or(self.default_budget);
            let ring = inner.families.entry(s.family).or_default();
            ring.push(ts_us, s.label, s.value);
            evicted += ring.evict_to(budget);
        }
        inner.scrapes += 1;
        inner.appended += appended as u64;
        inner.evicted += evicted as u64;
        inner.generation += 1;
        inner.snapshot = None;
        ScrapeOutcome {
            samples: appended,
            evicted,
            retained: inner.families.values().map(|r| r.len()).sum(),
            generation: inner.generation,
            delta,
        }
    }

    /// Scrape the registry: collect every family's current counters,
    /// append them (plus any caller-provided `extra` samples — e.g. the
    /// server's query-cache block, which lives outside core) at `ts_us`.
    pub fn scrape(&self, metrics: &ApiMetrics, ts_us: i64, extra: Vec<Sample>) -> ScrapeOutcome {
        let mut samples = collect_registry_samples(metrics);
        samples.extend(extra);
        self.record(ts_us, samples)
    }

    /// The current history as a table (`ts, family, label, value`), built
    /// once per scrape and cloned per reader — columns are shared, so this
    /// is copy-free on the query path.
    pub fn snapshot_table(&self) -> Table {
        if let Some(t) = self.inner.read().snapshot.as_ref() {
            return t.clone();
        }
        let mut inner = self.inner.write();
        if let Some(t) = inner.snapshot.as_ref() {
            return t.clone();
        }
        let total: usize = inner.families.values().map(|r| r.len()).sum();
        let mut ts = Vec::with_capacity(total);
        let mut families = Vec::with_capacity(total);
        let mut labels = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        for (family, ring) in &inner.families {
            for i in 0..ring.len() {
                ts.push(ring.ts_us[i]);
                families.push(family.clone());
                labels.push(ring.labels[i].clone());
                values.push(ring.values[i]);
            }
        }
        let table = Table::new(
            history_schema(),
            vec![
                Column::int(ts),
                Column::utf8(families),
                Column::utf8(labels),
                Column::int(values),
            ],
        )
        .expect("history columns are rectangular");
        inner.snapshot = Some(table.clone());
        table
    }
}

fn clamp_i64(v: u64) -> i64 {
    v.min(i64::MAX as u64) as i64
}

/// Walk every [`ApiMetrics`] family and flatten the interesting series
/// into samples: per-route counters and latency quantiles, aggregate
/// cache totals, per-operator throughput, and the index / reactor /
/// stream / sql / connection blocks.
pub fn collect_registry_samples(metrics: &ApiMetrics) -> Vec<Sample> {
    let mut out = Vec::with_capacity(128);
    let mut push = |family: &str, label: String, value: u64| {
        out.push(Sample {
            family: family.to_string(),
            label,
            value: clamp_i64(value),
        });
    };

    for (route, s) in metrics.snapshot() {
        push("routes", format!("{route}|count"), s.count);
        push("routes", format!("{route}|errors"), s.errors);
        push(
            "routes",
            format!("{route}|p50_us"),
            s.latency.quantile_us(0.5),
        );
        push(
            "routes",
            format!("{route}|p95_us"),
            s.latency.quantile_us(0.95),
        );
        push("routes", format!("{route}|max_us"), s.latency.max_us);
    }

    let (hits, misses) = metrics.cache_totals();
    push("cache", "hits".into(), hits);
    push("cache", "misses".into(), misses);

    let c = metrics.connections();
    push("connections", "accepted".into(), c.accepted);
    push("connections", "closed".into(), c.closed);
    push("connections", "reused".into(), c.reused);
    push("connections", "requests".into(), c.requests);
    push("connections", "idle_timeouts".into(), c.idle_timeouts);
    push("connections", "io_timeouts".into(), c.io_timeouts);

    for (op, s) in metrics.operators() {
        push("operators", format!("{op}|runs"), s.runs);
        push("operators", format!("{op}|rows_in"), s.rows_in);
        push("operators", format!("{op}|rows_out"), s.rows_out);
        push(
            "operators",
            format!("{op}|p95_us"),
            s.latency.quantile_us(0.95),
        );
    }

    let ix = metrics.index();
    push("index", "builds".into(), ix.builds);
    push("index", "build_us".into(), ix.build_us);
    push("index", "covered".into(), ix.covered);
    push("index", "fallback".into(), ix.fallback);

    let r = metrics.reactor();
    push("reactor", "registered".into(), r.registered);
    push("reactor", "peak_registered".into(), r.peak_registered);
    push("reactor", "wakeups".into(), r.wakeups);
    push("reactor", "ready_events".into(), r.ready_events);
    push("reactor", "epollout_rearms".into(), r.epollout_rearms);
    push("reactor", "dispatched".into(), r.dispatched);

    let st = metrics.stream();
    push("stream", "ticks".into(), st.ticks);
    push("stream", "rows_in".into(), st.rows_in);
    push("stream", "evicted_rows".into(), st.evicted_rows);
    push("stream", "frames_sent".into(), st.frames_sent);
    push("stream", "frame_bytes".into(), st.frame_bytes);
    push("stream", "subscribers".into(), st.subscribers);
    push(
        "stream",
        "dropped_subscribers".into(),
        st.dropped_subscribers,
    );

    let q = metrics.sql();
    push("sql", "queries".into(), q.queries);
    push("sql", "parse_errors".into(), q.parse_errors);
    push("sql", "path_shared".into(), q.path_shared);
    push("sql", "parse_us".into(), q.parse_us);

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::Value;

    fn sample(family: &str, label: &str, value: i64) -> Sample {
        Sample::new(family, label, value)
    }

    #[test]
    fn record_bumps_generation_and_snapshots_lazily() {
        let h = TelemetryHistory::new();
        assert_eq!(h.generation(), 0);
        assert_eq!(h.snapshot_table().num_rows(), 0);

        let out = h.record(1_000, vec![sample("routes", "GET /stats|count", 3)]);
        assert_eq!(out.generation, 1);
        assert_eq!(out.samples, 1);
        assert_eq!(out.evicted, 0);
        assert_eq!(out.delta.num_rows(), 1);

        let t = h.snapshot_table();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, "ts").unwrap(), Value::Int(1_000));
        assert_eq!(t.value(0, "family").unwrap(), Value::Str("routes".into()));
        assert_eq!(t.value(0, "value").unwrap(), Value::Int(3));

        // Snapshot is cached: same columns handed back until the next scrape.
        let again = h.snapshot_table();
        assert_eq!(t, again);
        h.record(2_000, vec![sample("routes", "GET /stats|count", 4)]);
        assert_eq!(h.generation(), 2);
        assert_eq!(h.snapshot_table().num_rows(), 2);
    }

    #[test]
    fn per_family_budgets_evict_oldest_of_that_family_only() {
        let h = TelemetryHistory::with_budget(2);
        for i in 0..4 {
            h.record(
                i * 10,
                vec![
                    sample("routes", "r|count", i),
                    sample("sql", "queries", 100 + i),
                ],
            );
        }
        let stats = h.stats();
        assert_eq!(stats.retained, 4, "two families × budget 2");
        assert_eq!(stats.evicted, 4);
        assert_eq!(stats.appended, 8);
        let t = h.snapshot_table();
        assert_eq!(t.num_rows(), 4);
        // Oldest two of each family are gone; the survivors are ts 20/30.
        for row in 0..t.num_rows() {
            let Value::Int(ts) = t.value(row, "ts").unwrap() else {
                panic!("ts is int");
            };
            assert!(ts >= 20, "ts {ts} should have been evicted");
        }
    }

    #[test]
    fn family_budget_override_trims_existing_ring() {
        let h = TelemetryHistory::with_budget(100);
        for i in 0..10 {
            h.record(i, vec![sample("stream", "ticks", i)]);
        }
        h.set_family_budget("stream", 3);
        assert_eq!(h.stats().retained, 3);
        h.record(99, vec![sample("stream", "ticks", 99)]);
        assert_eq!(h.stats().retained, 3, "budget holds on later scrapes");
    }

    #[test]
    fn scrape_flattens_every_registry_family() {
        let m = ApiMetrics::new();
        m.record("GET /stats", true, 120);
        m.record_cache("GET /q", true);
        m.record_operator("groupby", 10, 2, 50);
        m.record_index_build(75);
        m.record_reactor_wakeup(3);
        m.record_stream_tick(5, 0);
        m.record_sql_query(40, true);
        m.record_conn_accepted();

        let h = TelemetryHistory::new();
        let out = h.scrape(&m, 123, vec![sample("cache", "query_entries", 7)]);
        assert!(out.samples > 20, "{}", out.samples);
        let t = h.snapshot_table();
        let mut families: Vec<String> = Vec::new();
        for row in 0..t.num_rows() {
            if let Value::Str(f) = t.value(row, "family").unwrap() {
                if !families.contains(&f) {
                    families.push(f);
                }
            }
        }
        for want in [
            "routes",
            "cache",
            "connections",
            "operators",
            "index",
            "reactor",
            "stream",
            "sql",
        ] {
            assert!(families.iter().any(|f| f == want), "missing {want}");
        }
    }
}
