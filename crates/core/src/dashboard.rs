//! A dashboard: a named flow file with version history and run state.

use shareinsights_collab::Repository;
use shareinsights_engine::exec::ExecResult;
use shareinsights_flowfile::ast::FlowFile;
use shareinsights_flowfile::validate::{validate_with, ValidateOptions};
use shareinsights_flowfile::Diagnostic;
use shareinsights_tabular::Table;
use std::collections::BTreeMap;

/// One dashboard on the platform.
#[derive(Debug, Clone)]
pub struct Dashboard {
    /// Name (also the URL segment: `/dashboards/<name>/…`).
    pub name: String,
    /// Version history.
    pub repo: Repository,
    /// Current flow-file text (head of `main`).
    pub text: String,
    /// Parsed AST of the current text.
    pub ast: FlowFile,
    /// Last run's materialised endpoint tables.
    pub endpoint_tables: BTreeMap<String, Table>,
}

impl Dashboard {
    /// Create with empty content.
    pub fn new(name: &str) -> Dashboard {
        Dashboard {
            name: name.to_string(),
            repo: Repository::new(name),
            text: String::new(),
            ast: FlowFile {
                name: name.to_string(),
                ..Default::default()
            },
            endpoint_tables: BTreeMap::new(),
        }
    }

    /// Validate the current AST with platform context (extension task
    /// names, shared object names).
    pub fn validate(&self, opts: &ValidateOptions) -> Vec<Diagnostic> {
        validate_with(&self.ast, opts)
    }

    /// Flow-file size in bytes (the figure-35 metric).
    pub fn flow_bytes(&self) -> usize {
        self.text.len()
    }

    /// True when this dashboard is in data-processing mode (§3.7.1).
    pub fn is_data_processing_mode(&self) -> bool {
        self.ast.is_data_processing_mode()
    }
}

/// Outcome of a batch run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The engine result (all materialised tables + stats).
    pub result: ExecResult,
    /// Objects published (publish name, rows) during this run.
    pub published: Vec<(String, usize)>,
    /// Optimizer/compile diagnostics carried along for the editor.
    pub warnings: Vec<Diagnostic>,
}

impl RunReport {
    /// Endpoint tables keyed by object name.
    pub fn endpoint_tables(&self) -> BTreeMap<String, Table> {
        self.result
            .endpoints
            .iter()
            .filter_map(|e| self.result.table(e).map(|t| (e.clone(), t.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_dashboard_is_empty() {
        let d = Dashboard::new("demo");
        assert_eq!(d.flow_bytes(), 0);
        assert!(d.repo.is_empty());
        assert!(d.is_data_processing_mode(), "no widgets yet");
        assert!(crate::error::PlatformError::NoDashboard("x".into())
            .to_string()
            .contains("x"));
    }
}
