//! Auto-constructed meta-dashboards — §6 future work, implemented:
//! "We want to auto-construct meta-dashboards which provide statistics and
//! analysis of all the data columns used in the data pipeline. Since data
//! cleaning is a non-trivial activity, we believe this feature would be of
//! immense help for huge data sizes."
//!
//! [`profile_table`] computes per-column statistics; [`build_meta_dashboard`]
//! materialises them for every data object a run produced and synthesises a
//! real flow file + endpoint so the profile is itself a dashboard on the
//! platform (browseable over `/ds`, renderable with the stock widgets).

use crate::dashboard::RunReport;
use shareinsights_tabular::{Column, Row, Table, Value};
use std::collections::HashMap;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Data object the column belongs to.
    pub object: String,
    /// Column name.
    pub column: String,
    /// Logical type name.
    pub data_type: String,
    /// Total rows.
    pub rows: usize,
    /// Null cells.
    pub nulls: usize,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Minimum value (textual), when any non-null value exists.
    pub min: Option<String>,
    /// Maximum value (textual).
    pub max: Option<String>,
    /// Most frequent value and its count.
    pub top_value: Option<(String, usize)>,
    /// String cells with leading/trailing whitespace (a §5.2.2-obs-4
    /// cleaning smell).
    pub padded: usize,
}

impl ColumnProfile {
    /// Null ratio in [0, 1].
    pub fn null_ratio(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// True when the column looks like a key (all values distinct,
    /// no nulls, non-empty).
    pub fn looks_like_key(&self) -> bool {
        self.rows > 0 && self.nulls == 0 && self.distinct == self.rows
    }
}

/// Profile every column of a table.
pub fn profile_table(object: &str, table: &Table) -> Vec<ColumnProfile> {
    table
        .schema()
        .fields()
        .iter()
        .zip(table.columns())
        .map(|(field, col)| profile_column(object, field.name(), col))
        .collect()
}

fn profile_column(object: &str, name: &str, col: &Column) -> ColumnProfile {
    let rows = col.len();
    let mut nulls = 0usize;
    let mut padded = 0usize;
    let mut counts: HashMap<Value, usize> = HashMap::new();
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    for i in 0..rows {
        let v = col.value(i);
        if v.is_null() {
            nulls += 1;
            continue;
        }
        if let Some(s) = v.as_str() {
            if s != s.trim() {
                padded += 1;
            }
        }
        if min.as_ref().is_none_or(|m| v < *m) {
            min = Some(v.clone());
        }
        if max.as_ref().is_none_or(|m| v > *m) {
            max = Some(v.clone());
        }
        *counts.entry(v).or_default() += 1;
    }
    let top_value = counts
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(v, c)| (v.to_string(), *c));
    ColumnProfile {
        object: object.to_string(),
        column: name.to_string(),
        data_type: col.data_type().to_string(),
        rows,
        nulls,
        distinct: counts.len(),
        min: min.map(|v| v.to_string()),
        max: max.map(|v| v.to_string()),
        top_value,
        padded,
    }
}

/// The materialised meta-dashboard: a profile table (one row per column of
/// every profiled object) plus a generated flow file that visualises it.
#[derive(Debug, Clone)]
pub struct MetaDashboard {
    /// One row per (object, column).
    pub profile: Table,
    /// A complete flow file rendering the profile with stock widgets.
    pub flow_text: String,
    /// Columns flagged as cleaning candidates (high nulls / padding / mixed
    /// case duplicates).
    pub warnings: Vec<String>,
}

/// Build the meta-dashboard for everything a run materialised.
pub fn build_meta_dashboard(run: &RunReport) -> MetaDashboard {
    build_meta_from_tables(run.result.tables.iter().map(|(n, t)| (n.as_str(), t)))
}

/// Build the meta-dashboard from any set of named tables.
pub fn build_meta_from_tables<'a>(
    tables: impl IntoIterator<Item = (&'a str, &'a Table)>,
) -> MetaDashboard {
    let mut profiles: Vec<ColumnProfile> = Vec::new();
    for (name, table) in tables {
        profiles.extend(profile_table(name, table));
    }
    profiles.sort_by(|a, b| (&a.object, &a.column).cmp(&(&b.object, &b.column)));

    let rows: Vec<Row> = profiles
        .iter()
        .map(|p| {
            Row(vec![
                p.object.clone().into(),
                p.column.clone().into(),
                p.data_type.clone().into(),
                Value::Int(p.rows as i64),
                Value::Int(p.nulls as i64),
                Value::Int(p.distinct as i64),
                p.min.clone().map(Value::Str).unwrap_or(Value::Null),
                p.max.clone().map(Value::Str).unwrap_or(Value::Null),
                p.top_value
                    .as_ref()
                    .map(|(v, c)| Value::Str(format!("{v} ({c})")))
                    .unwrap_or(Value::Null),
                Value::Int(p.padded as i64),
            ])
        })
        .collect();
    let profile = Table::from_rows(
        &[
            "object",
            "column",
            "type",
            "rows",
            "nulls",
            "distinct",
            "min",
            "max",
            "top_value",
            "padded",
        ],
        &rows,
    )
    .expect("profile rows are rectangular");

    let mut warnings = Vec::new();
    for p in &profiles {
        if p.null_ratio() > 0.2 && p.rows > 0 {
            warnings.push(format!(
                "D.{}.{}: {:.0}% null — consider a null filter task",
                p.object,
                p.column,
                p.null_ratio() * 100.0
            ));
        }
        if p.padded > 0 {
            warnings.push(format!(
                "D.{}.{}: {} cells have stray whitespace — consider a trimming map task",
                p.object, p.column, p.padded
            ));
        }
    }

    // The generated dashboard: grid of profiles + null bar, filterable by
    // object (interaction flow, like any dashboard).
    let flow_text = r#"
D:
  column_profiles: [object, column, type, rows, nulls, distinct, min, max, top_value, padded]
D.column_profiles:
  endpoint: true
T:
  filter_by_object:
    type: filter_by
    filter_by: [object]
    filter_source: W.objects
    filter_val: [text]
  object_names:
    type: distinct
    columns: [object]
W:
  objects:
    type: List
    source: D.column_profiles | T.object_names
    text: object
  profile_grid:
    type: DataGrid
    source: D.column_profiles | T.filter_by_object
  null_bar:
    type: Bar
    source: D.column_profiles | T.filter_by_object
    x: column
    y: nulls
L:
  description: Data Quality Meta-Dashboard
  rows:
  - [span3: W.objects, span9: W.profile_grid]
  - [span12: W.null_bar]
"#
    .to_string();

    MetaDashboard {
        profile,
        flow_text,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use shareinsights_tabular::row;

    fn sample() -> Table {
        Table::from_rows(
            &["id", "name", "score"],
            &[
                row![1i64, "alice", 0.5],
                row![2i64, " bob ", Value::Null],
                row![3i64, "alice", 0.9],
                row![4i64, Value::Null, 0.9],
            ],
        )
        .unwrap()
    }

    #[test]
    fn profile_statistics() {
        let profiles = profile_table("users", &sample());
        assert_eq!(profiles.len(), 3);
        let id = &profiles[0];
        assert_eq!(id.column, "id");
        assert_eq!((id.rows, id.nulls, id.distinct), (4, 0, 4));
        assert!(id.looks_like_key());
        assert_eq!(id.min.as_deref(), Some("1"));
        assert_eq!(id.max.as_deref(), Some("4"));

        let name = &profiles[1];
        assert_eq!(name.nulls, 1);
        assert_eq!(name.distinct, 2, "alice (twice) and ' bob '");
        assert_eq!(name.padded, 1);
        assert_eq!(name.top_value, Some(("alice".to_string(), 2)));
        assert!(!name.looks_like_key());

        let score = &profiles[2];
        assert_eq!(score.nulls, 1);
        assert!((score.null_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_table_profiles_cleanly() {
        let t = Table::from_rows(&["a"], &[]).unwrap();
        let p = profile_table("empty", &t);
        assert_eq!(p[0].rows, 0);
        assert_eq!(p[0].min, None);
        assert_eq!(p[0].null_ratio(), 0.0);
    }

    #[test]
    fn meta_dashboard_is_a_runnable_dashboard() {
        // Run a real pipeline, build its meta-dashboard, then load the
        // generated flow file back onto the platform and interact with it —
        // the §6 feature closing the loop.
        let platform = Platform::new();
        platform.upload_data("d", "data.csv", "k,v\na,1\na,\nb,3\n");
        platform
            .save_flow(
                "d",
                "D:\n  data: [k, v]\nD.data:\n  source: 'data.csv'\n  format: csv\nT:\n  g:\n    type: groupby\n    groupby: [k]\nF:\n  +D.out: D.data | T.g\n",
            )
            .unwrap();
        let run = platform.run_dashboard("d").unwrap();
        let meta = build_meta_dashboard(&run);

        // Profiles cover both the source and the sink.
        let objects: std::collections::BTreeSet<String> = (0..meta.profile.num_rows())
            .map(|i| meta.profile.value(i, "object").unwrap().to_string())
            .collect();
        assert!(objects.contains("data") && objects.contains("out"));
        // The null in v was noticed.
        assert!(
            meta.warnings.iter().any(|w| w.contains("null")),
            "{:?}",
            meta.warnings
        );

        // The generated flow file loads and renders through the platform's
        // one-call API.
        let (meta2, dash) = platform.open_meta_dashboard("d").unwrap();
        assert_eq!(meta2.profile, meta.profile);
        let node = dash.render_widget("profile_grid", 20).unwrap();
        assert!(node.lines.iter().any(|l| l.contains("nulls")));
        dash.select("objects", "text", vec!["data".into()]).unwrap();
        let filtered = dash.data_of("profile_grid").unwrap();
        assert!(filtered.num_rows() > 0);
        for i in 0..filtered.num_rows() {
            assert_eq!(filtered.value(i, "object").unwrap().to_string(), "data");
        }
    }
}
