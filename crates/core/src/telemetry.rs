//! Platform telemetry: the application/execution logs the paper's §5.2.1
//! dashboards were built from ("the data generated during the competition —
//! application logs, flow file growth, error messages, execution logs —
//! were used to build dashboards … figure 31 highlights the popular
//! operators and widgets").

use parking_lot::RwLock;
use shareinsights_flowfile::ast::FlowFile;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What kind of platform operation an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// Flow file saved (a commit).
    Save,
    /// Compilation attempt.
    Compile,
    /// Batch execution (a "run" in figure 32's sense).
    Run,
    /// Dashboard opened / interaction session.
    Open,
    /// Fork of another dashboard.
    Fork,
}

/// One telemetry event.
#[derive(Debug, Clone)]
pub struct RunEvent {
    /// Dashboard name.
    pub dashboard: String,
    /// Operation.
    pub kind: RunKind,
    /// Success?
    pub success: bool,
    /// Error text when failed.
    pub error: Option<String>,
    /// Flow-file size in bytes at the time.
    pub flow_bytes: usize,
    /// Task types used (type name per task, with multiplicity).
    pub operators: Vec<String>,
    /// Widget types used (with multiplicity).
    pub widgets: Vec<String>,
    /// Monotonic sequence number.
    pub seq: u64,
}

/// Aggregated operator/widget usage — the figure-31 series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageCounts {
    /// operator (task type) -> occurrences.
    pub operators: BTreeMap<String, usize>,
    /// widget type -> occurrences.
    pub widgets: BTreeMap<String, usize>,
}

impl UsageCounts {
    /// Operators ranked by popularity (descending, name tiebreak).
    pub fn top_operators(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = self
            .operators
            .iter()
            .map(|(k, &c)| (k.as_str(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Widgets ranked by popularity.
    pub fn top_widgets(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = self
            .widgets
            .iter()
            .map(|(k, &c)| (k.as_str(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

/// Extract the operator/widget usage of one flow file.
pub fn usage_of(ff: &FlowFile) -> (Vec<String>, Vec<String>) {
    let operators = ff.tasks.iter().map(|t| t.task_type.clone()).collect();
    let widgets = ff.widgets.iter().map(|w| w.widget_type.clone()).collect();
    (operators, widgets)
}

/// The platform's append-only event log.
#[derive(Debug, Clone, Default)]
pub struct RunLog {
    events: Arc<RwLock<Vec<RunEvent>>>,
}

impl RunLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (sequence assigned).
    pub fn record(&self, mut event: RunEvent) {
        let mut events = self.events.write();
        event.seq = events.len() as u64 + 1;
        events.push(event);
    }

    /// Snapshot of all events.
    pub fn events(&self) -> Vec<RunEvent> {
        self.events.read().clone()
    }

    /// Number of events of a kind for a dashboard (figure 32's per-team run
    /// counts).
    pub fn count(&self, dashboard: &str, kind: RunKind) -> usize {
        self.events
            .read()
            .iter()
            .filter(|e| e.dashboard == dashboard && e.kind == kind)
            .count()
    }

    /// Usage aggregated over all successful compile/run events —
    /// regenerates figure 31.
    pub fn usage(&self) -> UsageCounts {
        let mut counts = UsageCounts::default();
        for e in self.events.read().iter() {
            if !e.success || !matches!(e.kind, RunKind::Run | RunKind::Open) {
                continue;
            }
            for op in &e.operators {
                *counts.operators.entry(op.clone()).or_default() += 1;
            }
            for w in &e.widgets {
                *counts.widgets.entry(w.clone()).or_default() += 1;
            }
        }
        counts
    }

    /// The flow-file byte sizes at each dashboard's *first* event — the
    /// figure-35 "fork to go" series when first events are forks.
    pub fn starting_sizes(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for e in self.events.read().iter() {
            out.entry(e.dashboard.clone()).or_insert(e.flow_bytes);
        }
        out
    }

    /// Error messages of failed events (observation 7's debugging data).
    pub fn errors(&self) -> Vec<(String, String)> {
        self.events
            .read()
            .iter()
            .filter_map(|e| {
                e.error
                    .as_ref()
                    .map(|msg| (e.dashboard.clone(), msg.clone()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_flowfile::parse_flow_file;

    fn event(dash: &str, kind: RunKind, ops: &[&str], widgets: &[&str], bytes: usize) -> RunEvent {
        RunEvent {
            dashboard: dash.into(),
            kind,
            success: true,
            error: None,
            flow_bytes: bytes,
            operators: ops.iter().map(|s| s.to_string()).collect(),
            widgets: widgets.iter().map(|s| s.to_string()).collect(),
            seq: 0,
        }
    }

    #[test]
    fn usage_aggregates_runs_only() {
        let log = RunLog::new();
        log.record(event("t1", RunKind::Run, &["groupby", "filter_by"], &["WordCloud"], 100));
        log.record(event("t2", RunKind::Run, &["groupby"], &["WordCloud", "Slider"], 200));
        log.record(event("t2", RunKind::Save, &["join"], &[], 200)); // ignored
        let mut failed = event("t3", RunKind::Run, &["join"], &[], 50);
        failed.success = false;
        failed.error = Some("boom".into());
        log.record(failed); // ignored in usage, shows in errors

        let usage = log.usage();
        assert_eq!(usage.operators.get("groupby"), Some(&2));
        assert_eq!(usage.operators.get("join"), None);
        assert_eq!(usage.top_widgets()[0], ("WordCloud", 2));
        assert_eq!(log.errors(), vec![("t3".to_string(), "boom".to_string())]);
    }

    #[test]
    fn counts_and_starting_sizes() {
        let log = RunLog::new();
        log.record(event("team5", RunKind::Fork, &[], &[], 1500));
        log.record(event("team5", RunKind::Run, &[], &[], 1800));
        log.record(event("team5", RunKind::Run, &[], &[], 2500));
        assert_eq!(log.count("team5", RunKind::Run), 2);
        assert_eq!(log.count("team5", RunKind::Fork), 1);
        assert_eq!(log.starting_sizes().get("team5"), Some(&1500));
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.events()[2].seq, 3);
    }

    #[test]
    fn usage_of_flowfile() {
        let ff = parse_flow_file(
            "t",
            "T:\n  a:\n    type: groupby\n    groupby: [x]\n  b:\n    type: filter_by\n    filter_expression: x > 1\nW:\n  w:\n    type: WordCloud\n    source: D.d\n    text: x\n    size: y\n",
        )
        .unwrap();
        let (ops, widgets) = usage_of(&ff);
        assert_eq!(ops, vec!["groupby", "filter_by"]);
        assert_eq!(widgets, vec!["WordCloud"]);
    }
}
