//! Platform telemetry: the application/execution logs the paper's §5.2.1
//! dashboards were built from ("the data generated during the competition —
//! application logs, flow file growth, error messages, execution logs —
//! were used to build dashboards … figure 31 highlights the popular
//! operators and widgets").
//!
//! Also hosts the serving-path observability ([`ApiMetrics`]): per-route
//! request counts, error counts, cache hit/miss tallies and latency
//! histograms, recorded by the data-API server and exposed at `/stats`.

use parking_lot::RwLock;
use shareinsights_flowfile::ast::FlowFile;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What kind of platform operation an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// Flow file saved (a commit).
    Save,
    /// Compilation attempt.
    Compile,
    /// Batch execution (a "run" in figure 32's sense).
    Run,
    /// Dashboard opened / interaction session.
    Open,
    /// Fork of another dashboard.
    Fork,
}

/// One telemetry event.
#[derive(Debug, Clone)]
pub struct RunEvent {
    /// Dashboard name.
    pub dashboard: String,
    /// Operation.
    pub kind: RunKind,
    /// Success?
    pub success: bool,
    /// Error text when failed.
    pub error: Option<String>,
    /// Flow-file size in bytes at the time.
    pub flow_bytes: usize,
    /// Task types used (type name per task, with multiplicity).
    pub operators: Vec<String>,
    /// Widget types used (with multiplicity).
    pub widgets: Vec<String>,
    /// Monotonic sequence number.
    pub seq: u64,
}

/// Aggregated operator/widget usage — the figure-31 series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageCounts {
    /// operator (task type) -> occurrences.
    pub operators: BTreeMap<String, usize>,
    /// widget type -> occurrences.
    pub widgets: BTreeMap<String, usize>,
}

impl UsageCounts {
    /// Operators ranked by popularity (descending, name tiebreak).
    pub fn top_operators(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = self
            .operators
            .iter()
            .map(|(k, &c)| (k.as_str(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Widgets ranked by popularity.
    pub fn top_widgets(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> =
            self.widgets.iter().map(|(k, &c)| (k.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

/// Extract the operator/widget usage of one flow file.
pub fn usage_of(ff: &FlowFile) -> (Vec<String>, Vec<String>) {
    let operators = ff.tasks.iter().map(|t| t.task_type.clone()).collect();
    let widgets = ff.widgets.iter().map(|w| w.widget_type.clone()).collect();
    (operators, widgets)
}

/// The platform's append-only event log.
#[derive(Debug, Clone, Default)]
pub struct RunLog {
    events: Arc<RwLock<Vec<RunEvent>>>,
}

impl RunLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (sequence assigned).
    pub fn record(&self, mut event: RunEvent) {
        let mut events = self.events.write();
        event.seq = events.len() as u64 + 1;
        events.push(event);
    }

    /// Snapshot of all events.
    pub fn events(&self) -> Vec<RunEvent> {
        self.events.read().clone()
    }

    /// Number of events of a kind for a dashboard (figure 32's per-team run
    /// counts).
    pub fn count(&self, dashboard: &str, kind: RunKind) -> usize {
        self.events
            .read()
            .iter()
            .filter(|e| e.dashboard == dashboard && e.kind == kind)
            .count()
    }

    /// Usage aggregated over all successful compile/run events —
    /// regenerates figure 31.
    pub fn usage(&self) -> UsageCounts {
        let mut counts = UsageCounts::default();
        for e in self.events.read().iter() {
            if !e.success || !matches!(e.kind, RunKind::Run | RunKind::Open) {
                continue;
            }
            for op in &e.operators {
                *counts.operators.entry(op.clone()).or_default() += 1;
            }
            for w in &e.widgets {
                *counts.widgets.entry(w.clone()).or_default() += 1;
            }
        }
        counts
    }

    /// The flow-file byte sizes at each dashboard's *first* event — the
    /// figure-35 "fork to go" series when first events are forks.
    pub fn starting_sizes(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for e in self.events.read().iter() {
            out.entry(e.dashboard.clone()).or_insert(e.flow_bytes);
        }
        out
    }

    /// Error messages of failed events (observation 7's debugging data).
    pub fn errors(&self) -> Vec<(String, String)> {
        self.events
            .read()
            .iter()
            .filter_map(|e| {
                e.error
                    .as_ref()
                    .map(|msg| (e.dashboard.clone(), msg.clone()))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Serving-path metrics (per-route request observability)
// ---------------------------------------------------------------------------

/// Upper bounds (in microseconds) of the latency histogram buckets; the
/// last bucket is open-ended.
pub const LATENCY_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    5_000_000,
];

/// A fixed-bucket latency histogram with exact max tracking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample counts per bucket (one extra open-ended bucket at the end).
    pub buckets: [u64; LATENCY_BOUNDS_US.len() + 1],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (µs), for mean latency.
    pub total_us: u64,
    /// Largest single sample (µs).
    pub max_us: u64,
}

impl LatencyHistogram {
    /// Record one latency sample in microseconds.
    pub fn record(&mut self, us: u64) {
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-th sample, clamped to the observed max.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let bound = LATENCY_BOUNDS_US.get(i).copied().unwrap_or(self.max_us);
                return bound.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-route serving statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Requests dispatched to this route.
    pub count: u64,
    /// Non-2xx responses.
    pub errors: u64,
    /// Responses served from the query-result cache.
    pub cache_hits: u64,
    /// Cacheable requests that had to recompute.
    pub cache_misses: u64,
    /// Latency distribution.
    pub latency: LatencyHistogram,
}

/// Upper bounds of the requests-per-connection histogram buckets; the last
/// bucket is open-ended. A connection that served ≤ 1 request paid full
/// connect/teardown cost per request; the higher buckets are where
/// keep-alive amortizes it away.
pub const CONN_REQUESTS_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Connection-level serving statistics (the keep-alive view of the world,
/// complementing the per-request [`RouteStats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Connections handed to a worker.
    pub accepted: u64,
    /// Connections fully closed (their request counts are final).
    pub closed: u64,
    /// Closed connections that served two or more requests — i.e. where
    /// keep-alive actually saved a connect/teardown.
    pub reused: u64,
    /// Total requests served across closed connections.
    pub requests: u64,
    /// Connections closed because the client went quiet between requests.
    pub idle_timeouts: u64,
    /// Connections closed because the client stalled mid-request.
    pub io_timeouts: u64,
    /// Histogram of requests served per closed connection, bucketed by
    /// [`CONN_REQUESTS_BOUNDS`] (plus one open-ended bucket).
    pub requests_per_connection: [u64; CONN_REQUESTS_BOUNDS.len() + 1],
}

impl ConnectionStats {
    /// Fraction of requests that rode an already-open connection — the
    /// loadgen "reuse rate": `(requests - closed) / requests`.
    pub fn reuse_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.requests.saturating_sub(self.closed)) as f64 / self.requests as f64
    }
}

/// Per-operator engine execution statistics: how often each DAG operator
/// type ran, how many rows flowed through it, and its latency
/// distribution — the engine-side companion to [`RouteStats`], folded in
/// by the platform after every dashboard run or ad-hoc query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperatorStats {
    /// Task executions of this operator type.
    pub runs: u64,
    /// Total rows consumed.
    pub rows_in: u64,
    /// Total rows emitted.
    pub rows_out: u64,
    /// Per-execution latency distribution.
    pub latency: LatencyHistogram,
}

/// Index-acceleration statistics: how many per-column indexes were built
/// (and how long the builds took), and how query evaluations routed —
/// through an accelerated kernel (`covered`) or the scan path
/// (`fallback`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Per-column index builds (lazy, first use per column).
    pub builds: u64,
    /// Total time spent building indexes, in microseconds.
    pub build_us: u64,
    /// Query evaluations that ran through an accelerated kernel.
    pub covered: u64,
    /// Query evaluations that fell back to the scan path.
    pub fallback: u64,
}

/// Event-loop statistics from the epoll reactor serving mode: how many
/// connections the readiness loop is multiplexing, how often it wakes,
/// how much readiness each wakeup delivers, and how often socket-level
/// write backpressure forced an `EPOLLOUT` re-arm. All zeros under the
/// thread-per-connection mode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections currently registered with the event loop (gauge).
    pub registered: u64,
    /// High-water mark of `registered` over the process lifetime.
    pub peak_registered: u64,
    /// `epoll_wait` returns that delivered at least one event.
    pub wakeups: u64,
    /// Total readiness events delivered across all wakeups (divide by
    /// `wakeups` for the batching factor — higher means each wakeup
    /// amortizes over more ready connections).
    pub ready_events: u64,
    /// Times a partial write re-armed the connection for `EPOLLOUT`
    /// instead of blocking a thread (write backpressure).
    pub epollout_rearms: u64,
    /// Ready requests handed to the worker pool.
    pub dispatched: u64,
}

/// Continuous-execution (live flow) statistics: micro-batch ticks pushed
/// into streaming contexts, generation-delta frames fanned out to SSE
/// subscribers, and the backpressure outcomes — rows evicted from bounded
/// operator state and subscribers dropped for not draining their frame
/// queue. All zeros until a dashboard starts streaming.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Micro-batches pushed into streaming contexts.
    pub ticks: u64,
    /// Source rows ingested across all ticks.
    pub rows_in: u64,
    /// Rows evicted from bounded operator state (join build sides,
    /// append-only endpoint accumulations) to hold the memory cap.
    pub evicted_rows: u64,
    /// Generation-delta frames delivered to subscriber queues.
    pub frames_sent: u64,
    /// Total bytes of delivered frames (wire bytes, chunked framing
    /// included).
    pub frame_bytes: u64,
    /// Live SSE subscribers (gauge).
    pub subscribers: u64,
    /// High-water mark of `subscribers` over the process lifetime.
    pub peak_subscribers: u64,
    /// Subscribers dropped because their bounded frame queue overflowed
    /// (slow-reader backpressure).
    pub dropped_subscribers: u64,
}

/// SQL frontend statistics: parse/lower outcomes for the `POST
/// /:dashboard/ds/:dataset/sql` route and the malformed-query counter
/// both ad-hoc query languages share. All zeros until a SQL (or
/// malformed path) query arrives.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SqlStats {
    /// Successfully parsed + lowered SQL queries.
    pub queries: u64,
    /// Queries rejected with a diagnostic — SQL texts that failed to
    /// parse/lower *and* malformed path-segment query ops (both routes
    /// return the same structured 400 body).
    pub parse_errors: u64,
    /// SQL queries whose plan canonicalised to path-grammar segments and
    /// therefore shared cache entries with the path-segment route.
    pub path_shared: u64,
    /// Total parse + lower time across all SQL queries, µs.
    pub parse_us: u64,
    /// Queries answered from the prepared-statement cache (parse + lower
    /// skipped entirely — the statement text was seen before).
    pub prepared_hits: u64,
    /// Prepared statements evicted to hold the cache's entry/byte budget.
    pub prepared_evictions: u64,
}

/// Streaming-ingestion statistics: the `POST /dashboards/:n/ds/:ds/ingest`
/// pipeline that reads request bodies in bounded windows, decodes segments
/// on parallel workers, and merges warm column indexes instead of
/// rebuilding them. All zeros until the first ingest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Completed ingest requests (rows committed).
    pub requests: u64,
    /// Rows appended across all completed ingests.
    pub rows: u64,
    /// Body bytes consumed across all ingests (including aborted ones).
    pub bytes: u64,
    /// Record-aligned segments handed to decode workers.
    pub segments: u64,
    /// Total segment decode time across all workers, µs.
    pub decode_us: u64,
    /// Warm `IndexedTable` merges performed on append (vs. dropped and
    /// rebuilt cold).
    pub index_merges: u64,
    /// Total index merge time, µs.
    pub index_merge_us: u64,
    /// Ingests aborted before commit — decode errors, over-cap bodies,
    /// mid-body client disconnects. The endpoint stays unchanged.
    pub aborted: u64,
    /// Appends where the warm index *declined* the in-place merge (writer
    /// race or schema drift, e.g. a widened column) and the endpoint fell
    /// back to a lazy cold rebuild. Each one also emits an
    /// `ingest_cold_rebuild` event-log record naming the cause.
    pub cold_rebuilds: u64,
}

/// Sharded data-plane statistics: the router-side view of scatter/gather
/// execution across the in-process shard workers. All zeros until a
/// server is built `with_shards`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Configured shard workers (gauge; 0 = sharding disabled).
    pub workers: u64,
    /// Queries executed via scatter/gather.
    pub scatters: u64,
    /// Per-shard sub-queries dispatched (scatters × owning shards).
    pub subqueries: u64,
    /// Rows gathered from shard partial results.
    pub partial_rows: u64,
    /// Total merge (gather) time across all scatters, µs.
    pub gather_us: u64,
    /// Slice loads fanned out to workers (first touch or new generation).
    pub loads: u64,
    /// Rows shipped across all slice loads.
    pub load_rows: u64,
    /// Invalidations fanned out on append/publish/stream-push.
    pub invalidations: u64,
    /// Scatters that hit a stale worker generation (a concurrent
    /// invalidation) and succeeded after one reload + retry.
    pub stale_retries: u64,
    /// Shard-eligible queries served unsharded — plan not worth
    /// scattering, or the endpoint below the partition row floor.
    pub fallbacks: u64,
}

/// One shard worker's own counters, reported over the internal stats
/// frame and surfaced as the per-shard block under `/stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardWorkerStats {
    /// Shard id (dense, 0-based).
    pub shard: u64,
    /// Endpoint slices currently loaded (gauge).
    pub slices: u64,
    /// Rows across loaded slices (gauge).
    pub rows: u64,
    /// Sub-queries answered.
    pub queries: u64,
    /// Sub-queries answered from the worker's result cache.
    pub result_hits: u64,
    /// Sub-queries refused for a stale generation stamp (409).
    pub stale_rejects: u64,
    /// Total time spent handling frames, µs.
    pub busy_us: u64,
}

/// Self-scrape statistics: the telemetry-history scraper observing
/// itself. How many ticks ran, how many samples they appended/evicted,
/// and the total time spent scraping — so the overhead of
/// self-observation is itself visible at `/stats` and `/metrics`
/// (`shareinsights_selfscrape_*`). All zeros until a scraper is enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelfScrapeStats {
    /// Scrape ticks completed.
    pub scrapes: u64,
    /// Samples appended across all ticks.
    pub samples: u64,
    /// Samples evicted to hold per-family retention budgets.
    pub evicted: u64,
    /// Samples currently retained in the history ring (gauge).
    pub retained: u64,
    /// Total time spent scraping, µs.
    pub elapsed_us: u64,
}

/// Process-level gauges sampled from `/proc/self` on Linux (zeros where
/// the platform offers no cheap equivalent).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Resident set size in bytes.
    pub rss_bytes: u64,
    /// Open file descriptors.
    pub open_fds: u64,
    /// Live threads.
    pub threads: u64,
    /// Seconds since process telemetry came up.
    pub uptime_seconds: u64,
}

/// The instant process telemetry first came up, for the uptime gauge.
/// Touched by [`ApiMetrics::new`] so servers report near-process uptime.
fn process_epoch() -> std::time::Instant {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

/// Sample the process-level gauges. On Linux these read `/proc/self`
/// (statm for RSS, the fd directory, status for the thread count); other
/// platforms degrade gracefully to zeros, keeping the exposition shape.
pub fn process_stats() -> ProcessStats {
    let uptime_seconds = process_epoch().elapsed().as_secs();
    let mut stats = ProcessStats {
        uptime_seconds,
        ..ProcessStats::default()
    };
    #[cfg(target_os = "linux")]
    {
        if let Ok(statm) = std::fs::read_to_string("/proc/self/statm") {
            // statm: size resident shared text lib data dt (pages).
            if let Some(resident) = statm.split_whitespace().nth(1) {
                if let Ok(pages) = resident.parse::<u64>() {
                    stats.rss_bytes = pages * 4096;
                }
            }
        }
        if let Ok(dir) = std::fs::read_dir("/proc/self/fd") {
            stats.open_fds = dir.count() as u64;
        }
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("Threads:") {
                    stats.threads = rest.trim().parse().unwrap_or(0);
                    break;
                }
            }
        }
    }
    stats
}

/// Thread-safe per-route metrics registry for the serving path.
#[derive(Debug, Clone, Default)]
pub struct ApiMetrics {
    routes: Arc<RwLock<BTreeMap<String, RouteStats>>>,
    connections: Arc<RwLock<ConnectionStats>>,
    operators: Arc<RwLock<BTreeMap<String, OperatorStats>>>,
    index: Arc<RwLock<IndexStats>>,
    reactor: Arc<RwLock<ReactorStats>>,
    stream: Arc<RwLock<StreamStats>>,
    sql: Arc<RwLock<SqlStats>>,
    selfscrape: Arc<RwLock<SelfScrapeStats>>,
    ingest: Arc<RwLock<IngestStats>>,
    shard: Arc<RwLock<ShardStats>>,
}

impl ApiMetrics {
    /// Empty registry. Anchors the process-uptime epoch as a side effect,
    /// so servers report uptime from construction, not first scrape.
    pub fn new() -> Self {
        process_epoch();
        Self::default()
    }

    /// Record one served request: normalized route label, whether the
    /// response was 2xx, and the handling latency.
    pub fn record(&self, route: &str, ok: bool, latency_us: u64) {
        let mut routes = self.routes.write();
        let stats = routes.entry(route.to_string()).or_default();
        stats.count += 1;
        if !ok {
            stats.errors += 1;
        }
        stats.latency.record(latency_us);
    }

    /// Record a query-cache outcome for a route.
    pub fn record_cache(&self, route: &str, hit: bool) {
        let mut routes = self.routes.write();
        let stats = routes.entry(route.to_string()).or_default();
        if hit {
            stats.cache_hits += 1;
        } else {
            stats.cache_misses += 1;
        }
    }

    /// Record a connection handed to a worker.
    pub fn record_conn_accepted(&self) {
        self.connections.write().accepted += 1;
    }

    /// Record a connection closing after serving `requests` requests.
    pub fn record_conn_closed(&self, requests: u64) {
        let mut c = self.connections.write();
        c.closed += 1;
        c.requests += requests;
        if requests >= 2 {
            c.reused += 1;
        }
        let idx = CONN_REQUESTS_BOUNDS
            .iter()
            .position(|&b| requests <= b)
            .unwrap_or(CONN_REQUESTS_BOUNDS.len());
        c.requests_per_connection[idx] += 1;
    }

    /// Record a keep-alive connection closed for idling between requests.
    pub fn record_idle_timeout(&self) {
        self.connections.write().idle_timeouts += 1;
    }

    /// Record a connection closed for stalling mid-request.
    pub fn record_io_timeout(&self) {
        self.connections.write().io_timeouts += 1;
    }

    /// Snapshot of the connection-level counters.
    pub fn connections(&self) -> ConnectionStats {
        self.connections.read().clone()
    }

    /// Record one engine operator execution: operator type name, rows
    /// consumed/emitted, and elapsed time.
    pub fn record_operator(&self, operator: &str, rows_in: u64, rows_out: u64, elapsed_us: u64) {
        let mut operators = self.operators.write();
        let stats = operators.entry(operator.to_string()).or_default();
        stats.runs += 1;
        stats.rows_in += rows_in;
        stats.rows_out += rows_out;
        stats.latency.record(elapsed_us);
    }

    /// Snapshot of every operator type's stats.
    pub fn operators(&self) -> BTreeMap<String, OperatorStats> {
        self.operators.read().clone()
    }

    /// Record one lazy per-column index build taking `build_us`
    /// microseconds.
    pub fn record_index_build(&self, build_us: u64) {
        let mut ix = self.index.write();
        ix.builds += 1;
        ix.build_us += build_us;
    }

    /// Record how one query evaluation routed: accelerated (`covered`) or
    /// scan (`fallback`).
    pub fn record_index_eval(&self, covered: bool) {
        let mut ix = self.index.write();
        if covered {
            ix.covered += 1;
        } else {
            ix.fallback += 1;
        }
    }

    /// Snapshot of the index-acceleration counters.
    pub fn index(&self) -> IndexStats {
        self.index.read().clone()
    }

    /// Record a connection registered with the reactor's event loop.
    pub fn record_reactor_register(&self) {
        let mut r = self.reactor.write();
        r.registered += 1;
        r.peak_registered = r.peak_registered.max(r.registered);
    }

    /// Record a connection deregistered from the reactor's event loop.
    pub fn record_reactor_deregister(&self) {
        let mut r = self.reactor.write();
        r.registered = r.registered.saturating_sub(1);
    }

    /// Record one `epoll_wait` wakeup that delivered `ready` events.
    pub fn record_reactor_wakeup(&self, ready: u64) {
        let mut r = self.reactor.write();
        r.wakeups += 1;
        r.ready_events += ready;
    }

    /// Record a write-backpressure `EPOLLOUT` re-arm.
    pub fn record_reactor_rearm(&self) {
        self.reactor.write().epollout_rearms += 1;
    }

    /// Record a ready request dispatched to the reactor's worker pool.
    pub fn record_reactor_dispatch(&self) {
        self.reactor.write().dispatched += 1;
    }

    /// Snapshot of the reactor event-loop counters.
    pub fn reactor(&self) -> ReactorStats {
        self.reactor.read().clone()
    }

    /// Record one streaming micro-batch tick: source rows ingested and
    /// rows evicted from bounded operator state to absorb it.
    pub fn record_stream_tick(&self, rows_in: u64, evicted_rows: u64) {
        let mut s = self.stream.write();
        s.ticks += 1;
        s.rows_in += rows_in;
        s.evicted_rows += evicted_rows;
    }

    /// Record generation-delta frames delivered to subscriber queues.
    pub fn record_stream_frames(&self, frames: u64, bytes: u64) {
        let mut s = self.stream.write();
        s.frames_sent += frames;
        s.frame_bytes += bytes;
    }

    /// Record a new SSE subscriber.
    pub fn record_stream_subscribe(&self) {
        let mut s = self.stream.write();
        s.subscribers += 1;
        s.peak_subscribers = s.peak_subscribers.max(s.subscribers);
    }

    /// Record a subscriber going away (disconnect or drop).
    pub fn record_stream_unsubscribe(&self) {
        let mut s = self.stream.write();
        s.subscribers = s.subscribers.saturating_sub(1);
    }

    /// Record a subscriber dropped for slow-reader backpressure.
    pub fn record_stream_dropped(&self) {
        self.stream.write().dropped_subscribers += 1;
    }

    /// Snapshot of the continuous-execution counters.
    pub fn stream(&self) -> StreamStats {
        self.stream.read().clone()
    }

    /// Record one successfully parsed + lowered SQL query.
    pub fn record_sql_query(&self, parse_us: u64, path_shared: bool) {
        let mut s = self.sql.write();
        s.queries += 1;
        s.parse_us += parse_us;
        if path_shared {
            s.path_shared += 1;
        }
    }

    /// Record a malformed ad-hoc query (either language) rejected with a
    /// structured parse diagnostic.
    pub fn record_sql_parse_error(&self) {
        self.sql.write().parse_errors += 1;
    }

    /// Record a SQL query answered from the prepared-statement cache.
    pub fn record_sql_prepared_hit(&self) {
        self.sql.write().prepared_hits += 1;
    }

    /// Record prepared statements evicted to hold the cache budget.
    pub fn record_sql_prepared_evictions(&self, evicted: u64) {
        self.sql.write().prepared_evictions += evicted;
    }

    /// Snapshot of the SQL frontend counters.
    pub fn sql(&self) -> SqlStats {
        self.sql.read().clone()
    }

    /// Record one record-aligned segment decoded by an ingest worker.
    pub fn record_ingest_segment(&self, bytes: u64, decode_us: u64) {
        let mut s = self.ingest.write();
        s.segments += 1;
        s.bytes += bytes;
        s.decode_us += decode_us;
    }

    /// Record a committed ingest: rows appended, and whether the warm
    /// index was merged in place (with the merge time) or left cold.
    pub fn record_ingest_commit(&self, rows: u64, index_merged: bool, merge_us: u64) {
        let mut s = self.ingest.write();
        s.requests += 1;
        s.rows += rows;
        if index_merged {
            s.index_merges += 1;
            s.index_merge_us += merge_us;
        }
    }

    /// Record an ingest aborted before commit (decode error, over-cap
    /// body, or mid-body disconnect) — the endpoint stays unchanged.
    pub fn record_ingest_abort(&self) {
        self.ingest.write().aborted += 1;
    }

    /// Record an append whose warm index declined the in-place merge and
    /// fell back to a lazy cold rebuild.
    pub fn record_ingest_cold_rebuild(&self) {
        self.ingest.write().cold_rebuilds += 1;
    }

    /// Snapshot of the streaming-ingestion counters.
    pub fn ingest(&self) -> IngestStats {
        self.ingest.read().clone()
    }

    /// Record the configured shard-worker count (gauge).
    pub fn record_shard_workers(&self, workers: u64) {
        self.shard.write().workers = workers;
    }

    /// Record one scatter/gather execution: sub-queries dispatched, rows
    /// gathered from partials, and time spent merging.
    pub fn record_shard_scatter(&self, subqueries: u64, partial_rows: u64, gather_us: u64) {
        let mut s = self.shard.write();
        s.scatters += 1;
        s.subqueries += subqueries;
        s.partial_rows += partial_rows;
        s.gather_us += gather_us;
    }

    /// Record slice loads fanned out to workers.
    pub fn record_shard_load(&self, loads: u64, rows: u64) {
        let mut s = self.shard.write();
        s.loads += loads;
        s.load_rows += rows;
    }

    /// Record an invalidation fanned out to all workers.
    pub fn record_shard_invalidation(&self) {
        self.shard.write().invalidations += 1;
    }

    /// Record a scatter that hit a stale worker generation and succeeded
    /// after one reload + retry.
    pub fn record_shard_stale_retry(&self) {
        self.shard.write().stale_retries += 1;
    }

    /// Record a shard-eligible query served unsharded.
    pub fn record_shard_fallback(&self) {
        self.shard.write().fallbacks += 1;
    }

    /// Snapshot of the sharded data-plane counters.
    pub fn shard(&self) -> ShardStats {
        self.shard.read().clone()
    }

    /// Record one telemetry-history scrape tick: samples appended and
    /// evicted, samples now retained, and time spent scraping.
    pub fn record_selfscrape(&self, samples: u64, evicted: u64, retained: u64, elapsed_us: u64) {
        let mut s = self.selfscrape.write();
        s.scrapes += 1;
        s.samples += samples;
        s.evicted += evicted;
        s.retained = retained;
        s.elapsed_us += elapsed_us;
    }

    /// Snapshot of the self-scrape counters.
    pub fn selfscrape(&self) -> SelfScrapeStats {
        self.selfscrape.read().clone()
    }

    /// Snapshot of every route's stats.
    pub fn snapshot(&self) -> BTreeMap<String, RouteStats> {
        self.routes.read().clone()
    }

    /// Aggregate cache hits/misses across all routes.
    pub fn cache_totals(&self) -> (u64, u64) {
        let routes = self.routes.read();
        routes
            .values()
            .fold((0, 0), |(h, m), s| (h + s.cache_hits, m + s.cache_misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_flowfile::parse_flow_file;

    fn event(dash: &str, kind: RunKind, ops: &[&str], widgets: &[&str], bytes: usize) -> RunEvent {
        RunEvent {
            dashboard: dash.into(),
            kind,
            success: true,
            error: None,
            flow_bytes: bytes,
            operators: ops.iter().map(|s| s.to_string()).collect(),
            widgets: widgets.iter().map(|s| s.to_string()).collect(),
            seq: 0,
        }
    }

    #[test]
    fn usage_aggregates_runs_only() {
        let log = RunLog::new();
        log.record(event(
            "t1",
            RunKind::Run,
            &["groupby", "filter_by"],
            &["WordCloud"],
            100,
        ));
        log.record(event(
            "t2",
            RunKind::Run,
            &["groupby"],
            &["WordCloud", "Slider"],
            200,
        ));
        log.record(event("t2", RunKind::Save, &["join"], &[], 200)); // ignored
        let mut failed = event("t3", RunKind::Run, &["join"], &[], 50);
        failed.success = false;
        failed.error = Some("boom".into());
        log.record(failed); // ignored in usage, shows in errors

        let usage = log.usage();
        assert_eq!(usage.operators.get("groupby"), Some(&2));
        assert_eq!(usage.operators.get("join"), None);
        assert_eq!(usage.top_widgets()[0], ("WordCloud", 2));
        assert_eq!(log.errors(), vec![("t3".to_string(), "boom".to_string())]);
    }

    #[test]
    fn counts_and_starting_sizes() {
        let log = RunLog::new();
        log.record(event("team5", RunKind::Fork, &[], &[], 1500));
        log.record(event("team5", RunKind::Run, &[], &[], 1800));
        log.record(event("team5", RunKind::Run, &[], &[], 2500));
        assert_eq!(log.count("team5", RunKind::Run), 2);
        assert_eq!(log.count("team5", RunKind::Fork), 1);
        assert_eq!(log.starting_sizes().get("team5"), Some(&1500));
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.events()[2].seq, 3);
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [40, 60, 90, 200, 400, 900, 2_000, 4_000, 9_000, 20_000] {
            h.record(us);
        }
        assert_eq!(h.count, 10);
        assert_eq!(h.max_us, 20_000);
        // p50 falls in the bucket holding the 5th sample (400 → ≤500).
        assert_eq!(h.quantile_us(0.5), 500);
        // p95+ land in the last occupied bucket, clamped to max.
        assert_eq!(h.quantile_us(0.95), 20_000);
        assert_eq!(h.quantile_us(1.0), 20_000);
        assert_eq!(h.mean_us(), 3_669);
        // One huge sample lands in the open-ended bucket.
        h.record(10_000_000);
        assert_eq!(h.quantile_us(1.0), 10_000_000);
    }

    #[test]
    fn api_metrics_accumulate_per_route() {
        let m = ApiMetrics::new();
        m.record("GET /:dashboard/ds/:dataset/query", true, 120);
        m.record("GET /:dashboard/ds/:dataset/query", false, 80);
        m.record("GET /dashboards", true, 30);
        m.record_cache("GET /:dashboard/ds/:dataset/query", true);
        m.record_cache("GET /:dashboard/ds/:dataset/query", false);
        let snap = m.snapshot();
        let q = &snap["GET /:dashboard/ds/:dataset/query"];
        assert_eq!(q.count, 2);
        assert_eq!(q.errors, 1);
        assert_eq!(q.cache_hits, 1);
        assert_eq!(q.cache_misses, 1);
        assert_eq!(snap["GET /dashboards"].count, 1);
        assert_eq!(m.cache_totals(), (1, 1));
    }

    #[test]
    fn operator_metrics_accumulate_per_type() {
        let m = ApiMetrics::new();
        m.record_operator("groupby", 1000, 10, 250);
        m.record_operator("groupby", 2000, 20, 750);
        m.record_operator("filter_by", 500, 400, 90);
        let ops = m.operators();
        assert_eq!(ops.len(), 2);
        let g = &ops["groupby"];
        assert_eq!(g.runs, 2);
        assert_eq!(g.rows_in, 3000);
        assert_eq!(g.rows_out, 30);
        assert_eq!(g.latency.count, 2);
        assert_eq!(g.latency.max_us, 750);
        assert_eq!(ops["filter_by"].runs, 1);
    }

    #[test]
    fn index_metrics_accumulate() {
        let m = ApiMetrics::new();
        assert_eq!(m.index(), IndexStats::default());
        m.record_index_build(120);
        m.record_index_build(80);
        m.record_index_eval(true);
        m.record_index_eval(true);
        m.record_index_eval(false);
        let ix = m.index();
        assert_eq!(ix.builds, 2);
        assert_eq!(ix.build_us, 200);
        assert_eq!(ix.covered, 2);
        assert_eq!(ix.fallback, 1);
    }

    #[test]
    fn reactor_metrics_accumulate() {
        let m = ApiMetrics::new();
        assert_eq!(m.reactor(), ReactorStats::default());
        m.record_reactor_register();
        m.record_reactor_register();
        m.record_reactor_register();
        m.record_reactor_deregister();
        m.record_reactor_wakeup(2);
        m.record_reactor_wakeup(5);
        m.record_reactor_rearm();
        m.record_reactor_dispatch();
        m.record_reactor_dispatch();
        let r = m.reactor();
        assert_eq!(r.registered, 2);
        assert_eq!(r.peak_registered, 3);
        assert_eq!(r.wakeups, 2);
        assert_eq!(r.ready_events, 7);
        assert_eq!(r.epollout_rearms, 1);
        assert_eq!(r.dispatched, 2);
        // Deregister never underflows.
        m.record_reactor_deregister();
        m.record_reactor_deregister();
        m.record_reactor_deregister();
        assert_eq!(m.reactor().registered, 0);
    }

    #[test]
    fn stream_metrics_accumulate() {
        let m = ApiMetrics::new();
        assert_eq!(m.stream(), StreamStats::default());
        m.record_stream_subscribe();
        m.record_stream_subscribe();
        m.record_stream_subscribe();
        m.record_stream_unsubscribe();
        m.record_stream_tick(100, 0);
        m.record_stream_tick(50, 25);
        m.record_stream_frames(2, 4096);
        m.record_stream_frames(1, 1024);
        m.record_stream_dropped();
        let s = m.stream();
        assert_eq!(s.subscribers, 2);
        assert_eq!(s.peak_subscribers, 3);
        assert_eq!(s.ticks, 2);
        assert_eq!(s.rows_in, 150);
        assert_eq!(s.evicted_rows, 25);
        assert_eq!(s.frames_sent, 3);
        assert_eq!(s.frame_bytes, 5120);
        assert_eq!(s.dropped_subscribers, 1);
        // Unsubscribe never underflows.
        m.record_stream_unsubscribe();
        m.record_stream_unsubscribe();
        m.record_stream_unsubscribe();
        assert_eq!(m.stream().subscribers, 0);
    }

    #[test]
    fn sql_metrics_accumulate() {
        let m = ApiMetrics::new();
        assert_eq!(m.sql(), SqlStats::default());
        m.record_sql_query(120, true);
        m.record_sql_query(80, false);
        m.record_sql_parse_error();
        m.record_sql_parse_error();
        m.record_sql_parse_error();
        let s = m.sql();
        assert_eq!(s.queries, 2);
        assert_eq!(s.parse_us, 200);
        assert_eq!(s.path_shared, 1);
        assert_eq!(s.parse_errors, 3);
    }

    #[test]
    fn ingest_metrics_accumulate() {
        let m = ApiMetrics::new();
        assert_eq!(m.ingest(), IngestStats::default());
        m.record_ingest_segment(1024, 50);
        m.record_ingest_segment(512, 30);
        m.record_ingest_commit(2000, true, 400);
        m.record_ingest_commit(10, false, 0);
        m.record_ingest_abort();
        m.record_sql_prepared_hit();
        let s = m.ingest();
        assert_eq!(s.segments, 2);
        assert_eq!(s.bytes, 1536);
        assert_eq!(s.decode_us, 80);
        assert_eq!(s.requests, 2);
        assert_eq!(s.rows, 2010);
        assert_eq!(s.index_merges, 1);
        assert_eq!(s.index_merge_us, 400);
        assert_eq!(s.aborted, 1);
        assert_eq!(m.sql().prepared_hits, 1);
    }

    #[test]
    fn selfscrape_metrics_accumulate() {
        let m = ApiMetrics::new();
        assert_eq!(m.selfscrape(), SelfScrapeStats::default());
        m.record_selfscrape(40, 0, 40, 120);
        m.record_selfscrape(40, 10, 70, 80);
        let s = m.selfscrape();
        assert_eq!(s.scrapes, 2);
        assert_eq!(s.samples, 80);
        assert_eq!(s.evicted, 10);
        assert_eq!(s.retained, 70, "retained is a gauge, not a sum");
        assert_eq!(s.elapsed_us, 200);
    }

    #[test]
    fn process_stats_populated_on_linux() {
        let p = process_stats();
        if cfg!(target_os = "linux") {
            assert!(p.rss_bytes > 0, "{p:?}");
            assert!(p.open_fds > 0, "{p:?}");
            assert!(p.threads > 0, "{p:?}");
        }
    }

    #[test]
    fn connection_metrics_accumulate() {
        let m = ApiMetrics::new();
        assert_eq!(m.connections().reuse_rate(), 0.0, "no requests yet");
        m.record_conn_accepted();
        m.record_conn_accepted();
        m.record_conn_accepted();
        m.record_conn_closed(1);
        m.record_conn_closed(5);
        m.record_idle_timeout();
        m.record_conn_closed(200);
        m.record_io_timeout();
        let c = m.connections();
        assert_eq!(c.accepted, 3);
        assert_eq!(c.closed, 3);
        assert_eq!(c.reused, 2, "the 5- and 200-request connections");
        assert_eq!(c.requests, 206);
        assert_eq!(c.idle_timeouts, 1);
        assert_eq!(c.io_timeouts, 1);
        // 1 → bucket ≤1; 5 → bucket ≤8; 200 → open-ended bucket.
        assert_eq!(c.requests_per_connection[0], 1);
        assert_eq!(c.requests_per_connection[3], 1);
        assert_eq!(c.requests_per_connection[CONN_REQUESTS_BOUNDS.len()], 1);
        let rate = c.reuse_rate();
        assert!((rate - (206.0 - 3.0) / 206.0).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn usage_of_flowfile() {
        let ff = parse_flow_file(
            "t",
            "T:\n  a:\n    type: groupby\n    groupby: [x]\n  b:\n    type: filter_by\n    filter_expression: x > 1\nW:\n  w:\n    type: WordCloud\n    source: D.d\n    text: x\n    size: y\n",
        )
        .unwrap();
        let (ops, widgets) = usage_of(&ff);
        assert_eq!(ops, vec!["groupby", "filter_by"]);
        assert_eq!(widgets, vec!["WordCloud"]);
    }
}
