//! Dataset discovery — §6 future work, implemented: "Since data is
//! published on the platform, it potentially allows for discovery of
//! data-sets to enrich an existing data pipeline."
//!
//! Given a data object's schema, [`suggest_enrichments`] ranks every
//! published shared object by join compatibility: shared column names
//! (candidate join keys) weighted by whether the key looks unique on the
//! published side (a clean dimension join) and by how many *new* columns
//! the enrichment would add.

use crate::meta::profile_table;
use shareinsights_collab::PublishRegistry;
use shareinsights_tabular::Schema;
use std::collections::BTreeSet;

/// One enrichment suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Enrichment {
    /// Published object name (`D.<name>` usable directly in a flow).
    pub publish_name: String,
    /// Producing dashboard (provenance).
    pub producer: String,
    /// Columns shared with the query schema — candidate join keys.
    pub join_keys: Vec<String>,
    /// Columns the join would add.
    pub new_columns: Vec<String>,
    /// True when some join key is unique on the published side (safe
    /// dimension-style left join; no fan-out).
    pub key_is_unique: bool,
    /// Ranking score.
    pub score: f64,
}

impl Enrichment {
    /// A ready-to-paste join task snippet for the flow file.
    pub fn task_snippet(&self, local_object: &str) -> String {
        let key = self
            .join_keys
            .first()
            .map(String::as_str)
            .unwrap_or("<key>");
        format!(
            "  enrich_with_{name}:\n    type: join\n    left: {local} by {key}\n    right: {name} by {key}\n    join_condition: left outer\n",
            name = self.publish_name,
            local = local_object,
        )
    }
}

/// Rank published objects by how well they could enrich `schema`.
///
/// `exclude_producer` omits a dashboard's own publications (you don't
/// enrich a pipeline with its own outputs).
pub fn suggest_enrichments(
    schema: &Schema,
    registry: &PublishRegistry,
    exclude_producer: Option<&str>,
) -> Vec<Enrichment> {
    let local: BTreeSet<&str> = schema.names().into_iter().collect();
    let mut out = Vec::new();
    for name in registry.names() {
        let Some(shared) = registry.get(&name) else {
            continue;
        };
        if exclude_producer == Some(shared.producer.as_str()) {
            continue;
        }
        let shared_cols: Vec<String> = shared
            .schema
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let join_keys: Vec<String> = shared_cols
            .iter()
            .filter(|c| local.contains(c.as_str()))
            .cloned()
            .collect();
        if join_keys.is_empty() {
            continue;
        }
        let new_columns: Vec<String> = shared_cols
            .iter()
            .filter(|c| !local.contains(c.as_str()))
            .cloned()
            .collect();
        if new_columns.is_empty() {
            continue; // nothing gained
        }
        // Key uniqueness: check the snapshot when available.
        let key_is_unique = shared
            .snapshot
            .as_ref()
            .map(|t| {
                let profiles = profile_table(&name, t);
                join_keys.iter().any(|k| {
                    profiles
                        .iter()
                        .any(|p| &p.column == k && p.looks_like_key())
                })
            })
            .unwrap_or(false);
        let score = new_columns.len() as f64
            + join_keys.len() as f64 * 0.5
            + if key_is_unique { 2.0 } else { 0.0 };
        out.push(Enrichment {
            publish_name: name,
            producer: shared.producer,
            join_keys,
            new_columns,
            key_is_unique,
            score,
        });
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.publish_name.cmp(&b.publish_name))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::{row, DataType, Table};

    fn registry() -> PublishRegistry {
        let reg = PublishRegistry::new();
        // A clean dimension: unique team key, adds 2 columns.
        reg.publish(
            "dim_teams",
            "ipl_processing",
            "dim_teams",
            Schema::of(&[
                ("team", DataType::Utf8),
                ("team_fullName", DataType::Utf8),
                ("color", DataType::Utf8),
            ]),
            Some(
                Table::from_rows(
                    &["team", "team_fullName", "color"],
                    &[
                        row!["CSK", "Chennai Super Kings", "#f9cd05"],
                        row!["MI", "Mumbai Indians", "#004ba0"],
                    ],
                )
                .unwrap(),
            ),
        )
        .unwrap();
        // A fact table sharing 'team' but non-unique.
        reg.publish(
            "team_tweets",
            "ipl_processing",
            "team_tweets",
            Schema::of(&[
                ("date", DataType::Utf8),
                ("team", DataType::Utf8),
                ("noOfTweets", DataType::Int64),
            ]),
            Some(
                Table::from_rows(
                    &["date", "team", "noOfTweets"],
                    &[row!["d1", "CSK", 3i64], row!["d2", "CSK", 5i64]],
                )
                .unwrap(),
            ),
        )
        .unwrap();
        // Unrelated object: no shared columns.
        reg.publish(
            "tickets",
            "service_desk",
            "tickets",
            Schema::of(&[("ticket_id", DataType::Utf8)]),
            None,
        )
        .unwrap();
        reg
    }

    #[test]
    fn ranks_clean_dimension_joins_first() {
        let my_schema = Schema::of(&[("team", DataType::Utf8), ("score", DataType::Int64)]);
        let suggestions = suggest_enrichments(&my_schema, &registry(), None);
        assert_eq!(suggestions.len(), 2, "tickets excluded (no shared columns)");
        assert_eq!(suggestions[0].publish_name, "dim_teams");
        assert!(suggestions[0].key_is_unique);
        assert_eq!(suggestions[0].join_keys, vec!["team"]);
        assert_eq!(suggestions[0].new_columns, vec!["team_fullName", "color"]);
        assert_eq!(suggestions[1].publish_name, "team_tweets");
        assert!(!suggestions[1].key_is_unique);
    }

    #[test]
    fn excludes_own_producer_and_no_gain() {
        let my_schema = Schema::of(&[("team", DataType::Utf8)]);
        let all = suggest_enrichments(&my_schema, &registry(), None);
        let filtered = suggest_enrichments(&my_schema, &registry(), Some("ipl_processing"));
        assert!(all.len() > filtered.len());
        assert!(filtered.is_empty());

        // An object whose columns are a subset of ours adds nothing.
        let wide = Schema::of(&[
            ("team", DataType::Utf8),
            ("team_fullName", DataType::Utf8),
            ("color", DataType::Utf8),
        ]);
        let s = suggest_enrichments(&wide, &registry(), None);
        assert!(s.iter().all(|e| e.publish_name != "dim_teams"));
    }

    #[test]
    fn snippet_is_valid_flowfile_syntax() {
        let my_schema = Schema::of(&[("team", DataType::Utf8), ("n", DataType::Int64)]);
        let s = suggest_enrichments(&my_schema, &registry(), None);
        let snippet = s[0].task_snippet("my_data");
        let src = format!("T:\n{snippet}");
        let ff = shareinsights_flowfile::parse_flow_file("t", &src).unwrap();
        assert_eq!(ff.tasks[0].task_type, "join");
    }
}
