//! End-to-end request tracing: spans, a bounded trace ring, and a
//! structured JSON-lines event log.
//!
//! The serving path opens one *root span* per HTTP request (reusing a
//! caller-supplied trace id from the `X-Trace-Id` header when present) and
//! hangs child spans off it — router dispatch, cache lookup, query
//! evaluation, and one span per executed DAG operator. Completed traces
//! land in a bounded ring buffer inside [`Tracer`], cheap enough to leave
//! on in production: one atomic fetch-add on the sampling counter per
//! untraced request, and a single short mutex hold per *finished span* on
//! traced ones. A sampling knob ([`Tracer::set_sample_one_in`]) thins
//! generated traces under load; explicitly propagated trace ids are always
//! honored while tracing is enabled, so a client can force a trace of its
//! own request.
//!
//! [`EventLog`] is the companion structured log: newline-delimited JSON
//! objects (`slow_request`, `error` events) carrying the trace id, so logs
//! and traces cross-reference.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Parse a hex trace id (1–16 hex digits, case-insensitive) as sent in
    /// an `X-Trace-Id` header. Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// Integer attribute (row counts, byte counts, status codes…).
    Int(i64),
    /// String attribute (route, path, operator type…).
    Str(String),
}

impl AttrValue {
    /// Render as a JSON value fragment.
    pub fn to_json(&self) -> String {
        match self {
            AttrValue::Int(n) => n.to_string(),
            AttrValue::Str(s) => format!("\"{}\"", escape_json(s)),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Escape a string for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finished span within a trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id, unique within the trace (root is 1).
    pub id: u64,
    /// Parent span id; 0 for the root span.
    pub parent: u64,
    /// Human-readable name (route label, operator name…).
    pub name: String,
    /// Start offset in microseconds from the trace epoch (root start).
    pub start_us: u64,
    /// Duration in microseconds.
    pub elapsed_us: u64,
    /// Typed attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One completed trace: every finished span, in finish order.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The trace id.
    pub trace_id: TraceId,
    /// Finished spans (root is the one with `parent == 0`).
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// The root span, if it was recorded.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent == 0)
    }

    /// Direct children of a span, sorted by start offset then id.
    pub fn children_of(&self, id: u64) -> Vec<&SpanRecord> {
        let mut v: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent == id && s.id != id)
            .collect();
        v.sort_by_key(|s| (s.start_us, s.id));
        v
    }

    /// Total duration: the root span's elapsed time (0 if no root).
    pub fn duration_us(&self) -> u64 {
        self.root().map(|r| r.elapsed_us).unwrap_or(0)
    }
}

/// Shared mutable state of one in-flight trace.
struct ActiveTrace {
    id: TraceId,
    epoch: Instant,
    next_span: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A live span handle. Child spans are created with [`Span::child`]; the
/// span records itself when [`Span::finish`]ed or dropped. Finishing the
/// *root* span seals the trace and publishes it to the [`Tracer`] ring —
/// children finished after their root are silently discarded.
pub struct Span {
    trace: Arc<ActiveTrace>,
    /// Present only on the root span: the sink that receives the sealed trace.
    sink: Option<Tracer>,
    id: u64,
    parent: u64,
    name: String,
    start_us: u64,
    started: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
    finished: bool,
}

impl Span {
    /// The id of the trace this span belongs to.
    pub fn trace_id(&self) -> TraceId {
        self.trace.id
    }

    /// Microseconds elapsed since the trace epoch (root span start).
    pub fn now_offset_us(&self) -> u64 {
        self.trace.epoch.elapsed().as_micros() as u64
    }

    /// This span's own start offset from the trace epoch.
    pub fn start_offset_us(&self) -> u64 {
        self.start_us
    }

    /// Attach (or append) a typed attribute.
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        self.attrs.push((key, value.into()));
    }

    /// Open a child span starting now.
    pub fn child(&self, name: &str) -> Span {
        let id = self.trace.next_span.fetch_add(1, Ordering::Relaxed);
        Span {
            trace: Arc::clone(&self.trace),
            sink: None,
            id,
            parent: self.id,
            name: name.to_string(),
            start_us: self.now_offset_us(),
            started: Instant::now(),
            attrs: Vec::new(),
            finished: false,
        }
    }

    /// Record a child span *post hoc* from externally measured timings —
    /// used to graft the engine's per-operator stats (measured inside
    /// `Executor::execute`) into the request trace without threading span
    /// handles through the engine crate.
    pub fn child_at(
        &self,
        name: &str,
        start_us: u64,
        elapsed_us: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        let id = self.trace.next_span.fetch_add(1, Ordering::Relaxed);
        self.trace.spans.lock().push(SpanRecord {
            id,
            parent: self.id,
            name: name.to_string(),
            start_us,
            elapsed_us,
            attrs,
        });
    }

    /// Finish the span now, recording its duration. Root spans seal the
    /// trace. Dropping an unfinished span finishes it implicitly.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            elapsed_us: self.started.elapsed().as_micros() as u64,
            attrs: std::mem::take(&mut self.attrs),
        };
        let mut guard = self.trace.spans.lock();
        guard.push(record);
        if let Some(sink) = self.sink.take() {
            let spans = std::mem::take(&mut *guard);
            drop(guard);
            sink.complete(TraceRecord {
                trace_id: self.trace.id,
                spans,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("trace_id", &self.trace.id)
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

/// Default capacity of the completed-trace ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

struct TracerInner {
    /// 0 disables tracing entirely; N samples one generated trace in N.
    sample_one_in: AtomicU64,
    /// Requests seen by the sampler (generated-id path only).
    seen: AtomicU64,
    /// Next generated trace id.
    next_id: AtomicU64,
    /// Ring capacity.
    capacity: AtomicUsize,
    /// Completed traces, oldest first.
    completed: Mutex<VecDeque<TraceRecord>>,
}

/// The trace registry: starts root spans (subject to sampling) and retains
/// the last N completed traces in a bounded ring. Cloning shares state.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity())
            .field("sample_one_in", &self.sample_one_in())
            .finish()
    }
}

impl Tracer {
    /// A tracer sampling every request, retaining
    /// [`DEFAULT_TRACE_CAPACITY`] completed traces.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracer with an explicit ring capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                sample_one_in: AtomicU64::new(1),
                seen: AtomicU64::new(0),
                next_id: AtomicU64::new(1),
                capacity: AtomicUsize::new(capacity.max(1)),
                completed: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// The sampling knob: 0 = tracing off, N = keep one generated trace in
    /// N. Explicit (client-propagated) trace ids bypass the 1-in-N thinning
    /// but are still dropped at 0.
    pub fn set_sample_one_in(&self, n: u64) {
        self.inner.sample_one_in.store(n, Ordering::Relaxed);
    }

    /// Current sampling setting.
    pub fn sample_one_in(&self) -> u64 {
        self.inner.sample_one_in.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity.load(Ordering::Relaxed)
    }

    /// Resize the ring (min 1); excess oldest traces are evicted lazily on
    /// the next completion.
    pub fn set_capacity(&self, capacity: usize) {
        self.inner
            .capacity
            .store(capacity.max(1), Ordering::Relaxed);
    }

    /// Start a root span, or `None` when sampled out. `explicit` carries a
    /// client-propagated trace id (always traced while tracing is enabled);
    /// otherwise an id is generated and the 1-in-N sampler applies.
    pub fn start_trace(&self, name: &str, explicit: Option<TraceId>) -> Option<Span> {
        let n = self.inner.sample_one_in.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        let id = match explicit {
            Some(id) => id,
            None => {
                let seen = self.inner.seen.fetch_add(1, Ordering::Relaxed);
                if !seen.is_multiple_of(n) {
                    return None;
                }
                TraceId(self.inner.next_id.fetch_add(1, Ordering::Relaxed))
            }
        };
        let trace = Arc::new(ActiveTrace {
            id,
            epoch: Instant::now(),
            next_span: AtomicU64::new(2),
            spans: Mutex::new(Vec::new()),
        });
        Some(Span {
            trace,
            sink: Some(self.clone()),
            id: 1,
            parent: 0,
            name: name.to_string(),
            start_us: 0,
            started: Instant::now(),
            attrs: Vec::new(),
            finished: false,
        })
    }

    /// The last `limit` completed traces, newest first.
    pub fn recent(&self, limit: usize) -> Vec<TraceRecord> {
        let completed = self.inner.completed.lock();
        completed.iter().rev().take(limit).cloned().collect()
    }

    /// Find a completed trace by id (newest match wins).
    pub fn find(&self, id: TraceId) -> Option<TraceRecord> {
        let completed = self.inner.completed.lock();
        completed.iter().rev().find(|t| t.trace_id == id).cloned()
    }

    /// Number of completed traces currently retained.
    pub fn len(&self) -> usize {
        self.inner.completed.lock().len()
    }

    /// True when no completed traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn complete(&self, record: TraceRecord) {
        let capacity = self.capacity();
        let mut completed = self.inner.completed.lock();
        completed.push_back(record);
        while completed.len() > capacity {
            completed.pop_front();
        }
    }
}

// ---------------------------------------------------------------------------
// Structured event log (JSON lines)
// ---------------------------------------------------------------------------

enum EventSink {
    /// One line per event to standard error.
    Stderr,
    /// Append to a file, optionally rotating at a size cap.
    File(Mutex<FileSink>),
    /// Retain lines in memory (tests, embedded consumers).
    Memory(Mutex<Vec<String>>),
}

/// The file sink's state: the open handle plus the byte count tracked
/// across writes, so the size cap never re-stats the file.
struct FileSink {
    file: File,
    /// Bytes in the live file (seeded from its length at open).
    len: u64,
    path: PathBuf,
    /// Rotate before a write would push `len` past this; `None` grows
    /// without bound (the classic [`EventLog::to_file`] behavior).
    max_bytes: Option<u64>,
}

impl FileSink {
    fn open(path: &Path, max_bytes: Option<u64>) -> std::io::Result<FileSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(FileSink {
            file,
            len,
            path: path.to_path_buf(),
            max_bytes,
        })
    }

    /// Write one line, rotating first when the cap would be exceeded: the
    /// live file is renamed to `<path>.1` (replacing any previous `.1`)
    /// and a fresh file takes its place, so the pair never holds more than
    /// roughly `2 × max_bytes`. The line being written is never dropped —
    /// an oversized line still lands in the fresh file.
    fn write_line(&mut self, line: &str) {
        let needed = line.len() as u64 + 1;
        if let Some(max) = self.max_bytes {
            if self.len > 0 && self.len + needed > max {
                let rotated = PathBuf::from(format!("{}.1", self.path.display()));
                let _ = std::fs::rename(&self.path, &rotated);
                if let Ok(file) = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                {
                    self.file = file;
                    self.len = 0;
                }
            }
        }
        let _ = writeln!(self.file, "{line}");
        self.len += needed;
    }
}

/// A structured JSON-lines event writer for operational events
/// (`slow_request`, `error`). Each event becomes one JSON object per line
/// with an `event` tag and a `unix_us` wall-clock timestamp. Cloning
/// shares the sink.
#[derive(Clone)]
pub struct EventLog {
    sink: Arc<EventSink>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match *self.sink {
            EventSink::Stderr => "stderr",
            EventSink::File(_) => "file",
            EventSink::Memory(_) => "memory",
        };
        f.debug_struct("EventLog").field("sink", &kind).finish()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::stderr()
    }
}

impl EventLog {
    /// Log events to standard error.
    pub fn stderr() -> Self {
        EventLog {
            sink: Arc::new(EventSink::Stderr),
        }
    }

    /// Retain event lines in memory; read them back with [`EventLog::lines`].
    pub fn in_memory() -> Self {
        EventLog {
            sink: Arc::new(EventSink::Memory(Mutex::new(Vec::new()))),
        }
    }

    /// Append events to a file (created if absent), unbounded.
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        Ok(EventLog {
            sink: Arc::new(EventSink::File(Mutex::new(FileSink::open(path, None)?))),
        })
    }

    /// Append events to a file with size-capped rotation: once appending
    /// would push the file past `max_bytes`, it is renamed to `<path>.1`
    /// (replacing the previous generation) and writing continues in a
    /// fresh file — bounding total disk use at about twice the cap without
    /// ever dropping an event at the rotation boundary.
    pub fn to_file_rotating(path: &Path, max_bytes: u64) -> std::io::Result<Self> {
        Ok(EventLog {
            sink: Arc::new(EventSink::File(Mutex::new(FileSink::open(
                path,
                Some(max_bytes.max(1)),
            )?))),
        })
    }

    /// Emit one event: `{"event": "...", "unix_us": ..., fields...}`.
    pub fn emit(&self, event: &str, fields: &[(&str, AttrValue)]) {
        let unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut line = format!(
            "{{\"event\": \"{}\", \"unix_us\": {}",
            escape_json(event),
            unix_us
        );
        for (key, value) in fields {
            line.push_str(&format!(", \"{}\": {}", escape_json(key), value.to_json()));
        }
        line.push('}');
        match &*self.sink {
            EventSink::Stderr => eprintln!("{line}"),
            EventSink::File(f) => f.lock().write_line(&line),
            EventSink::Memory(lines) => lines.lock().push(line),
        }
    }

    /// Lines retained by an in-memory sink (empty for other sinks).
    pub fn lines(&self) -> Vec<String> {
        match &*self.sink {
            EventSink::Memory(lines) => lines.lock().clone(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::io::json::parse_json;

    #[test]
    fn trace_id_round_trips_and_rejects_junk() {
        let id = TraceId::parse("10adc0de00000001").unwrap();
        assert_eq!(id.0, 0x10adc0de00000001);
        assert_eq!(id.to_string(), "10adc0de00000001");
        assert_eq!(TraceId::parse("ff").unwrap().0, 255);
        assert!(TraceId::parse("").is_none());
        assert!(TraceId::parse("xyz").is_none());
        assert!(TraceId::parse("0123456789abcdef0").is_none(), "17 digits");
        assert!(TraceId::parse("a b").is_none());
    }

    #[test]
    fn spans_form_a_tree_with_attributes() {
        let tracer = Tracer::new();
        let mut root = tracer.start_trace("GET /x", None).unwrap();
        root.set_attr("status", 200i64);
        {
            let mut child = root.child("cache_lookup");
            child.set_attr("hit", false);
            let grand = child.child("probe");
            grand.finish();
            child.finish();
        }
        root.child_at(
            "groupby",
            5,
            10,
            vec![
                ("rows_in", AttrValue::Int(100)),
                ("rows_out", 3usize.into()),
            ],
        );
        root.finish();

        let trace = tracer.recent(1).remove(0);
        let root = trace.root().expect("root span");
        assert_eq!(root.name, "GET /x");
        assert_eq!(root.attr("status"), Some(&AttrValue::Int(200)));
        let kids = trace.children_of(root.id);
        assert_eq!(kids.len(), 2);
        let names: Vec<&str> = kids.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"cache_lookup"), "{names:?}");
        assert!(names.contains(&"groupby"), "{names:?}");
        let cache = kids.iter().find(|s| s.name == "cache_lookup").unwrap();
        assert_eq!(trace.children_of(cache.id).len(), 1, "grandchild probe");
        let op = kids.iter().find(|s| s.name == "groupby").unwrap();
        assert_eq!(op.start_us, 5);
        assert_eq!(op.elapsed_us, 10);
        assert_eq!(op.attr("rows_in"), Some(&AttrValue::Int(100)));
        assert_eq!(op.attr("rows_out"), Some(&AttrValue::Int(3)));
        assert_eq!(trace.duration_us(), root.elapsed_us);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let tracer = Tracer::with_capacity(3);
        for i in 0..5u64 {
            let span = tracer
                .start_trace("req", Some(TraceId(100 + i)))
                .expect("explicit ids always trace");
            span.finish();
        }
        assert_eq!(tracer.len(), 3);
        let recent = tracer.recent(10);
        let ids: Vec<u64> = recent.iter().map(|t| t.trace_id.0).collect();
        assert_eq!(ids, vec![104, 103, 102], "newest first, oldest evicted");
        assert!(tracer.find(TraceId(100)).is_none(), "evicted");
        assert!(tracer.find(TraceId(104)).is_some());
    }

    #[test]
    fn sampling_knob_thins_generated_traces() {
        let tracer = Tracer::new();
        tracer.set_sample_one_in(0);
        assert!(tracer.start_trace("a", None).is_none(), "0 = off");
        assert!(
            tracer.start_trace("a", Some(TraceId(7))).is_none(),
            "0 drops explicit ids too"
        );
        tracer.set_sample_one_in(3);
        let sampled: usize = (0..9)
            .filter(|_| tracer.start_trace("a", None).is_some())
            .count();
        assert_eq!(sampled, 3, "one in three generated traces kept");
        assert!(
            tracer.start_trace("a", Some(TraceId(7))).is_some(),
            "explicit ids bypass thinning"
        );
    }

    #[test]
    fn dropped_span_records_itself() {
        let tracer = Tracer::new();
        {
            let root = tracer.start_trace("req", Some(TraceId(9))).unwrap();
            let _child = root.child("work");
            // both dropped here without explicit finish
        }
        let trace = tracer.find(TraceId(9)).expect("sealed on root drop");
        // The child drops after the root here, so only the root is retained.
        assert!(trace.root().is_some());
    }

    #[test]
    fn event_log_emits_parseable_json_lines() {
        let log = EventLog::in_memory();
        log.emit(
            "slow_request",
            &[
                ("trace_id", "00000000000000ff".into()),
                ("elapsed_us", AttrValue::Int(1234)),
                ("path", "/retail/ds/\"q\"".into()),
            ],
        );
        log.emit("error", &[("status", AttrValue::Int(500))]);
        let lines = log.lines();
        assert_eq!(lines.len(), 2);
        let doc = parse_json(&lines[0]).expect("valid JSON");
        assert_eq!(
            doc.path("event").unwrap().to_value().as_str(),
            Some("slow_request")
        );
        assert_eq!(
            doc.path("trace_id").unwrap().to_value().as_str(),
            Some("00000000000000ff")
        );
        assert_eq!(
            doc.path("elapsed_us").unwrap().to_value().as_int(),
            Some(1234)
        );
        assert!(doc.path("unix_us").unwrap().to_value().as_int().unwrap() > 0);
        let doc2 = parse_json(&lines[1]).expect("valid JSON");
        assert_eq!(doc2.path("status").unwrap().to_value().as_int(), Some(500));
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn rotating_file_log_caps_size_without_losing_events() {
        let dir = std::env::temp_dir().join(format!(
            "shareinsights-rotate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.log");
        // Each event line is ~74 bytes, so 20 events (~1.5 KiB) overflow a
        // 1 KiB cap exactly once — a second rotation would replace `.1`
        // and legitimately discard its generation, so the test stays under
        // 2 × cap and every line must survive in the live file or `.1`.
        let log = EventLog::to_file_rotating(&path, 1024).unwrap();
        for i in 0..20i64 {
            log.emit(
                "error",
                &[("seq", AttrValue::Int(i)), ("status", AttrValue::Int(500))],
            );
        }
        let live = std::fs::read_to_string(&path).unwrap();
        let rotated = std::fs::read_to_string(format!("{}.1", path.display())).unwrap_or_default();
        assert!(
            live.len() as u64 <= 1024 && rotated.len() as u64 <= 1024,
            "both files within the cap: live={} rotated={}",
            live.len(),
            rotated.len()
        );
        assert!(!rotated.is_empty(), "the cap forced a rotation");
        let all = format!("{rotated}{live}");
        for i in 0..20 {
            assert!(
                all.contains(&format!("\"seq\": {i},")),
                "event {i} lost across rotation:\n{all}"
            );
        }
        // Lines stay whole JSON objects across the boundary.
        for line in all.lines() {
            parse_json(line).expect("whole JSON line");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
