//! The [`Platform`]: figure 24's block diagram as one object.

use crate::dashboard::{Dashboard, RunReport};
use crate::error::{PlatformError, Result};
use crate::telemetry::{usage_of, ApiMetrics, RunEvent, RunKind, RunLog};
use crate::telemetry_history::TelemetryHistory;
use crate::trace::{Span, Tracer};
use parking_lot::{Mutex, RwLock};
use shareinsights_collab::PublishRegistry;
use shareinsights_connectors::Catalog;
use shareinsights_engine::compile::{compile, CompileEnv, CompiledPipeline};
use shareinsights_engine::exec::{ExecContext, Executor};
use shareinsights_engine::optimizer::OptimizerConfig;
use shareinsights_engine::stream::StreamExec;
use shareinsights_engine::TaskRegistry;
use shareinsights_flowfile::parser::parse_flow_file;
use shareinsights_flowfile::validate::ValidateOptions;
use shareinsights_flowfile::Severity;
use shareinsights_tabular::Schema;
use shareinsights_widgets::{DashboardRuntime, WidgetRegistry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The declared (all-Utf8) schema of a flow-file data object, used as the
/// discovery fallback before a run has materialised real types.
pub(crate) fn declared_schema_of(obj: &shareinsights_flowfile::ast::DataObject) -> Option<Schema> {
    if obj.columns.is_empty() {
        None
    } else {
        Schema::all_utf8(&obj.column_names()).ok()
    }
}

/// How endpoint data is partitioned across data-plane shard workers.
/// Row-range partitioning (contiguous, even slices) is deliberate: each
/// shard's slice preserves input row order, so order-sensitive merges —
/// first-seen group order, stable sort ties, `first`/`last`/`collect`
/// aggregates — reproduce single-process results byte for byte. A hash
/// scheme would balance skewed appends better but forfeits that
/// guarantee; it can slot in here once responses tolerate reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioning {
    /// Number of shard workers. 0 or 1 disables the shard tier — a
    /// single shard is definitionally the existing in-process path.
    pub shards: usize,
    /// Endpoints below this row count serve unsharded: scatter overhead
    /// dwarfs the work for small tables.
    pub min_rows: usize,
}

impl Partitioning {
    /// Sharding disabled (the default).
    pub fn single() -> Partitioning {
        Partitioning {
            shards: 1,
            min_rows: 0,
        }
    }

    /// Even row-range partitioning across `shards` workers with the
    /// default small-table floor.
    pub fn even(shards: usize) -> Partitioning {
        Partitioning {
            shards: shards.max(1),
            min_rows: 1024,
        }
    }

    /// True when the shard tier is active.
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// The `(offset, len)` slice each shard owns for a table of `rows`
    /// rows: contiguous, covering, in shard order. The first `rows %
    /// shards` shards take one extra row, so slices differ by at most
    /// one — skew comes only from the data, never the split.
    pub fn ranges(&self, rows: usize) -> Vec<(usize, usize)> {
        let shards = self.shards.max(1);
        let base = rows / shards;
        let extra = rows % shards;
        let mut out = Vec::with_capacity(shards);
        let mut offset = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            out.push((offset, len));
            offset += len;
        }
        out
    }
}

impl Default for Partitioning {
    fn default() -> Self {
        Self::single()
    }
}

/// The ShareInsights platform.
#[derive(Clone)]
pub struct Platform {
    catalog: Catalog,
    tasks: TaskRegistry,
    widgets: WidgetRegistry,
    publish: PublishRegistry,
    log: RunLog,
    api: ApiMetrics,
    history: TelemetryHistory,
    tracer: Tracer,
    dashboards: Arc<RwLock<BTreeMap<String, Dashboard>>>,
    /// dashboard -> endpoint-data generation, bumped whenever a run
    /// replaces the dashboard's endpoint tables. Serving-layer caches key
    /// their entries on this (plus the publish registry's per-object
    /// generation) to invalidate without coordination.
    data_gens: Arc<RwLock<BTreeMap<String, u64>>>,
    /// Live streaming contexts (the continuous execution context), by
    /// dashboard name. Created by [`Platform::stream_start`], advanced one
    /// micro-batch at a time by [`Platform::stream_push`].
    streams: Arc<Mutex<BTreeMap<String, StreamExec>>>,
    /// How endpoint data splits across data-plane shards. Metadata only
    /// at this layer — the serving tier owns the workers — but it lives
    /// on the platform so every server over one platform agrees on the
    /// partition map.
    partitioning: Arc<RwLock<Partitioning>>,
    /// Executor used for batch runs.
    pub executor: Executor,
    /// Optimizer configuration applied at compile time.
    pub optimizer: OptimizerConfig,
}

impl Default for Platform {
    fn default() -> Self {
        Self::new()
    }
}

impl Platform {
    /// A platform with built-in connectors, formats, tasks and widgets.
    pub fn new() -> Platform {
        Platform {
            catalog: Catalog::new(),
            tasks: TaskRegistry::new(),
            widgets: WidgetRegistry::new(),
            publish: PublishRegistry::new(),
            log: RunLog::new(),
            api: ApiMetrics::new(),
            history: TelemetryHistory::new(),
            tracer: Tracer::new(),
            dashboards: Arc::new(RwLock::new(BTreeMap::new())),
            data_gens: Arc::new(RwLock::new(BTreeMap::new())),
            streams: Arc::new(Mutex::new(BTreeMap::new())),
            partitioning: Arc::new(RwLock::new(Partitioning::default())),
            executor: Executor::default(),
            optimizer: OptimizerConfig::default(),
        }
    }

    // --- extension services (§4.2) -------------------------------------

    /// Connector/format catalog (register extensions, seed fixtures).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Task extension registry.
    pub fn tasks(&self) -> &TaskRegistry {
        &self.tasks
    }

    /// Widget extension registry.
    pub fn widgets(&self) -> &WidgetRegistry {
        &self.widgets
    }

    /// Shared-objects registry.
    pub fn publish_registry(&self) -> &PublishRegistry {
        &self.publish
    }

    /// Telemetry log.
    pub fn log(&self) -> &RunLog {
        &self.log
    }

    /// Serving-path metrics (per-route counters/latency, `/stats`).
    pub fn api_metrics(&self) -> &ApiMetrics {
        &self.api
    }

    /// The self-hosted telemetry time-series the serving layer scrapes
    /// [`ApiMetrics`] into — the backing store of the built-in `_system`
    /// dashboard's `telemetry` dataset.
    pub fn telemetry_history(&self) -> &TelemetryHistory {
        &self.history
    }

    /// Request/operator trace registry: completed traces land here, and
    /// the sampling knob lives on it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The endpoint-data generation of a dashboard: 0 until its first run,
    /// bumped by every completed run. Combined with
    /// [`PublishRegistry::generation`] this stamps query-cache entries.
    pub fn data_generation(&self, dashboard: &str) -> u64 {
        self.data_gens.read().get(dashboard).copied().unwrap_or(0)
    }

    /// Bump a dashboard's endpoint-data generation (runs do this
    /// automatically; exposed for callers that mutate endpoint tables
    /// directly).
    pub fn bump_data_generation(&self, dashboard: &str) {
        *self
            .data_gens
            .write()
            .entry(dashboard.to_string())
            .or_insert(0) += 1;
    }

    /// The current endpoint partition map.
    pub fn partitioning(&self) -> Partitioning {
        *self.partitioning.read()
    }

    /// Replace the endpoint partition map (the serving tier does this
    /// when a server is built `with_shards`).
    pub fn set_partitioning(&self, p: Partitioning) {
        *self.partitioning.write() = p;
    }

    // --- development services (§4.3) ------------------------------------

    /// Upload a file into a dashboard's data folder (the SFTP interface of
    /// §4.3.2). Data objects reference it by the bare relative path.
    pub fn upload_data(&self, dashboard: &str, path: &str, content: impl Into<String>) {
        self.catalog
            .data_folder()
            .put_text(format!("{dashboard}/{path}"), content);
    }

    /// Upload binary data.
    pub fn upload_bytes(&self, dashboard: &str, path: &str, content: Vec<u8>) {
        self.catalog
            .data_folder()
            .put_bytes(format!("{dashboard}/{path}"), content);
    }

    /// Create an empty dashboard (the `/dashboards/<name>/create` URL).
    pub fn create_dashboard(&self, name: &str) -> Result<()> {
        let mut dashboards = self.dashboards.write();
        if dashboards.contains_key(name) {
            return Err(PlatformError::Other(format!(
                "dashboard '{name}' already exists"
            )));
        }
        dashboards.insert(name.to_string(), Dashboard::new(name));
        Ok(())
    }

    /// Dashboard names.
    pub fn dashboard_names(&self) -> Vec<String> {
        self.dashboards.read().keys().cloned().collect()
    }

    /// A dashboard snapshot.
    pub fn dashboard(&self, name: &str) -> Result<Dashboard> {
        self.dashboards
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PlatformError::NoDashboard(name.to_string()))
    }

    /// Save (commit) flow-file text for a dashboard, parsing and validating
    /// it. Returns validation warnings; errors reject the save.
    pub fn save_flow(
        &self,
        name: &str,
        text: &str,
    ) -> Result<Vec<shareinsights_flowfile::Diagnostic>> {
        self.save_flow_as(name, text, "analyst")
    }

    /// Save with an author label (the hackathon simulator names teams).
    pub fn save_flow_as(
        &self,
        name: &str,
        text: &str,
        author: &str,
    ) -> Result<Vec<shareinsights_flowfile::Diagnostic>> {
        // Auto-create on first save — matching the create-by-URL workflow.
        if !self.dashboards.read().contains_key(name) {
            self.create_dashboard(name)?;
        }
        let parse_result = parse_flow_file(name, text);
        let ast = match parse_result {
            Ok(ast) => ast,
            Err(e) => {
                self.log.record(RunEvent {
                    dashboard: name.to_string(),
                    kind: RunKind::Save,
                    success: false,
                    error: Some(e.to_string()),
                    flow_bytes: text.len(),
                    operators: vec![],
                    widgets: vec![],
                    seq: 0,
                });
                return Err(e.into());
            }
        };
        let opts = ValidateOptions {
            extra_tasks: self.tasks.task_names(),
            shared_data: self.publish.names(),
        };
        let diags = shareinsights_flowfile::validate::validate_with(&ast, &opts);
        if diags.iter().any(|d| d.severity == Severity::Error) {
            self.log.record(RunEvent {
                dashboard: name.to_string(),
                kind: RunKind::Save,
                success: false,
                error: Some(
                    diags
                        .iter()
                        .filter(|d| d.severity == Severity::Error)
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join("; "),
                ),
                flow_bytes: text.len(),
                operators: vec![],
                widgets: vec![],
                seq: 0,
            });
            return Err(shareinsights_flowfile::FlowError::from_diagnostics(diags).into());
        }
        let (operators, widget_types) = usage_of(&ast);
        {
            let mut dashboards = self.dashboards.write();
            let d = dashboards.get_mut(name).expect("created above");
            d.repo.commit("main", author, "save", text);
            d.text = text.to_string();
            d.ast = ast;
        }
        self.log.record(RunEvent {
            dashboard: name.to_string(),
            kind: RunKind::Save,
            success: true,
            error: None,
            flow_bytes: text.len(),
            operators,
            widgets: widget_types,
            seq: 0,
        });
        Ok(diags)
    }

    /// Fork an existing dashboard under a new name (§5.2.2 obs. 3).
    pub fn fork_dashboard(&self, from: &str, to: &str, author: &str) -> Result<()> {
        let source = self.dashboard(from)?;
        if self.dashboards.read().contains_key(to) {
            return Err(PlatformError::Other(format!(
                "dashboard '{to}' already exists"
            )));
        }
        let repo = source
            .repo
            .fork(to, "main", author)
            .map_err(|e| PlatformError::Collab(e.to_string()))?;
        let ast = parse_flow_file(to, &source.text)?;
        // Forks also copy the source dashboard's data folder namespace.
        for path in self.catalog.data_folder().list() {
            if let Some(rest) = path.strip_prefix(&format!("{from}/")) {
                if let Some(bytes) = self.catalog.data_folder().get(&path) {
                    self.catalog
                        .data_folder()
                        .put_bytes(format!("{to}/{rest}"), bytes);
                }
            }
        }
        let dash = Dashboard {
            name: to.to_string(),
            repo,
            text: source.text.clone(),
            ast,
            endpoint_tables: BTreeMap::new(),
        };
        self.dashboards.write().insert(to.to_string(), dash);
        self.log.record(RunEvent {
            dashboard: to.to_string(),
            kind: RunKind::Fork,
            success: true,
            error: None,
            flow_bytes: source.text.len(),
            operators: vec![],
            widgets: vec![],
            seq: 0,
        });
        Ok(())
    }

    // --- compilation + execution (§4.1) ---------------------------------

    fn dict_loader(&self, dashboard: &str) -> impl Fn(&str) -> Option<String> + '_ {
        let dash = dashboard.to_string();
        move |path: &str| {
            let folder = self.catalog.data_folder();
            folder
                .get(&format!("{dash}/{path}"))
                .or_else(|| folder.get(path))
                .and_then(|b| String::from_utf8(b).ok())
        }
    }

    /// Shared schemas visible to a compiling dashboard.
    fn shared_schemas(&self) -> BTreeMap<String, Schema> {
        self.publish
            .names()
            .into_iter()
            .filter_map(|n| self.publish.get(&n).map(|o| (n, o.schema)))
            .collect()
    }

    /// Compile a dashboard's current flow file.
    pub fn compile_dashboard(&self, name: &str) -> Result<CompiledPipeline> {
        let dash = self.dashboard(name)?;
        let loader = self.dict_loader(name);
        let env = CompileEnv {
            registry: &self.tasks,
            load_text: &loader,
            shared_schemas: self.shared_schemas(),
            optimizer: self.optimizer.clone(),
        };
        let result = compile(&dash.ast, &env).map_err(PlatformError::Compile);
        self.log.record(RunEvent {
            dashboard: name.to_string(),
            kind: RunKind::Compile,
            success: result.is_ok(),
            error: result.as_ref().err().map(|e| e.to_string()),
            flow_bytes: dash.flow_bytes(),
            operators: vec![],
            widgets: vec![],
            seq: 0,
        });
        let mut pipeline = result?;
        // Rewrite source paths into the dashboard's data-folder namespace
        // when a namespaced file exists.
        for cfg in pipeline.sources.values_mut() {
            if let Some(src) = &cfg.source {
                let namespaced = format!("{name}/{src}");
                if self.catalog.data_folder().get(&namespaced).is_some() {
                    cfg.source = Some(namespaced);
                }
            }
        }
        Ok(pipeline)
    }

    /// Compile and run a dashboard's batch flows; publishes shared objects
    /// and stores endpoint tables for consumption.
    pub fn run_dashboard(&self, name: &str) -> Result<RunReport> {
        self.run_dashboard_traced(name, None)
    }

    /// Like [`Platform::run_dashboard`], but additionally hangs child spans
    /// off `parent` — `compile`, `execute`, and one grandchild per source
    /// load and per executed DAG operator (grafted post hoc from
    /// [`shareinsights_engine::exec::ExecStats`], so engine spans and stats
    /// agree by construction). Per-operator latency histograms fold into
    /// [`ApiMetrics`] regardless of whether the run is traced.
    pub fn run_dashboard_traced(&self, name: &str, parent: Option<&Span>) -> Result<RunReport> {
        let compile_span = parent.map(|s| s.child("compile"));
        let pipeline = self.compile_dashboard(name)?;
        if let Some(mut s) = compile_span {
            s.set_attr("flows", pipeline.flows.len());
            s.finish();
        }
        let dash = self.dashboard(name)?;

        // Resolve shared inputs into the execution context.
        let mut ctx = ExecContext::new(self.catalog.clone());
        for flow in &pipeline.flows {
            for input in &flow.inputs {
                if !pipeline.sources.contains_key(input)
                    && !pipeline.graph.is_produced(input)
                    && !ctx.tables.contains_key(input)
                {
                    if let Some(shared) = self.publish.resolve(input, name) {
                        if let Some(snapshot) = shared.snapshot {
                            ctx.tables.insert(input.clone(), snapshot);
                        }
                    }
                }
            }
        }

        let exec_span = parent.map(|s| s.child("execute"));
        let exec_result = self.executor.execute(&pipeline, &ctx);
        if let Ok(r) = &exec_result {
            for t in &r.stats.task_runs {
                self.api.record_operator(
                    &t.task_type,
                    t.rows_in as u64,
                    t.rows_out as u64,
                    t.elapsed_us,
                );
            }
        }
        if let Some(mut s) = exec_span {
            if let Ok(r) = &exec_result {
                // Engine timings are offsets from run start; rebase them
                // onto this span's start so they nest inside the trace.
                let base = s.start_offset_us();
                for l in &r.stats.source_loads {
                    s.child_at(
                        &l.source,
                        base + l.start_us,
                        l.elapsed_us,
                        vec![("op", "source".into()), ("rows_out", l.rows.into())],
                    );
                }
                for t in &r.stats.task_runs {
                    s.child_at(
                        &t.task,
                        base + t.start_us,
                        t.elapsed_us,
                        vec![
                            ("op", t.task_type.as_str().into()),
                            ("flow", t.flow.as_str().into()),
                            ("rows_in", t.rows_in.into()),
                            ("rows_out", t.rows_out.into()),
                        ],
                    );
                }
                s.set_attr("source_rows", r.stats.source_rows);
                s.set_attr("tasks", r.stats.task_runs.len());
                s.set_attr("endpoint_bytes", r.stats.endpoint_bytes);
            }
            s.finish();
        }
        let (operators, widget_types) = usage_of(&dash.ast);
        self.log.record(RunEvent {
            dashboard: name.to_string(),
            kind: RunKind::Run,
            success: exec_result.is_ok(),
            error: exec_result.as_ref().err().map(|e| e.to_string()),
            flow_bytes: dash.flow_bytes(),
            operators,
            widgets: widget_types,
            seq: 0,
        });
        let result = exec_result.map_err(PlatformError::Execute)?;

        // Publish shared objects with fresh snapshots.
        let mut published = Vec::new();
        for (local, publish_name) in &pipeline.published {
            if let Some(table) = result.table(local) {
                self.publish
                    .publish(
                        publish_name,
                        name,
                        local,
                        table.schema().clone(),
                        Some(table.clone()),
                    )
                    .map_err(PlatformError::Collab)?;
                published.push((publish_name.clone(), table.num_rows()));
            }
        }

        // Stash endpoint tables on the dashboard for widget consumption.
        let report = RunReport {
            result,
            published,
            warnings: vec![],
        };
        let endpoint_tables = report.endpoint_tables();
        if let Some(d) = self.dashboards.write().get_mut(name) {
            d.endpoint_tables = endpoint_tables;
        }
        self.bump_data_generation(name);
        Ok(report)
    }

    // --- continuous execution (live flows) ------------------------------

    /// Start (or restart) a streaming context for a dashboard: compile its
    /// current flow file and attach a [`StreamExec`] that accepts
    /// micro-batches. Streaming state starts empty; batch endpoint tables
    /// stay visible until the first push replaces them copy-on-write.
    pub fn stream_start(&self, name: &str) -> Result<StreamStartInfo> {
        let pipeline = self.compile_dashboard(name)?;
        let stream = StreamExec::new(pipeline);
        let info = StreamStartInfo {
            dashboard: name.to_string(),
            sources: stream
                .pipeline()
                .graph
                .sources()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            endpoints: stream.pipeline().endpoints.clone(),
        };
        self.streams.lock().insert(name.to_string(), stream);
        Ok(info)
    }

    /// True when a streaming context is attached to the dashboard.
    pub fn stream_active(&self, name: &str) -> bool {
        self.streams.lock().contains_key(name)
    }

    /// Detach a dashboard's streaming context, if any. Endpoint tables keep
    /// their last streamed snapshot.
    pub fn stream_stop(&self, name: &str) -> bool {
        self.streams.lock().remove(name).is_some()
    }

    /// Push one micro-batch (CSV rows) into a source of a streaming
    /// dashboard. The batch propagates through the continuous DAG, every
    /// affected endpoint snapshot is swapped copy-on-write, and the
    /// dashboard's data generation advances — so batch readers and the
    /// query cache's generation-stamped invalidation work unchanged.
    ///
    /// When the source declares columns, the body is headerless CSV in
    /// declared-column order; otherwise the first record is the header.
    pub fn stream_push(&self, name: &str, source: &str, csv: &str) -> Result<StreamPushReport> {
        let columns: Option<Vec<String>> =
            self.dashboard(name)?
                .ast
                .data_object(source)
                .and_then(|obj| {
                    let names = obj.column_names();
                    if names.is_empty() {
                        None
                    } else {
                        Some(names.iter().map(|s| s.to_string()).collect())
                    }
                });
        let opts = match columns {
            Some(cols) => shareinsights_tabular::io::csv::CsvOptions {
                has_header: false,
                column_names: Some(cols),
                ..Default::default()
            },
            None => shareinsights_tabular::io::csv::CsvOptions::default(),
        };
        let batch = shareinsights_tabular::io::csv::read_csv(csv, &opts)
            .map_err(|e| PlatformError::Other(format!("stream batch: {e}")))?;

        let (tick, endpoints, strategies) = {
            let mut streams = self.streams.lock();
            let stream = streams.get_mut(name).ok_or_else(|| {
                PlatformError::Other(format!(
                    "dashboard '{name}' has no active stream (POST /dashboards/{name}/stream/start first)"
                ))
            })?;
            let tick = stream
                .push_batch(source, batch)
                .map_err(PlatformError::Execute)?;
            let strategies: Vec<(String, &'static str)> = tick
                .updated
                .keys()
                .filter_map(|obj| stream.strategy_name(obj).map(|s| (obj.clone(), s)))
                .collect();
            (tick, stream.pipeline().endpoints.clone(), strategies)
        };

        // Copy-on-write endpoint swap, then the generation bump that
        // invalidates generation-stamped cache entries.
        let mut updated: Vec<(String, usize)> = Vec::new();
        {
            let mut dashboards = self.dashboards.write();
            if let Some(d) = dashboards.get_mut(name) {
                for (obj, table) in &tick.updated {
                    if !endpoints.contains(obj) {
                        continue;
                    }
                    updated.push((obj.clone(), table.num_rows()));
                    d.endpoint_tables.insert(obj.clone(), table.clone());
                }
            }
        }
        self.bump_data_generation(name);
        self.api
            .record_stream_tick(tick.rows_in as u64, tick.evicted_rows as u64);
        Ok(StreamPushReport {
            dashboard: name.to_string(),
            source: source.to_string(),
            rows_in: tick.rows_in,
            evicted_rows: tick.evicted_rows,
            generation: self.data_generation(name),
            updated,
            strategies,
        })
    }

    /// Append already-decoded rows onto an endpoint dataset in place: the
    /// streamed-ingest counterpart of a full re-run. The merged table is
    /// swapped copy-on-write (readers keep their old snapshot) and the
    /// dashboard's data generation advances so generation-stamped caches
    /// invalidate — but the serving layer can recognise the append and
    /// merge its warm `IndexedTable` instead of rebuilding.
    ///
    /// A dataset that does not exist yet is created from the delta, so
    /// ingest also bootstraps fresh endpoints. Schema mismatches surface
    /// as errors from the concat (tabular unifies compatible schemas and
    /// rejects the rest).
    pub fn append_endpoint(
        &self,
        name: &str,
        dataset: &str,
        delta: shareinsights_tabular::Table,
    ) -> Result<AppendReport> {
        let rows_appended = delta.num_rows();
        let total_rows;
        let merged;
        {
            let mut dashboards = self.dashboards.write();
            let d = dashboards
                .get_mut(name)
                .ok_or_else(|| PlatformError::Other(format!("no dashboard '{name}'")))?;
            let concatenated = match d.endpoint_tables.get(dataset) {
                Some(existing) => existing
                    .concat(&delta)
                    .map_err(|e| PlatformError::Other(format!("append to '{dataset}': {e}")))?,
                None => delta,
            };
            total_rows = concatenated.num_rows();
            d.endpoint_tables
                .insert(dataset.to_string(), concatenated.clone());
            merged = concatenated;
        }
        self.bump_data_generation(name);
        Ok(AppendReport {
            dashboard: name.to_string(),
            dataset: dataset.to_string(),
            rows_appended,
            total_rows,
            generation: self.data_generation(name),
            merged,
        })
    }

    /// Upload a stylesheet for a dashboard (§4.2 Styling / §4.3.2: the SFTP
    /// interface has "appropriately named folders for task, widgets etc" —
    /// stylesheets land beside the data).
    pub fn upload_stylesheet(&self, dashboard: &str, css: &str) -> Result<()> {
        // Validate at upload time so authors get immediate feedback.
        shareinsights_widgets::Stylesheet::parse(css)
            .map_err(|e| PlatformError::Other(e.to_string()))?;
        self.catalog
            .data_folder()
            .put_text(format!("{dashboard}/__style.css"), css);
        Ok(())
    }

    /// Open and render a dashboard, applying its uploaded stylesheet (when
    /// any) to the render tree.
    pub fn render_dashboard(
        &self,
        name: &str,
        max_items: usize,
    ) -> Result<shareinsights_widgets::RenderNode> {
        let runtime = self.open_dashboard(name)?;
        let mut tree = runtime.render(max_items)?;
        if let Some(css) = self
            .catalog
            .data_folder()
            .get(&format!("{name}/__style.css"))
            .and_then(|b| String::from_utf8(b).ok())
        {
            let sheet = shareinsights_widgets::Stylesheet::parse(&css)
                .map_err(|e| PlatformError::Other(e.to_string()))?;
            shareinsights_widgets::apply_styles(&mut tree, &sheet);
        }
        Ok(tree)
    }

    /// Run a dashboard and open its auto-constructed data-quality
    /// meta-dashboard (§6 future work): per-column statistics over every
    /// table the pipeline materialised, served as a real dashboard named
    /// `<name>__meta`.
    pub fn open_meta_dashboard(
        &self,
        name: &str,
    ) -> Result<(crate::meta::MetaDashboard, DashboardRuntime)> {
        let run = self.run_dashboard(name)?;
        let meta = crate::meta::build_meta_dashboard(&run);
        let meta_name = format!("{name}__meta");
        // (Re)save the generated flow file; re-saving an existing meta
        // dashboard just commits a new version.
        self.save_flow_as(&meta_name, &meta.flow_text, "platform")?;
        let mut endpoints = BTreeMap::new();
        endpoints.insert("column_profiles".to_string(), meta.profile.clone());
        if let Some(d) = self.dashboards.write().get_mut(&meta_name) {
            d.endpoint_tables = endpoints.clone();
        }
        let dash = self.dashboard(&meta_name)?;
        let runtime = DashboardRuntime::build(&dash.ast, &endpoints, &self.tasks, &self.widgets)?;
        Ok((meta, runtime))
    }

    /// Enrichment suggestions (§6 dataset discovery) for a data object of a
    /// dashboard: published shared objects joinable with its schema.
    pub fn suggest_enrichments(
        &self,
        dashboard: &str,
        object: &str,
    ) -> Result<Vec<crate::discovery::Enrichment>> {
        let dash = self.dashboard(dashboard)?;
        // Prefer the materialised schema (post-run types); fall back to the
        // declared column list.
        let schema = dash
            .endpoint_tables
            .get(object)
            .map(|t| t.schema().clone())
            .or_else(|| {
                dash.ast
                    .data_object(object)
                    .and_then(crate::platform::declared_schema_of)
            })
            .ok_or_else(|| {
                PlatformError::Other(format!(
                    "no data object 'D.{object}' on dashboard '{dashboard}' (run it first?)"
                ))
            })?;
        Ok(crate::discovery::suggest_enrichments(
            &schema,
            &self.publish,
            Some(dashboard),
        ))
    }

    /// Diagnose a platform error against a dashboard's current flow file
    /// (§6 error pin-pointing).
    pub fn diagnose(&self, dashboard: &str, error: &PlatformError) -> crate::doctor::Diagnosis {
        let ff = self.dashboard(dashboard).map(|d| d.ast).unwrap_or_default();
        crate::doctor::explain(error, &ff)
    }

    /// Open a dashboard interactively: build its widget runtime over local
    /// endpoint tables plus shared objects resolved by name (§3.7.2).
    pub fn open_dashboard(&self, name: &str) -> Result<DashboardRuntime> {
        let dash = self.dashboard(name)?;
        let mut endpoints = dash.endpoint_tables.clone();
        // Also make every run-produced table available: widgets may read
        // intermediate objects within the same dashboard.
        for (obj, t) in &dash.endpoint_tables {
            endpoints.entry(obj.clone()).or_insert_with(|| t.clone());
        }
        // Resolve widget sources against the shared registry.
        for w in &dash.ast.widgets {
            if let Some(shareinsights_flowfile::ast::WidgetSource::Flow { input, .. }) = &w.source {
                if !endpoints.contains_key(input) {
                    if let Some(shared) = self.publish.resolve(input, name) {
                        if let Some(snapshot) = shared.snapshot {
                            endpoints.insert(input.clone(), snapshot);
                        }
                    }
                }
            }
        }
        let runtime = DashboardRuntime::build(&dash.ast, &endpoints, &self.tasks, &self.widgets);
        let (operators, widget_types) = usage_of(&dash.ast);
        self.log.record(RunEvent {
            dashboard: name.to_string(),
            kind: RunKind::Open,
            success: runtime.is_ok(),
            error: runtime.as_ref().err().map(|e| e.to_string()),
            flow_bytes: dash.flow_bytes(),
            operators,
            widgets: widget_types,
            seq: 0,
        });
        Ok(runtime?)
    }
}

/// What a freshly started stream accepts and produces.
#[derive(Debug, Clone)]
pub struct StreamStartInfo {
    /// Dashboard the stream is attached to.
    pub dashboard: String,
    /// Source data objects accepting pushed micro-batches.
    pub sources: Vec<String>,
    /// Endpoint objects whose snapshots advance per tick.
    pub endpoints: Vec<String>,
}

/// Outcome of one streamed append onto an endpoint dataset.
#[derive(Debug, Clone)]
pub struct AppendReport {
    /// Dashboard the rows went to.
    pub dashboard: String,
    /// Endpoint dataset appended to.
    pub dataset: String,
    /// Rows in the delta.
    pub rows_appended: usize,
    /// Rows in the dataset after the append.
    pub total_rows: usize,
    /// The dashboard's endpoint-data generation after the append.
    pub generation: u64,
    /// The post-append endpoint table (column buffers shared with the
    /// stored copy): lets index maintenance reuse the concat this append
    /// already paid instead of concatenating again.
    pub merged: shareinsights_tabular::Table,
}

/// Outcome of one pushed micro-batch.
#[derive(Debug, Clone)]
pub struct StreamPushReport {
    /// Dashboard the batch went to.
    pub dashboard: String,
    /// Source the batch was pushed into.
    pub source: String,
    /// Rows ingested.
    pub rows_in: usize,
    /// Rows evicted from bounded stream state.
    pub evicted_rows: usize,
    /// The dashboard's endpoint-data generation after the tick.
    pub generation: u64,
    /// Updated endpoints with their new row counts.
    pub updated: Vec<(String, usize)>,
    /// Per-updated-object execution strategy names
    /// (`passthrough` / `incremental` / `reexec`), for span attributes.
    pub strategies: Vec<(String, &'static str)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROCESSING: &str = r#"
D:
  tweets: [date, player]
D.tweets:
  source: 'tweets.csv'
  format: csv
T:
  players_count:
    type: groupby
    groupby: [date, player]
F:
  D.players_tweets: D.tweets | T.players_count
  D.players_tweets:
    endpoint: true
    publish: players_tweets
"#;

    const CONSUMPTION: &str = r#"
W:
  cloud:
    type: WordCloud
    source: D.players_tweets | T.agg
    text: player
    size: total
T:
  agg:
    type: groupby
    groupby: [player]
    aggregates:
    - operator: sum
      apply_on: count
      out_field: total
"#;

    fn seeded() -> Platform {
        let p = Platform::new();
        p.upload_data(
            "ipl_processing",
            "tweets.csv",
            "date,player\nd1,dhoni\nd1,dhoni\nd1,kohli\nd2,dhoni\n",
        );
        p
    }

    #[test]
    fn full_processing_then_consumption_cycle() {
        // §3.7's two-dashboard data-sharing pattern, end to end.
        let platform = seeded();
        platform.save_flow("ipl_processing", PROCESSING).unwrap();
        let run = platform.run_dashboard("ipl_processing").unwrap();
        assert_eq!(run.published, vec![("players_tweets".to_string(), 3)]);

        platform.save_flow("ipl_dashboard", CONSUMPTION).unwrap();
        let dash = platform.open_dashboard("ipl_dashboard").unwrap();
        let node = dash.render_widget("cloud", 10).unwrap();
        assert_eq!(node.lines[0], "dhoni (3)");

        // The group formed (§4.5.3).
        assert_eq!(
            platform.publish_registry().group_of("players_tweets"),
            vec!["ipl_processing", "ipl_dashboard"]
        );
    }

    #[test]
    fn save_rejects_invalid_and_logs() {
        let platform = Platform::new();
        let err = platform
            .save_flow("bad", "F:\n  D.x: D.ghost | T.missing\n")
            .unwrap_err();
        assert!(err.to_string().contains("unknown task"));
        let events = platform.log().events();
        assert_eq!(events.len(), 1);
        assert!(!events[0].success);
        assert!(events[0].error.as_ref().unwrap().contains("T.missing"));
    }

    #[test]
    fn fork_copies_text_history_and_data() {
        let platform = seeded();
        platform.save_flow("ipl_processing", PROCESSING).unwrap();
        platform
            .fork_dashboard("ipl_processing", "team_7", "team7")
            .unwrap();
        let forked = platform.dashboard("team_7").unwrap();
        assert_eq!(forked.text, PROCESSING);
        assert!(forked.repo.forked_from().is_some());
        // The data folder namespace was copied, so the fork runs as-is.
        let run = platform.run_dashboard("team_7").unwrap();
        assert!(run.result.table("players_tweets").is_some());
        // Telemetry recorded the fork with the starting size.
        assert_eq!(platform.log().count("team_7", RunKind::Fork), 1);
        assert_eq!(
            platform.log().starting_sizes().get("team_7"),
            Some(&PROCESSING.len())
        );
    }

    #[test]
    fn duplicate_dashboard_rejected() {
        let platform = Platform::new();
        platform.create_dashboard("a").unwrap();
        assert!(platform.create_dashboard("a").is_err());
        assert!(platform.dashboard("ghost").is_err());
    }

    #[test]
    fn custom_task_extension_runs_in_flow() {
        // §5.2.2 obs. 2: a custom task looks identical in the flow file.
        use shareinsights_engine::ext::FnTask;
        let platform = Platform::new();
        platform.tasks().register_task(Arc::new(FnTask::new(
            "predict_resolution",
            |s: &shareinsights_tabular::Schema| {
                s.with_field(shareinsights_tabular::Field::new(
                    "predicted_days",
                    shareinsights_tabular::DataType::Int64,
                ))
                .map_err(|e| shareinsights_engine::EngineError::Internal(e.to_string()))
            },
            |t: &shareinsights_tabular::Table| {
                let col = t
                    .column("description")
                    .map_err(|e| shareinsights_engine::ext::exec_err("predict_resolution", e))?;
                let vals: Vec<shareinsights_tabular::Value> = (0..t.num_rows())
                    .map(|i| {
                        let d = col.str_at(i).unwrap_or("");
                        let days = if d.contains("backup") { 7 } else { 2 };
                        shareinsights_tabular::Value::Int(days)
                    })
                    .collect();
                t.with_column(
                    "predicted_days",
                    shareinsights_tabular::Column::from_values(&vals),
                )
                .map_err(|e| shareinsights_engine::ext::exec_err("predict_resolution", e))
            },
        )));
        platform.upload_data(
            "tickets",
            "tickets.csv",
            "id,description\n1,backup failed\n2,login broken\n",
        );
        let src = r#"
D:
  tickets: [id, description]
D.tickets:
  source: 'tickets.csv'
  format: csv
T:
  predictor:
    type: predict_resolution
F:
  +D.predictions: D.tickets | T.predictor
"#;
        platform.save_flow("tickets", src).unwrap();
        let run = platform.run_dashboard("tickets").unwrap();
        let out = run.result.table("predictions").unwrap();
        assert_eq!(out.value(0, "predicted_days").unwrap().as_int(), Some(7));
        assert_eq!(out.value(1, "predicted_days").unwrap().as_int(), Some(2));
    }

    #[test]
    fn stylesheet_applies_to_render_tree() {
        // §4.2 Styling: widget names as CSS targets.
        let platform = seeded();
        platform.save_flow("ipl_processing", PROCESSING).unwrap();
        platform.run_dashboard("ipl_processing").unwrap();
        platform.save_flow("ipl_dashboard", CONSUMPTION).unwrap();
        platform
            .upload_stylesheet(
                "ipl_dashboard",
                "cloud { color: gold; }\n.WordCloud { max-words: 30; }",
            )
            .unwrap();
        let tree = platform.render_dashboard("ipl_dashboard", 5).unwrap();
        let cloud = &tree.children[0];
        assert_eq!(cloud.name, "cloud");
        assert!(cloud.lines[0].contains("color=gold"), "{:?}", cloud.lines);
        assert!(cloud.lines[0].contains("max-words=30"));
        // Invalid CSS rejected at upload.
        assert!(platform.upload_stylesheet("ipl_dashboard", "x {").is_err());
    }

    #[test]
    fn default_selection_preselects_figure12_style() {
        let platform = seeded();
        platform.save_flow("ipl_processing", PROCESSING).unwrap();
        platform.run_dashboard("ipl_processing").unwrap();
        let src = r#"
W:
  picker:
    type: List
    source: D.players_tweets | T.names
    text: player
    default_selection: true
    default_selection_key: text
    default_selection_value: 'dhoni'
  detail:
    type: DataGrid
    source: D.players_tweets | T.filter_players
T:
  names:
    type: distinct
    columns: [player]
  filter_players:
    type: filter_by
    filter_by: [player]
    filter_source: W.picker
    filter_val: [text]
"#;
        platform.save_flow("viewer", src).unwrap();
        let dash = platform.open_dashboard("viewer").unwrap();
        // Without any user click, the detail grid is already filtered.
        let data = dash.data_of("detail").unwrap();
        assert!(data.num_rows() > 0);
        for i in 0..data.num_rows() {
            assert_eq!(data.value(i, "player").unwrap().to_string(), "dhoni");
        }
    }

    #[test]
    fn traced_run_grafts_operator_spans_and_folds_histograms() {
        use crate::trace::AttrValue;
        let platform = seeded();
        platform.save_flow("ipl_processing", PROCESSING).unwrap();
        let root = platform
            .tracer()
            .start_trace("POST /dashboards/:name/run", None)
            .unwrap();
        platform
            .run_dashboard_traced("ipl_processing", Some(&root))
            .unwrap();
        root.finish();

        let trace = platform.tracer().recent(1).remove(0);
        let root_span = trace.root().expect("root span recorded");
        let kids = trace.children_of(root_span.id);
        let names: Vec<&str> = kids.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"compile"), "{names:?}");
        assert!(names.contains(&"execute"), "{names:?}");
        let exec = kids.iter().find(|s| s.name == "execute").unwrap();
        assert_eq!(exec.attr("source_rows"), Some(&AttrValue::Int(4)));
        let ops = trace.children_of(exec.id);
        let group = ops
            .iter()
            .find(|s| s.attr("op") == Some(&AttrValue::Str("groupby".into())))
            .expect("groupby operator span");
        assert_eq!(group.name, "players_count");
        assert_eq!(group.attr("rows_in"), Some(&AttrValue::Int(4)));
        assert_eq!(group.attr("rows_out"), Some(&AttrValue::Int(3)));
        assert!(
            ops.iter()
                .any(|s| s.attr("op") == Some(&AttrValue::Str("source".into()))),
            "source load span present"
        );

        // Histograms folded into ApiMetrics even for untraced runs.
        platform.run_dashboard("ipl_processing").unwrap();
        let operators = platform.api_metrics().operators();
        let g = &operators["groupby"];
        assert_eq!(g.runs, 2);
        assert_eq!(g.rows_in, 8);
        assert_eq!(g.rows_out, 6);
        assert_eq!(g.latency.count, 2);
    }

    #[test]
    fn stream_push_advances_endpoints_and_generation() {
        let platform = seeded();
        platform.save_flow("ipl_processing", PROCESSING).unwrap();
        platform.run_dashboard("ipl_processing").unwrap();
        let gen0 = platform.data_generation("ipl_processing");

        // Pushing without a stream is rejected.
        let err = platform
            .stream_push("ipl_processing", "tweets", "d9,dhoni\n")
            .unwrap_err();
        assert!(err.to_string().contains("no active stream"), "{err}");

        let info = platform.stream_start("ipl_processing").unwrap();
        assert_eq!(info.sources, vec!["tweets"]);
        assert_eq!(info.endpoints, vec!["players_tweets"]);
        assert!(platform.stream_active("ipl_processing"));

        // Declared columns [date, player] → headerless CSV bodies.
        let push = platform
            .stream_push("ipl_processing", "tweets", "d9,dhoni\nd9,dhoni\nd9,kohli\n")
            .unwrap();
        assert_eq!(push.rows_in, 3);
        assert_eq!(push.generation, gen0 + 1);
        assert_eq!(push.updated, vec![("players_tweets".to_string(), 2)]);
        assert_eq!(
            push.strategies,
            vec![("players_tweets".to_string(), "incremental")],
            "groupby chain classifies incrementally"
        );

        let push2 = platform
            .stream_push("ipl_processing", "tweets", "d9,dhoni\n")
            .unwrap();
        assert_eq!(push2.generation, gen0 + 2);
        // COW snapshot swap: the endpoint table advanced in place.
        let dash = platform.dashboard("ipl_processing").unwrap();
        let t = dash.endpoint_tables.get("players_tweets").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, "count").unwrap().as_int(), Some(3));

        // Telemetry accumulated per tick.
        let s = platform.api_metrics().stream();
        assert_eq!(s.ticks, 2);
        assert_eq!(s.rows_in, 4);

        assert!(platform.stream_stop("ipl_processing"));
        assert!(!platform.stream_active("ipl_processing"));
    }

    #[test]
    fn partition_ranges_are_contiguous_and_covering() {
        for shards in 1..=8usize {
            let p = Partitioning::even(shards);
            for rows in [0usize, 1, 2, 7, 8, 1000, 1001, 1007] {
                let ranges = p.ranges(rows);
                assert_eq!(ranges.len(), shards);
                let mut next = 0;
                for &(offset, len) in &ranges {
                    assert_eq!(offset, next, "shards={shards} rows={rows}");
                    next = offset + len;
                }
                assert_eq!(next, rows, "shards={shards} rows={rows}");
                let (min, max) = ranges
                    .iter()
                    .fold((usize::MAX, 0), |(lo, hi), &(_, l)| (lo.min(l), hi.max(l)));
                assert!(max - min <= 1, "slices differ by at most one row");
            }
        }
        assert!(!Partitioning::single().is_sharded());
        assert!(!Partitioning::even(1).is_sharded());
        assert!(Partitioning::even(4).is_sharded());
        assert_eq!(Partitioning::even(0).shards, 1);
    }

    #[test]
    fn usage_telemetry_accumulates() {
        let platform = seeded();
        platform.save_flow("ipl_processing", PROCESSING).unwrap();
        platform.run_dashboard("ipl_processing").unwrap();
        platform.run_dashboard("ipl_processing").unwrap();
        let usage = platform.log().usage();
        assert_eq!(usage.operators.get("groupby"), Some(&2));
        assert_eq!(platform.log().count("ipl_processing", RunKind::Run), 2);
    }
}
