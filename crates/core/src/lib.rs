//! # shareinsights-core
//!
//! The ShareInsights platform facade: everything figure 24 of the paper
//! draws — flow-file compilation services, extension services, development
//! services, the data API's backing state, and collaboration services —
//! wired into one [`Platform`] object.
//!
//! A typical session mirrors the paper's workflow:
//!
//! ```
//! use shareinsights_core::Platform;
//!
//! let platform = Platform::new();
//! platform.upload_data("demo", "numbers.csv", "k,v\na,1\na,2\nb,3\n");
//! platform.save_flow(
//!     "demo",
//!     r#"
//! D:
//!   numbers: [k, v]
//! D.numbers:
//!   source: 'numbers.csv'
//!   format: csv
//! T:
//!   by_k:
//!     type: groupby
//!     groupby: [k]
//! F:
//!   +D.counts: D.numbers | T.by_k
//! "#,
//! ).unwrap();
//! let run = platform.run_dashboard("demo").unwrap();
//! assert_eq!(run.result.table("counts").unwrap().num_rows(), 2);
//! ```

pub mod dashboard;
pub mod discovery;
pub mod doctor;
pub mod error;
pub mod meta;
pub mod platform;
pub mod telemetry;
pub mod telemetry_history;
pub mod trace;

pub use dashboard::{Dashboard, RunReport};
pub use discovery::{suggest_enrichments, Enrichment};
pub use doctor::{explain, Diagnosis};
pub use error::{PlatformError, Result};
pub use meta::{build_meta_dashboard, profile_table, ColumnProfile, MetaDashboard};
pub use platform::{Partitioning, Platform, StreamPushReport, StreamStartInfo};
pub use telemetry::{
    process_stats, ApiMetrics, IndexStats, LatencyHistogram, OperatorStats, ProcessStats,
    ReactorStats, RouteStats, RunEvent, RunKind, RunLog, SelfScrapeStats, ShardStats,
    ShardWorkerStats, SqlStats, StreamStats, UsageCounts,
};
pub use telemetry_history::{HistoryStats, Sample, ScrapeOutcome, TelemetryHistory};
pub use trace::{AttrValue, EventLog, Span, SpanRecord, TraceId, TraceRecord, Tracer};
