//! Error pin-pointing — §6 future work, implemented: "since the flow file
//! is an abstraction layer, more work needs to be done to enable users to
//! pin-point errors quickly (without leaking the underlying engine errors
//! or debug logs)".
//!
//! [`explain`] turns a platform error into a [`Diagnosis`]: the flow-file
//! element involved, its source line where known, and concrete suggestions
//! — most usefully "did you mean …" corrections for misspelled columns,
//! tasks and data objects, computed by edit distance against what the flow
//! file actually declares.

use crate::error::PlatformError;
use shareinsights_engine::EngineError;
use shareinsights_flowfile::ast::FlowFile;

/// A user-facing diagnosis of a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// What failed, in flow-file vocabulary.
    pub summary: String,
    /// Source line of the implicated element (0 = unknown).
    pub line: usize,
    /// Concrete next steps.
    pub suggestions: Vec<String>,
}

/// Damerau–Levenshtein distance (optimal string alignment variant).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur: Vec<usize> = vec![0; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                cur[j] = cur[j].min(prev2[j - 2] + 1);
            }
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// The closest candidates to `name` within a sane distance budget.
pub fn closest<'a>(name: &str, candidates: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    let budget = (name.len() / 3).clamp(1, 3);
    let mut scored: Vec<(usize, &str)> = candidates
        .into_iter()
        .map(|c| (edit_distance(name, c), c))
        .filter(|(d, _)| *d <= budget && *d > 0)
        .collect();
    scored.sort();
    scored
        .into_iter()
        .take(3)
        .map(|(_, c)| c.to_string())
        .collect()
}

/// Extract a `'quoted'` name from an error message (the engine's errors
/// consistently quote the offending identifier).
fn quoted(message: &str) -> Option<&str> {
    let start = message.find('\'')? + 1;
    let end = start + message[start..].find('\'')?;
    Some(&message[start..end])
}

/// All column names the flow file mentions anywhere — the candidate pool
/// for column typo correction.
fn known_columns(ff: &FlowFile) -> Vec<String> {
    let mut cols: Vec<String> = Vec::new();
    for d in &ff.data {
        for c in &d.columns {
            if !cols.contains(&c.name) {
                cols.push(c.name.clone());
            }
        }
    }
    for t in &ff.tasks {
        for key in ["out_field", "output"] {
            if let Some(v) = t.params.get_scalar(key) {
                if !cols.contains(&v.to_string()) {
                    cols.push(v.to_string());
                }
            }
        }
        if let Some(shareinsights_flowfile::config::ConfigValue::List(aggs)) =
            t.params.get("aggregates")
        {
            for a in aggs {
                if let Some(of) = a.as_map().and_then(|m| m.get_scalar("out_field")) {
                    if !cols.contains(&of.to_string()) {
                        cols.push(of.to_string());
                    }
                }
            }
        }
    }
    cols
}

/// Explain a platform error against the flow file it arose from.
pub fn explain(error: &PlatformError, ff: &FlowFile) -> Diagnosis {
    match error {
        PlatformError::Compile(e) | PlatformError::Execute(e) => explain_engine(e, ff),
        PlatformError::FlowFile(fe) => {
            let first = fe.first();
            Diagnosis {
                summary: first.message.clone(),
                line: first.line,
                suggestions: vec![
                    "check section indentation (two spaces) and that every task has a 'type:'"
                        .to_string(),
                ],
            }
        }
        other => Diagnosis {
            summary: other.to_string(),
            line: 0,
            suggestions: vec![],
        },
    }
}

fn explain_engine(e: &EngineError, ff: &FlowFile) -> Diagnosis {
    match e {
        EngineError::SchemaMismatch { task, flow, message } => {
            let line = ff.task(task).map(|t| t.line).unwrap_or(0);
            let mut suggestions = Vec::new();
            if message.contains("not found") {
                if let Some(missing) = quoted(message) {
                    let close = closest(missing, known_columns(ff).iter().map(String::as_str));
                    if !close.is_empty() {
                        suggestions.push(format!(
                            "did you mean {}?",
                            close
                                .iter()
                                .map(|c| format!("'{c}'"))
                                .collect::<Vec<_>>()
                                .join(" or ")
                        ));
                    }
                }
                suggestions.push(format!(
                    "the columns available to 'T.{task}' are set by whatever precedes it in flow 'D.{flow}' — check the task order"
                ));
            }
            Diagnosis {
                summary: format!("task 'T.{task}' in flow 'D.{flow}': {message}"),
                line,
                suggestions,
            }
        }
        EngineError::TaskConfig { task, message } => {
            let line = ff.task(task).map(|t| t.line).unwrap_or(0);
            let mut suggestions = Vec::new();
            if message.contains("unknown task type") {
                if let Some(bad) = quoted(message) {
                    let builtins = [
                        "filter_by", "groupby", "join", "map", "topn", "sort", "distinct",
                        "limit", "union", "project", "parallel",
                    ];
                    let close = closest(bad, builtins.iter().copied());
                    if !close.is_empty() {
                        suggestions.push(format!("did you mean type: {}?", close.join(" / ")));
                    } else {
                        suggestions.push(
                            "register the extension with Platform::tasks().register_task(...) before saving"
                                .to_string(),
                        );
                    }
                }
            }
            Diagnosis {
                summary: format!("task 'T.{task}': {message}"),
                line,
                suggestions,
            }
        }
        EngineError::UnresolvedData { object, context } => {
            let known: Vec<&str> = ff.data.iter().map(|d| d.name.as_str()).collect();
            let close = closest(object, known.iter().copied());
            let mut suggestions = vec![format!(
                "declare 'D.{object}' with a source, produce it with a flow, or publish it from another dashboard"
            )];
            if !close.is_empty() {
                suggestions.insert(0, format!("did you mean 'D.{}'?", close[0]));
            }
            Diagnosis {
                summary: format!("'D.{object}' used by {context} cannot be resolved"),
                line: 0,
                suggestions,
            }
        }
        EngineError::Cycle { path } => Diagnosis {
            summary: format!("flows form a cycle: {}", path.join(" -> ")),
            line: ff
                .flows
                .iter()
                .find(|f| path.contains(&f.output))
                .map(|f| f.line)
                .unwrap_or(0),
            suggestions: vec![
                "break the cycle by introducing an intermediate data object produced by only one flow"
                    .to_string(),
            ],
        },
        other => Diagnosis {
            summary: other.to_string(),
            line: 0,
            suggestions: vec![],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use shareinsights_flowfile::parse_flow_file;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("teh", "the"), 1, "transposition");
        assert_eq!(edit_distance("noOfTweets", "noOfTweet"), 1);
    }

    #[test]
    fn closest_respects_budget() {
        let c = closest("projct", ["project", "year", "noOfBugs"]);
        assert_eq!(c, vec!["project"]);
        assert!(closest("zzzzzz", ["project", "year"]).is_empty());
        assert!(
            closest("project", ["project"]).is_empty(),
            "exact match is not a typo"
        );
    }

    #[test]
    fn suggests_column_correction() {
        let src = "D:\n  data: [project, year, noOfBugs]\nT:\n  f:\n    type: filter_by\n    filter_expression: projct < 3\nF:\n  +D.out: D.data | T.f\n";
        let platform = Platform::new();
        let err = platform.save_flow("d", src).err();
        // Validation passes (column checks happen at compile); run compile.
        assert!(err.is_none());
        let compile_err = platform.compile_dashboard("d").unwrap_err();
        let ff = parse_flow_file("d", src).unwrap();
        let diag = explain(&compile_err, &ff);
        assert!(diag.summary.contains("T.f"));
        assert!(diag.line > 0, "points at the task's line");
        assert!(
            diag.suggestions.iter().any(|s| s.contains("'project'")),
            "{:?}",
            diag.suggestions
        );
    }

    #[test]
    fn suggests_out_field_columns_too() {
        // The misspelled column was produced by an upstream groupby.
        let src = "D:\n  data: [k, v]\nT:\n  g:\n    type: groupby\n    groupby: [k]\n    aggregates:\n    - operator: sum\n      apply_on: v\n      out_field: total\n  f:\n    type: filter_by\n    filter_expression: totl > 5\nF:\n  +D.out: D.data | T.g | T.f\n";
        let platform = Platform::new();
        platform.save_flow("d", src).unwrap();
        let err = platform.compile_dashboard("d").unwrap_err();
        let ff = parse_flow_file("d", src).unwrap();
        let diag = explain(&err, &ff);
        assert!(
            diag.suggestions.iter().any(|s| s.contains("'total'")),
            "{:?}",
            diag.suggestions
        );
    }

    #[test]
    fn suggests_task_type_correction() {
        let src = "D:\n  data: [k]\nT:\n  g:\n    type: gruopby\n    groupby: [k]\nF:\n  +D.out: D.data | T.g\n";
        let platform = Platform::new();
        platform.save_flow("d", src).unwrap();
        let err = platform.compile_dashboard("d").unwrap_err();
        let ff = parse_flow_file("d", src).unwrap();
        let diag = explain(&err, &ff);
        assert!(
            diag.suggestions.iter().any(|s| s.contains("groupby")),
            "{:?}",
            diag.suggestions
        );
    }

    #[test]
    fn parse_errors_carry_lines() {
        let platform = Platform::new();
        let err = platform.save_flow("d", "Q:\n  x: 1\n").unwrap_err();
        let diag = explain(&err, &FlowFile::default());
        assert_eq!(diag.line, 1);
        assert!(!diag.suggestions.is_empty());
    }
}
