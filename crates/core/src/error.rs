//! Platform-level error type unifying every layer's failures, always in
//! flow-file vocabulary.

use std::fmt;

/// Result alias.
pub type Result<T, E = PlatformError> = std::result::Result<T, E>;

/// Any failure surfaced to a dashboard author.
#[derive(Debug, Clone)]
pub enum PlatformError {
    /// The flow file failed to parse or validate.
    FlowFile(shareinsights_flowfile::FlowError),
    /// Compilation failed.
    Compile(shareinsights_engine::EngineError),
    /// Execution failed.
    Execute(shareinsights_engine::EngineError),
    /// Widget/dashboard construction failed.
    Widget(shareinsights_widgets::WidgetError),
    /// Collaboration (store/merge/publish) failure.
    Collab(String),
    /// No dashboard with that name.
    NoDashboard(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::FlowFile(e) => write!(f, "flow file error:\n{e}"),
            PlatformError::Compile(e) => write!(f, "compile error: {e}"),
            PlatformError::Execute(e) => write!(f, "execution error: {e}"),
            PlatformError::Widget(e) => write!(f, "widget error: {e}"),
            PlatformError::Collab(m) => write!(f, "collaboration error: {m}"),
            PlatformError::NoDashboard(d) => write!(f, "no dashboard '{d}'"),
            PlatformError::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<shareinsights_flowfile::FlowError> for PlatformError {
    fn from(e: shareinsights_flowfile::FlowError) -> Self {
        PlatformError::FlowFile(e)
    }
}

impl From<shareinsights_widgets::WidgetError> for PlatformError {
    fn from(e: shareinsights_widgets::WidgetError) -> Self {
        PlatformError::Widget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = PlatformError::NoDashboard("x".into());
        assert_eq!(e.to_string(), "no dashboard 'x'");
        let e: PlatformError = shareinsights_flowfile::FlowError::single(3, "bad section").into();
        assert!(e.to_string().contains("line 3"));
    }
}
