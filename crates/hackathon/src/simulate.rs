//! The hackathon protocol of §5.1, executed against a real [`Platform`].
//!
//! Phases:
//! 1. **Setup** — organizers create one help/sample dashboard per dataset
//!    with practice data uploaded.
//! 2. **Training (5 days)** — each team forks its dataset's sample and does
//!    practice runs; volume rises with skill (conscientious teams practice
//!    more) with seeded noise so the figure-32 scatter has spread.
//! 3. **Competition (6 hours)** — competition data replaces practice data;
//!    teams work through their staged flow files, each save→run cycle
//!    logged; low skill+practice means more failed runs and fewer completed
//!    stages.
//! 4. **Judging** — internal review (flow-file quality: stages completed,
//!    custom tasks) and external review (dashboard value: widgets, layout),
//!    combined into a score; top-7 are finalists, top-3 winners.

use crate::datasets::{dataset_roster, DatasetKind, DatasetSpec};
use crate::teams::{Team, TeamRoster};
use shareinsights_core::{Platform, RunKind};
use shareinsights_datagen::SeededRng;
use shareinsights_engine::ext::FnTask;
use std::sync::Arc;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct HackathonConfig {
    /// RNG seed for the whole event.
    pub seed: u64,
    /// Number of teams (the paper: 52).
    pub teams: usize,
    /// Mean practice runs for a maximally skilled team.
    pub max_practice_runs: f64,
    /// Mean competition runs for a fully engaged team.
    pub max_competition_runs: f64,
}

impl Default for HackathonConfig {
    fn default() -> Self {
        HackathonConfig {
            seed: 2015,
            teams: 52,
            max_practice_runs: 24.0,
            max_competition_runs: 18.0,
        }
    }
}

/// Per-team outcome.
#[derive(Debug, Clone)]
pub struct TeamOutcome {
    /// The team.
    pub team: Team,
    /// Practice runs performed.
    pub practice_runs: usize,
    /// Competition runs performed.
    pub competition_runs: usize,
    /// Failed runs during competition (error events).
    pub failed_runs: usize,
    /// Stages completed (0..=3).
    pub stages_completed: usize,
    /// Whether the team shipped a custom task.
    pub used_custom_task: bool,
    /// Flow-file size at competition start (figure 35).
    pub starting_bytes: usize,
    /// Final flow-file size.
    pub final_bytes: usize,
    /// Judged score.
    pub score: f64,
    /// Finalist (top 7)?
    pub finalist: bool,
    /// Winner (top 3)?
    pub winner: bool,
}

/// The whole event's outcome.
pub struct HackathonOutcome {
    /// Per-team results, in team-number order.
    pub teams: Vec<TeamOutcome>,
    /// The platform with the full telemetry log (figures read from here).
    pub platform: Platform,
    /// The datasets used.
    pub datasets: Vec<DatasetSpec>,
}

/// Register the custom ticket-resolution predictor — "one team wrote a task
/// to predict resolution dates of service tickets based on keywords present
/// in the ticket" (§5.2.2 obs. 2).
pub fn register_custom_tasks(platform: &Platform) {
    platform.tasks().register_task(Arc::new(FnTask::new(
        "predict_resolution",
        |s: &shareinsights_tabular::Schema| {
            s.with_field(shareinsights_tabular::Field::new(
                "predicted_days",
                shareinsights_tabular::DataType::Int64,
            ))
            .map_err(|e| shareinsights_engine::EngineError::Internal(e.to_string()))
        },
        |t: &shareinsights_tabular::Table| {
            let col = t
                .column("description")
                .map_err(|e| shareinsights_engine::ext::exec_err("predict_resolution", e))?;
            let vals: Vec<shareinsights_tabular::Value> = (0..t.num_rows())
                .map(|i| {
                    let d = col.str_at(i).unwrap_or("");
                    let days = if d.contains("backup")
                        || d.contains("restore")
                        || d.contains("replication")
                    {
                        7
                    } else if d.contains("laptop") || d.contains("disk") {
                        5
                    } else {
                        2
                    };
                    shareinsights_tabular::Value::Int(days)
                })
                .collect();
            t.with_column(
                "predicted_days",
                shareinsights_tabular::Column::from_values(&vals),
            )
            .map_err(|e| shareinsights_engine::ext::exec_err("predict_resolution", e))
        },
    )));
}

/// Run the full simulation.
pub fn run_hackathon(cfg: &HackathonConfig) -> HackathonOutcome {
    let mut rng = SeededRng::new(cfg.seed);
    let platform = Platform::new();
    register_custom_tasks(&platform);
    let datasets = dataset_roster();

    // Phase 1: organizers publish help dashboards with practice data.
    for spec in &datasets {
        let help = format!("help_{}", spec.name);
        for (path, content) in spec.practice_files() {
            platform.upload_data(&help, &path, content);
        }
        platform
            .save_flow_as(&help, &spec.sample_flow(), "organizers")
            .expect("sample dashboards are valid");
    }

    let roster = TeamRoster::generate(cfg.teams, datasets.len(), &mut rng);
    let mut outcomes: Vec<TeamOutcome> = Vec::with_capacity(roster.teams.len());

    for team in &roster.teams {
        let spec = &datasets[team.dataset];
        let help = format!("help_{}", spec.name);

        // Phase 2a: fork the sample (figure 35's starting sizes).
        platform
            .fork_dashboard(&help, &team.name, &team.members[0])
            .expect("fork succeeds");
        let starting_bytes = platform.dashboard(&team.name).unwrap().flow_bytes();

        // Phase 2b: practice. Volume rises with skill + noise; every run is
        // a real platform run on practice data (already copied by the fork).
        let practice_runs = rng
            .count_around(2.0 + team.skill * cfg.max_practice_runs)
            .max(1);
        let use_custom = spec.kind == DatasetKind::Tickets && team.skill > 0.72;
        let stages = spec.stages(use_custom);
        for p in 0..practice_runs {
            // Teams cycle through early stages while practicing.
            let stage = &stages[(p % 2).min(stages.len() - 1)];
            let _ = platform.save_flow_as(&team.name, stage, &team.members[p % 5]);
            let _ = platform.run_dashboard(&team.name);
        }

        // Phase 3: competition. Swap in the competition ("real") data.
        for (path, content) in spec.competition_files() {
            platform.upload_data(&team.name, &path, content);
        }
        // Effectiveness = skill + practice effect; determines how many
        // stages the team completes in six hours and its error rate.
        let practice_effect = (practice_runs as f64 / cfg.max_practice_runs).min(1.0);
        let effectiveness = 0.6 * team.skill + 0.4 * practice_effect;
        let stages_completed = 1
            + (effectiveness * (stages.len() - 1) as f64 + rng.unit() * 0.8)
                .floor()
                .min((stages.len() - 1) as f64) as usize;
        let competition_runs = rng
            .count_around(3.0 + effectiveness * cfg.max_competition_runs)
            .max(2);
        let mut failed_runs = 0;
        for c in 0..competition_runs {
            // Progress through stages over the session.
            let idx = ((c as f64 / competition_runs as f64) * stages_completed as f64) as usize;
            let stage = &stages[idx.min(stages_completed)];
            // Low-effectiveness teams sometimes save broken files: the
            // error-message telemetry of §5.2.1. Simulated by corrupting
            // the text (an unclosed bracket).
            let broken = rng.chance(0.25 * (1.0 - effectiveness));
            if broken {
                let bad = stage.replace("groupby: [", "groupby: [broken");
                // Still valid? Make definitely broken half the time.
                let bad = if rng.chance(0.5) {
                    format!("{bad}\nF:\n  D.oops: D.missing_obj | T.missing_task\n")
                } else {
                    bad
                };
                if platform
                    .save_flow_as(&team.name, &bad, &team.members[c % 5])
                    .is_err()
                    || platform.run_dashboard(&team.name).is_err()
                {
                    failed_runs += 1;
                    continue;
                }
            }
            let _ = platform.save_flow_as(&team.name, stage, &team.members[c % 5]);
            if platform.run_dashboard(&team.name).is_err() {
                failed_runs += 1;
            } else if stage.contains("W:") {
                let _ = platform.open_dashboard(&team.name);
            }
        }
        let final_bytes = platform.dashboard(&team.name).unwrap().flow_bytes();

        // Phase 4 inputs.
        outcomes.push(TeamOutcome {
            team: team.clone(),
            practice_runs,
            competition_runs,
            failed_runs,
            stages_completed,
            used_custom_task: use_custom && stages_completed >= 2,
            starting_bytes,
            final_bytes,
            score: 0.0,
            finalist: false,
            winner: false,
        });
    }

    // Phase 4: judging. Internal committee reviews the flow file (stage
    // depth, custom tasks, clean runs); external committee the dashboard
    // (widgets/layout = later stages). Noise models panel subjectivity.
    for o in &mut outcomes {
        let clean_ratio = 1.0 - (o.failed_runs as f64 / o.competition_runs.max(1) as f64).min(1.0);
        let internal = 0.5 * (o.stages_completed as f64 / 3.0)
            + 0.2 * clean_ratio
            + if o.used_custom_task { 0.3 } else { 0.0 };
        let external = o.stages_completed as f64 / 3.0;
        o.score = 0.45 * internal + 0.4 * external + 0.15 * rng.unit();
    }
    let mut ranked: Vec<usize> = (0..outcomes.len()).collect();
    ranked.sort_by(|&a, &b| {
        outcomes[b]
            .score
            .partial_cmp(&outcomes[a].score)
            .expect("scores are finite")
    });
    for (rank, &i) in ranked.iter().enumerate() {
        outcomes[i].finalist = rank < 7;
        outcomes[i].winner = rank < 3;
    }

    HackathonOutcome {
        teams: outcomes,
        platform,
        datasets,
    }
}

impl HackathonOutcome {
    /// The finalists' team numbers (the figure-32 annotation).
    pub fn finalists(&self) -> Vec<usize> {
        self.teams
            .iter()
            .filter(|t| t.finalist)
            .map(|t| t.team.number)
            .collect()
    }

    /// The winners' team numbers.
    pub fn winners(&self) -> Vec<usize> {
        self.teams
            .iter()
            .filter(|t| t.winner)
            .map(|t| t.team.number)
            .collect()
    }

    /// Cross-check a team's run telemetry against the platform log.
    pub fn logged_runs(&self, team: &str) -> usize {
        self.platform.log().count(team, RunKind::Run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HackathonConfig {
        HackathonConfig {
            seed: 7,
            teams: 10,
            max_practice_runs: 6.0,
            max_competition_runs: 5.0,
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_hackathon(&small());
        let b = run_hackathon(&small());
        let sa: Vec<(usize, usize, f64)> = a
            .teams
            .iter()
            .map(|t| (t.practice_runs, t.competition_runs, t.score))
            .collect();
        let sb: Vec<(usize, usize, f64)> = b
            .teams
            .iter()
            .map(|t| (t.practice_runs, t.competition_runs, t.score))
            .collect();
        assert_eq!(sa, sb);
        assert_eq!(a.finalists(), b.finalists());
    }

    #[test]
    fn winners_are_finalists_and_counts_match_paper_shape() {
        let out = run_hackathon(&small());
        let winners = out.winners();
        let finalists = out.finalists();
        assert_eq!(winners.len(), 3);
        assert_eq!(finalists.len(), 7);
        for w in &winners {
            assert!(finalists.contains(w), "winners ⊂ finalists");
        }
    }

    #[test]
    fn telemetry_matches_outcomes() {
        let out = run_hackathon(&small());
        for t in &out.teams {
            let logged = out.logged_runs(&t.team.name);
            // Every attempted run (including failures that reached the run
            // stage) is in the log; compile failures at save never reach a
            // run, so logged <= attempted and >= successful runs.
            assert!(
                logged >= t.competition_runs - t.failed_runs,
                "{}",
                t.team.name
            );
        }
        // Forks logged with starting sizes (figure 35's series).
        let sizes = out.platform.log().starting_sizes();
        for t in &out.teams {
            assert!(sizes.contains_key(&t.team.name));
            assert!(t.starting_bytes > 200, "forked starts are non-trivial");
        }
    }

    #[test]
    fn practice_correlates_with_success() {
        // The figure-32 claim: finalists cluster at high practice.
        let out = run_hackathon(&HackathonConfig {
            seed: 11,
            teams: 30,
            ..Default::default()
        });
        let avg = |pred: &dyn Fn(&TeamOutcome) -> bool| -> f64 {
            let v: Vec<f64> = out
                .teams
                .iter()
                .filter(|t| pred(t))
                .map(|t| t.practice_runs as f64)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let finalist_avg = avg(&|t| t.finalist);
        let rest_avg = avg(&|t| !t.finalist);
        assert!(
            finalist_avg > rest_avg,
            "finalists practice more: {finalist_avg:.1} vs {rest_avg:.1}"
        );
    }

    #[test]
    fn flow_files_grow_during_competition() {
        let out = run_hackathon(&small());
        let grown = out
            .teams
            .iter()
            .filter(|t| t.final_bytes > t.starting_bytes)
            .count();
        assert!(grown * 2 > out.teams.len(), "most teams extend the fork");
    }

    #[test]
    fn some_custom_tasks_ship() {
        let out = run_hackathon(&HackathonConfig {
            seed: 3,
            teams: 30,
            ..Default::default()
        });
        assert!(
            out.teams.iter().any(|t| t.used_custom_task),
            "at least one team used the predictor"
        );
    }
}
