//! # shareinsights-hackathon
//!
//! The Race2Insights evaluation substrate (§5 of the paper).
//!
//! The paper's evidence is a 52-team internal hackathon: five-member teams
//! of varying skill, five days of practice on synthetic data, a six-hour
//! competition on real data, two-round judging, and platform telemetry
//! (figures 31/32/35). That event cannot be re-run, so this crate
//! *simulates* it — but against the **real platform**: every practice and
//! competition run saves a real flow file, uploads real synthetic data,
//! compiles and executes through the engine, and lands in the platform's
//! telemetry log. The figures are then read back out of that log, exactly
//! as §5.2.1 describes ("the data generated during the competition …
//! were used to build dashboards").
//!
//! Deterministic given a seed: the same [`HackathonConfig`] always produces
//! the same figures.

pub mod datasets;
pub mod figures;
pub mod simulate;
pub mod teams;

pub use datasets::{dataset_roster, DatasetKind, DatasetSpec};
pub use figures::{Fig31Series, Fig32Point, Fig35Bar, Figures};
pub use simulate::{run_hackathon, HackathonConfig, HackathonOutcome, TeamOutcome};
pub use teams::{Team, TeamRoster};
