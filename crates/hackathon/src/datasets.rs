//! The seven competition datasets (§5.1: "We identified seven interesting
//! data-sets that contained both public and enterprise data. Each data-set
//! had multiple files that contained both transaction as well as reference
//! data").
//!
//! Each dataset provides: practice files (clean synthetic — §5.2.2 obs. 4:
//! "teams prepared synthetic data for practice runs"), competition files
//! (freshly seeded and *corrupted*, forcing longer cleaning pipelines), a
//! sample/help dashboard teams fork from, and the staged flow files a team
//! incrementally builds during the six hours.

use shareinsights_datagen::{apache, dirty, ipl, retail, tickets};
use shareinsights_tabular::io::csv::write_csv;

/// Which generator family a dataset draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Apache open-source project activity (the §3 use case).
    Apache,
    /// IPL tweets (the §3.7 use case).
    Ipl,
    /// Service-desk tickets (figure 33).
    Tickets,
    /// Retail sales ("branderstanding", figure 34).
    Retail,
}

/// One competition dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Stable name (also used in dashboard names).
    pub name: &'static str,
    /// Generator family.
    pub kind: DatasetKind,
    /// Seed for practice data.
    pub practice_seed: u64,
    /// Seed for competition data (different draw = "the real data").
    pub competition_seed: u64,
}

/// The seven datasets.
pub fn dataset_roster() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "apache_activity",
            kind: DatasetKind::Apache,
            practice_seed: 101,
            competition_seed: 201,
        },
        DatasetSpec {
            name: "ipl_tweets",
            kind: DatasetKind::Ipl,
            practice_seed: 102,
            competition_seed: 202,
        },
        DatasetSpec {
            name: "service_desk",
            kind: DatasetKind::Tickets,
            practice_seed: 103,
            competition_seed: 203,
        },
        DatasetSpec {
            name: "retail_brands",
            kind: DatasetKind::Retail,
            practice_seed: 104,
            competition_seed: 204,
        },
        DatasetSpec {
            name: "apache_community",
            kind: DatasetKind::Apache,
            practice_seed: 105,
            competition_seed: 205,
        },
        DatasetSpec {
            name: "ipl_regions",
            kind: DatasetKind::Ipl,
            practice_seed: 106,
            competition_seed: 206,
        },
        DatasetSpec {
            name: "retail_regions",
            kind: DatasetKind::Retail,
            practice_seed: 107,
            competition_seed: 207,
        },
    ]
}

impl DatasetSpec {
    /// Data files for the practice phase (clean).
    pub fn practice_files(&self) -> Vec<(String, String)> {
        self.files(self.practice_seed, false)
    }

    /// Data files for the competition (new seed, corrupted — the "real
    /// data" of §5.2.2 obs. 4).
    pub fn competition_files(&self) -> Vec<(String, String)> {
        self.files(self.competition_seed, true)
    }

    fn files(&self, seed: u64, corrupt: bool) -> Vec<(String, String)> {
        let maybe_dirty = |t: shareinsights_tabular::Table| {
            if corrupt {
                dirty::corrupt(
                    &t,
                    &dirty::DirtyConfig {
                        seed: seed ^ 0xD1,
                        ..Default::default()
                    },
                )
            } else {
                t
            }
        };
        match self.kind {
            DatasetKind::Apache => {
                let corpus = apache::generate(&apache::ApacheConfig {
                    seed,
                    ..Default::default()
                });
                vec![
                    (
                        "svn_jira.csv".into(),
                        write_csv(&maybe_dirty(corpus.svn_jira_summary), ','),
                    ),
                    (
                        "releases.csv".into(),
                        write_csv(&maybe_dirty(corpus.releases), ','),
                    ),
                    (
                        "stack_summary.csv".into(),
                        write_csv(&corpus.stack_summary, ','),
                    ),
                    ("categories.csv".into(), write_csv(&corpus.categories, ',')),
                ]
            }
            DatasetKind::Ipl => {
                let corpus = ipl::generate(&ipl::IplConfig {
                    seed,
                    tweets: if corrupt { 1_200 } else { 600 },
                    ..Default::default()
                });
                vec![
                    ("tweets.json".into(), corpus.tweets_ndjson),
                    ("players.txt".into(), corpus.players_dict),
                    ("teams.csv".into(), corpus.teams_dict),
                    ("dim_teams.csv".into(), write_csv(&corpus.dim_teams, ',')),
                ]
            }
            DatasetKind::Tickets => {
                let t = tickets::generate(&tickets::TicketsConfig {
                    seed,
                    tickets: 800,
                    ..Default::default()
                });
                vec![("tickets.csv".into(), write_csv(&maybe_dirty(t), ','))]
            }
            DatasetKind::Retail => {
                let corpus = retail::generate(&retail::RetailConfig {
                    seed,
                    transactions: 1_200,
                    ..Default::default()
                });
                vec![
                    (
                        "sales.csv".into(),
                        write_csv(&maybe_dirty(corpus.sales), ','),
                    ),
                    ("products.csv".into(), write_csv(&corpus.products, ',')),
                ]
            }
        }
    }

    /// The organizer-provided sample dashboard (what teams fork — §5.2.2
    /// obs. 3).
    pub fn sample_flow(&self) -> String {
        self.stages(false)[0].clone()
    }

    /// Cumulative flow-file stages a team works through. Stage 0 is the
    /// forked sample; later stages add flows, then widgets, then layout.
    /// `use_custom_task` swaps a platform task for a registered custom one
    /// (only skilled teams do this — §5.2.2 obs. 2).
    pub fn stages(&self, use_custom_task: bool) -> Vec<String> {
        match self.kind {
            DatasetKind::Apache => apache_stages(),
            DatasetKind::Ipl => ipl_stages(),
            DatasetKind::Tickets => tickets_stages(use_custom_task),
            DatasetKind::Retail => retail_stages(),
        }
    }
}

fn apache_stages() -> Vec<String> {
    let stage0 = r#"
D:
  svn_jira_summary: [project, year, noOfBugs, noOfCheckins, noOfEmailsTotal]
D.svn_jira_summary:
  source: 'svn_jira.csv'
  format: csv
T:
  get_svn_jira_count:
    type: groupby
    groupby: [project, year]
    aggregates:
    - operator: sum
      apply_on: noOfCheckins
      out_field: total_checkins
    - operator: sum
      apply_on: noOfBugs
      out_field: total_jira
F:
  +D.checkin_jira_emails: D.svn_jira_summary | T.get_svn_jira_count
"#
    .to_string();
    let stage1 = stage0.replace(
        "F:\n",
        r#"  project_totals:
    type: groupby
    groupby: [project]
    aggregates:
    - operator: sum
      apply_on: noOfCheckins
      out_field: total_checkins
F:
  +D.project_activity: D.svn_jira_summary | T.project_totals
"#,
    );
    let stage2 = format!(
        "{stage1}W:\n  project_bubble:\n    type: BubbleChart\n    source: D.project_activity\n    text: project\n    size: total_checkins\n"
    );
    let stage3 = format!(
        "{stage2}  activity_grid:\n    type: DataGrid\n    source: D.checkin_jira_emails | T.filter_projects\nT:\n  filter_projects:\n    type: filter_by\n    filter_by: [project]\n    filter_source: W.project_bubble\n    filter_val: [text]\nL:\n  description: Apache Project Analysis\n  rows:\n  - [span5: W.project_bubble, span7: W.activity_grid]\n"
    );
    vec![stage0, stage1, stage2, stage3]
}

fn ipl_stages() -> Vec<String> {
    let stage0 = r#"
D:
  ipl_tweets: [postedTime => created_at, body => text, location => user.location]
D.ipl_tweets:
  source: 'tweets.json'
  format: json
T:
  norm_ipldate:
    type: map
    operator: date
    transform: postedTime
    input_format: 'E MMM dd HH:mm:ss Z yyyy'
    output_format: yyyy-MM-dd
    output: date
  extract_players:
    type: map
    operator: extract
    transform: body
    dict: players.txt
    output: player
  players_pipeline:
    parallel: [T.norm_ipldate, T.extract_players]
  players_count:
    type: groupby
    groupby: [date, player]
F:
  D.players_tweets: D.ipl_tweets | T.players_pipeline | T.players_count
  D.players_tweets:
    endpoint: true
"#
    .to_string();
    let stage1 = stage0.replace(
        "F:\n",
        r#"  extract_teams:
    type: map
    operator: extract
    transform: body
    dict: teams.csv
    output: team
  teams_pipeline:
    parallel: [T.norm_ipldate, T.extract_teams]
  teams_count:
    type: groupby
    groupby: [date, team]
F:
  +D.teams_tweets: D.ipl_tweets | T.teams_pipeline | T.teams_count
"#,
    );
    let stage2 = format!(
        "{stage1}W:\n  ipl_duration:\n    type: Slider\n    source: ['2013-05-02', '2013-05-27']\n    range: true\n  playertweets:\n    type: WordCloud\n    source: D.players_tweets | T.filter_by_date | T.aggregate_by_player\n    text: player\n    size: noOfTweets\nT:\n  filter_by_date:\n    type: filter_by\n    filter_by: [date]\n    filter_source: W.ipl_duration\n  aggregate_by_player:\n    type: groupby\n    groupby: [player]\n    aggregates:\n    - operator: sum\n      apply_on: count\n      out_field: noOfTweets\n"
    );
    let stage3 = format!(
        "{stage2}  aggregate_by_team:\n    type: groupby\n    groupby: [team]\n    aggregates:\n    - operator: sum\n      apply_on: count\n      out_field: noOfTweets\nW:\n  teamtweets:\n    type: WordCloud\n    source: D.teams_tweets | T.filter_by_date | T.aggregate_by_team\n    text: team\n    size: noOfTweets\nL:\n  description: Clash of Titans\n  rows:\n  - [span11: W.ipl_duration]\n  - [span6: W.playertweets, span5: W.teamtweets]\n"
    );
    vec![stage0, stage1, stage2, stage3]
}

fn tickets_stages(use_custom_task: bool) -> Vec<String> {
    let stage0 = r#"
D:
  tickets: [ticket_id, opened, closed, category, priority, description, resolution_days]
D.tickets:
  source: 'tickets.csv'
  format: csv
T:
  by_category:
    type: groupby
    groupby: [category]
    aggregates:
    - operator: avg
      apply_on: resolution_days
      out_field: avg_days
    - operator: count
      apply_on: ticket_id
      out_field: tickets
F:
  +D.category_stats: D.tickets | T.by_category
"#
    .to_string();
    let stage1 = stage0.replace(
        "F:\n",
        r#"  by_priority:
    type: groupby
    groupby: [priority]
    aggregates:
    - operator: count
      apply_on: ticket_id
      out_field: tickets
F:
  +D.priority_stats: D.tickets | T.by_priority
"#,
    );
    // Skilled teams add the custom resolution predictor (§5.2.2 obs. 2).
    let stage2 = if use_custom_task {
        stage1.replace(
            "F:\n",
            "  predictor:\n    type: predict_resolution\nF:\n  +D.predictions: D.tickets | T.predictor | T.by_category_pred\n",
        ).replace(
            "T:\n",
            "T:\n  by_category_pred:\n    type: groupby\n    groupby: [category]\n    aggregates:\n    - operator: avg\n      apply_on: predicted_days\n      out_field: predicted_avg\n",
        )
    } else {
        // Unskilled path: a plain top-categories flow instead.
        stage1.replace(
            "F:\n",
            "  top_categories:\n    type: topn\n    groupby: [priority]\n    orderby_column: [resolution_days DESC]\n    limit: 5\nF:\n  +D.slowest_tickets: D.tickets | T.top_categories\n",
        )
    };
    let stage3 = format!(
        "{stage2}W:\n  category_bar:\n    type: Bar\n    source: D.category_stats\n    x: category\n    y: avg_days\n  ticket_grid:\n    type: DataGrid\n    source: D.priority_stats\nL:\n  description: Service Desk Ticket Analysis\n  rows:\n  - [span6: W.category_bar, span6: W.ticket_grid]\n"
    );
    vec![stage0, stage1, stage2, stage3]
}

fn retail_stages() -> Vec<String> {
    let stage0 = r#"
D:
  sales: [date, brand, region, units, revenue]
  products: [brand, category, unit_price]
D.sales:
  source: 'sales.csv'
  format: csv
D.products:
  source: 'products.csv'
  format: csv
T:
  brand_revenue:
    type: groupby
    groupby: [brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: total_revenue
F:
  +D.brand_totals: D.sales | T.brand_revenue
"#
    .to_string();
    let stage1 = stage0.replace(
        "F:\n",
        r#"  join_category:
    type: join
    left: brand_totals by brand
    right: products by brand
    join_condition: left outer
    project:
      brand_totals_brand: brand
      brand_totals_total_revenue: total_revenue
      products_category: category
F:
  +D.brand_catalog: (D.brand_totals, D.products) | T.join_category
"#,
    );
    let stage2 = format!(
        "{stage1}W:\n  brand_pie:\n    type: Pie\n    source: D.brand_catalog\n    text: brand\n    size: total_revenue\n"
    );
    let stage3 = format!(
        "{stage2}  category_cloud:\n    type: WordCloud\n    source: D.brand_catalog | T.by_category\n    text: category\n    size: revenue_sum\nT:\n  by_category:\n    type: groupby\n    groupby: [category]\n    aggregates:\n    - operator: sum\n      apply_on: total_revenue\n      out_field: revenue_sum\nL:\n  description: Branderstanding\n  rows:\n  - [span6: W.brand_pie, span6: W.category_cloud]\n"
    );
    vec![stage0, stage1, stage2, stage3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_core::Platform;
    use shareinsights_engine::ext::FnTask;
    use std::sync::Arc;

    fn register_predictor(platform: &Platform) {
        platform.tasks().register_task(Arc::new(FnTask::new(
            "predict_resolution",
            |s: &shareinsights_tabular::Schema| {
                s.with_field(shareinsights_tabular::Field::new(
                    "predicted_days",
                    shareinsights_tabular::DataType::Int64,
                ))
                .map_err(|e| shareinsights_engine::EngineError::Internal(e.to_string()))
            },
            |t: &shareinsights_tabular::Table| {
                let col = t
                    .column("description")
                    .map_err(|e| shareinsights_engine::ext::exec_err("predict_resolution", e))?;
                let vals: Vec<shareinsights_tabular::Value> = (0..t.num_rows())
                    .map(|i| {
                        let d = col.str_at(i).unwrap_or("");
                        shareinsights_tabular::Value::Int(
                            if d.contains("backup") || d.contains("restore") {
                                7
                            } else {
                                2
                            },
                        )
                    })
                    .collect();
                t.with_column(
                    "predicted_days",
                    shareinsights_tabular::Column::from_values(&vals),
                )
                .map_err(|e| shareinsights_engine::ext::exec_err("predict_resolution", e))
            },
        )));
    }

    #[test]
    fn roster_has_seven_datasets() {
        let roster = dataset_roster();
        assert_eq!(roster.len(), 7);
        let names: std::collections::BTreeSet<&str> = roster.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 7, "unique names");
    }

    #[test]
    fn every_stage_of_every_dataset_runs_on_the_platform() {
        // The critical invariant: the simulator's flow files are *real* —
        // each stage parses, compiles and executes against practice data.
        for spec in dataset_roster().iter().take(4) {
            let platform = Platform::new();
            register_predictor(&platform);
            let dash = format!("check_{}", spec.name);
            for (path, content) in spec.practice_files() {
                platform.upload_data(&dash, &path, content);
            }
            let use_custom = spec.kind == DatasetKind::Tickets;
            for (si, stage) in spec.stages(use_custom).iter().enumerate() {
                platform
                    .save_flow(&dash, stage)
                    .unwrap_or_else(|e| panic!("{} stage {si} save: {e}", spec.name));
                let run = platform
                    .run_dashboard(&dash)
                    .unwrap_or_else(|e| panic!("{} stage {si} run: {e}", spec.name));
                assert!(
                    !run.result.endpoints.is_empty(),
                    "{} stage {si} produced endpoints",
                    spec.name
                );
                // Final stages open as dashboards with widgets.
                if stage.contains("W:") {
                    platform
                        .open_dashboard(&dash)
                        .unwrap_or_else(|e| panic!("{} stage {si} open: {e}", spec.name));
                }
            }
        }
    }

    #[test]
    fn competition_files_differ_and_are_dirty() {
        let spec = &dataset_roster()[2]; // tickets (csv, corrupted)
        let practice = spec.practice_files();
        let competition = spec.competition_files();
        assert_eq!(practice.len(), competition.len());
        assert_ne!(practice[0].1, competition[0].1, "different data");
        // Corruption leaves visible artefacts (padded cells / mangled dates).
        let dirty_content = &competition[0].1;
        assert!(
            dirty_content.contains("  ") || dirty_content.contains('/'),
            "corruption visible"
        );
    }

    #[test]
    fn stages_grow_monotonically() {
        for spec in dataset_roster() {
            let stages = spec.stages(false);
            assert!(stages.len() >= 4);
            for w in stages.windows(2) {
                assert!(w[1].len() > w[0].len(), "{} stages grow", spec.name);
            }
        }
    }

    #[test]
    fn custom_task_stage_differs() {
        let spec = dataset_roster()
            .into_iter()
            .find(|d| d.kind == DatasetKind::Tickets)
            .unwrap();
        let plain = spec.stages(false);
        let custom = spec.stages(true);
        assert_eq!(plain[0], custom[0], "sample identical");
        assert!(custom[2].contains("predict_resolution"));
        assert!(!plain[2].contains("predict_resolution"));
    }
}
