//! Team model: §5.1's "fifty two teams … each team had five members …
//! varying skill level ranging from zero to little programming background
//! at one end of the spectrum to significant skills in data processing at
//! the other".

use shareinsights_datagen::SeededRng;

/// One competing team.
#[derive(Debug, Clone, PartialEq)]
pub struct Team {
    /// 1-based team number (the paper labels teams 1..52).
    pub number: usize,
    /// Dashboard-safe name (`team_12`).
    pub name: String,
    /// Skill in [0, 1]: drives practice volume, error rate and polish.
    pub skill: f64,
    /// Index into the dataset roster (assigned by lottery, §5.1).
    pub dataset: usize,
    /// Five members, named for commit attribution.
    pub members: [String; 5],
}

/// The full roster.
#[derive(Debug, Clone)]
pub struct TeamRoster {
    /// Teams in number order.
    pub teams: Vec<Team>,
}

impl TeamRoster {
    /// Generate a roster: skills spread over the full range (beta-ish
    /// shape: most teams mid-skill, tails at both ends), datasets assigned
    /// round-lottery.
    pub fn generate(n_teams: usize, n_datasets: usize, rng: &mut SeededRng) -> TeamRoster {
        let mut teams = Vec::with_capacity(n_teams);
        // Lottery: shuffle dataset assignments.
        let mut assignment: Vec<usize> = (0..n_teams).map(|i| i % n_datasets).collect();
        for i in (1..assignment.len()).rev() {
            let j = rng.index(i + 1);
            assignment.swap(i, j);
        }
        for number in 1..=n_teams {
            // Sum of two uniforms: triangular distribution over [0,1].
            let skill = ((rng.unit() + rng.unit()) / 2.0).clamp(0.02, 0.98);
            let members = std::array::from_fn(|m| format!("t{number}_member{}", m + 1));
            teams.push(Team {
                number,
                name: format!("team_{number}"),
                skill,
                dataset: assignment[number - 1],
                members,
            });
        }
        TeamRoster { teams }
    }

    /// Team by number.
    pub fn team(&self, number: usize) -> Option<&Team> {
        self.teams.iter().find(|t| t.number == number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_deterministic_and_shaped() {
        let mut r1 = SeededRng::new(5);
        let mut r2 = SeededRng::new(5);
        let a = TeamRoster::generate(52, 7, &mut r1);
        let b = TeamRoster::generate(52, 7, &mut r2);
        assert_eq!(a.teams, b.teams);
        assert_eq!(a.teams.len(), 52);
        assert_eq!(a.teams[0].number, 1);
        assert_eq!(a.teams[51].name, "team_52");
    }

    #[test]
    fn skills_span_the_range() {
        let mut rng = SeededRng::new(5);
        let roster = TeamRoster::generate(52, 7, &mut rng);
        let min = roster.teams.iter().map(|t| t.skill).fold(1.0, f64::min);
        let max = roster.teams.iter().map(|t| t.skill).fold(0.0, f64::max);
        assert!(min < 0.3, "low-skill teams exist ({min})");
        assert!(max > 0.7, "high-skill teams exist ({max})");
    }

    #[test]
    fn datasets_assigned_roughly_evenly() {
        let mut rng = SeededRng::new(5);
        let roster = TeamRoster::generate(52, 7, &mut rng);
        let mut counts = [0usize; 7];
        for t in &roster.teams {
            counts[t.dataset] += 1;
        }
        for c in counts {
            assert!((6..=9).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn lookup_by_number() {
        let mut rng = SeededRng::new(5);
        let roster = TeamRoster::generate(10, 3, &mut rng);
        assert_eq!(roster.team(7).unwrap().number, 7);
        assert!(roster.team(99).is_none());
    }
}
