//! Figure extraction: the series behind figures 31, 32 and 35 of the
//! paper, read from a simulated event's platform telemetry.

use crate::simulate::HackathonOutcome;
use shareinsights_core::RunKind;

/// Figure 31 — "Platform usage": operator and widget popularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig31Series {
    /// `(operator, uses)` descending.
    pub operators: Vec<(String, usize)>,
    /// `(widget type, uses)` descending.
    pub widgets: Vec<(String, usize)>,
}

/// Figure 32 — "Does practice matter?": one point per team.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig32Point {
    /// Team number.
    pub team: usize,
    /// Practice runs (x-axis).
    pub practice_runs: usize,
    /// Competition runs (y-axis).
    pub competition_runs: usize,
    /// Finalist marker.
    pub finalist: bool,
    /// Winner marker.
    pub winner: bool,
}

/// Figure 35 — "Fork to go": starting flow-file size per team.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig35Bar {
    /// Team number.
    pub team: usize,
    /// Flow-file size (bytes) at competition start.
    pub size_bytes: usize,
    /// The dataset whose sample was forked.
    pub dataset: String,
}

/// All three figures.
#[derive(Debug, Clone)]
pub struct Figures {
    /// Figure 31.
    pub fig31: Fig31Series,
    /// Figure 32.
    pub fig32: Vec<Fig32Point>,
    /// Figure 35.
    pub fig35: Vec<Fig35Bar>,
}

/// Extract all figures from an outcome.
pub fn extract(outcome: &HackathonOutcome) -> Figures {
    let usage = outcome.platform.log().usage();
    let fig31 = Fig31Series {
        operators: usage
            .top_operators()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        widgets: usage
            .top_widgets()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    };
    let fig32 = outcome
        .teams
        .iter()
        .map(|t| Fig32Point {
            team: t.team.number,
            practice_runs: outcome
                .platform
                .log()
                .events()
                .iter()
                .filter(|e| e.dashboard == t.team.name && e.kind == RunKind::Run)
                .count()
                .min(t.practice_runs + t.competition_runs),
            competition_runs: t.competition_runs,
            finalist: t.finalist,
            winner: t.winner,
        })
        .collect();
    let fig35 = outcome
        .teams
        .iter()
        .map(|t| Fig35Bar {
            team: t.team.number,
            size_bytes: t.starting_bytes,
            dataset: outcome.datasets[t.team.dataset].name.to_string(),
        })
        .collect();
    Figures {
        fig31,
        fig32,
        fig35,
    }
}

impl Figures {
    /// Render figure 31 as aligned text (for EXPERIMENTS.md and the bench
    /// output).
    pub fn fig31_text(&self) -> String {
        let mut out = String::from("Figure 31 — platform usage\n  operators:\n");
        for (op, n) in &self.fig31.operators {
            out.push_str(&format!("    {op:<22} {n:>6} {}\n", bar(*n)));
        }
        out.push_str("  widgets:\n");
        for (w, n) in &self.fig31.widgets {
            out.push_str(&format!("    {w:<22} {n:>6} {}\n", bar(*n)));
        }
        out
    }

    /// Render figure 32 as a text scatter.
    pub fn fig32_text(&self) -> String {
        let mut out =
            String::from("Figure 32 — practice vs competition runs (F=finalist, W=winner)\n");
        let mut points = self.fig32.clone();
        points.sort_by_key(|p| std::cmp::Reverse(p.practice_runs));
        for p in &points {
            let marker = if p.winner {
                "W"
            } else if p.finalist {
                "F"
            } else {
                " "
            };
            out.push_str(&format!(
                "  team {:>2} {marker}  practice {:>3}  competition {:>3}\n",
                p.team, p.practice_runs, p.competition_runs
            ));
        }
        out
    }

    /// Render figure 35 as text bars.
    pub fn fig35_text(&self) -> String {
        let mut out = String::from("Figure 35 — fork-to-go starting sizes (bytes)\n");
        for b in &self.fig35 {
            out.push_str(&format!(
                "  team {:>2} ({:<16}) {:>6} {}\n",
                b.team,
                b.dataset,
                b.size_bytes,
                bar(b.size_bytes / 64)
            ));
        }
        out
    }
}

fn bar(n: usize) -> String {
    "#".repeat(n.min(60))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{run_hackathon, HackathonConfig};

    fn outcome() -> HackathonOutcome {
        run_hackathon(&HackathonConfig {
            seed: 21,
            teams: 12,
            max_practice_runs: 6.0,
            max_competition_runs: 5.0,
        })
    }

    #[test]
    fn fig31_filter_and_groupby_dominate() {
        // The paper's figure 31 shows group/filter among the most popular
        // operators — our pipelines share that shape.
        let figs = extract(&outcome());
        let top3: Vec<&str> = figs
            .fig31
            .operators
            .iter()
            .take(3)
            .map(|(k, _)| k.as_str())
            .collect();
        assert!(
            top3.contains(&"groupby"),
            "groupby in top-3 operators: {top3:?}"
        );
        assert!(!figs.fig31.widgets.is_empty());
        // Descending order.
        for w in figs.fig31.operators.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn fig32_has_one_point_per_team() {
        let out = outcome();
        let figs = extract(&out);
        assert_eq!(figs.fig32.len(), 12);
        assert_eq!(figs.fig32.iter().filter(|p| p.winner).count(), 3);
        assert_eq!(figs.fig32.iter().filter(|p| p.finalist).count(), 7);
    }

    #[test]
    fn fig35_sizes_are_fork_sizes() {
        let out = outcome();
        let figs = extract(&out);
        assert_eq!(figs.fig35.len(), 12);
        for b in &figs.fig35 {
            assert!(b.size_bytes > 200, "team {} starts non-empty", b.team);
        }
        // Teams on the same dataset start at the same size (same sample).
        use std::collections::BTreeMap;
        let mut by_dataset: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for b in &figs.fig35 {
            by_dataset
                .entry(b.dataset.as_str())
                .or_default()
                .push(b.size_bytes);
        }
        for (ds, sizes) in by_dataset {
            assert!(
                sizes.iter().all(|&s| s == sizes[0]),
                "{ds} forks equal: {sizes:?}"
            );
        }
    }

    #[test]
    fn text_renderings_are_nonempty() {
        let figs = extract(&outcome());
        assert!(figs.fig31_text().contains("groupby"));
        assert!(figs.fig32_text().contains("practice"));
        assert!(figs.fig35_text().contains("team"));
    }
}
