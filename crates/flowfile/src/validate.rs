//! Referential validation of a parsed flow file.
//!
//! Unknown *task* references are hard errors — tasks can only come from the
//! file itself (or registered extensions, which the platform injects before
//! validation via [`ValidateOptions::extra_tasks`]). Unknown *data object*
//! references are warnings at this level: they may resolve against the
//! platform's shared-object registry (§3.4.1 — "the platform searches for
//! this data object in the shared objects list"). The engine turns any
//! still-unresolved reference into a compile error.

use crate::ast::{FlowFile, WidgetSource};
use crate::config::ConfigValue;
use crate::diag::{Diagnostic, Severity};
use std::collections::HashSet;

/// Knobs for validation.
#[derive(Debug, Clone, Default)]
pub struct ValidateOptions {
    /// Extension task names registered on the platform (§4.2) — treated as
    /// known.
    pub extra_tasks: Vec<String>,
    /// Shared data objects published by other dashboards — silences the
    /// unknown-data warnings for those names.
    pub shared_data: Vec<String>,
}

/// Validate with default options.
pub fn validate(ff: &FlowFile) -> Vec<Diagnostic> {
    validate_with(ff, &ValidateOptions::default())
}

/// Validate a flow file, returning all diagnostics (errors and warnings).
pub fn validate_with(ff: &FlowFile, opts: &ValidateOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let task_names: HashSet<&str> = ff
        .tasks
        .iter()
        .map(|t| t.name.as_str())
        .chain(opts.extra_tasks.iter().map(String::as_str))
        .collect();
    let widget_names: HashSet<&str> = ff.widgets.iter().map(|w| w.name.as_str()).collect();
    let mut data_names: HashSet<&str> = ff.data.iter().map(|d| d.name.as_str()).collect();
    for s in &opts.shared_data {
        data_names.insert(s.as_str());
    }
    // Flow outputs are auto-configured data sinks (§3.4).
    for f in &ff.flows {
        data_names.insert(f.output.as_str());
    }

    // Flows.
    for f in &ff.flows {
        for input in &f.inputs {
            if !data_names.contains(input.as_str()) {
                diags.push(Diagnostic::warning(
                    f.line,
                    format!(
                        "flow 'D.{}' reads 'D.{input}' which is not declared here; it must resolve from the shared objects list",
                        f.output
                    ),
                ));
            }
        }
        for t in &f.tasks {
            if !task_names.contains(t.as_str()) {
                diags.push(Diagnostic::error(
                    f.line,
                    format!("flow 'D.{}' uses unknown task 'T.{t}'", f.output),
                ));
            }
        }
        if f.inputs.contains(&f.output) {
            diags.push(Diagnostic::error(
                f.line,
                format!("flow 'D.{}' reads its own output", f.output),
            ));
        }
    }

    // Parallel composite tasks reference other tasks.
    for t in &ff.tasks {
        if t.task_type == "parallel" {
            match t.params.get("parallel") {
                Some(v) => {
                    for item in v.scalar_items() {
                        match crate::ast::DataRef::parse(item) {
                            Some(crate::ast::DataRef::Task(sub)) => {
                                if !task_names.contains(sub.as_str()) {
                                    diags.push(Diagnostic::error(
                                        t.line,
                                        format!(
                                            "parallel task '{}' references unknown task 'T.{sub}'",
                                            t.name
                                        ),
                                    ));
                                } else if sub == t.name {
                                    diags.push(Diagnostic::error(
                                        t.line,
                                        format!("parallel task '{}' references itself", t.name),
                                    ));
                                }
                            }
                            _ => diags.push(Diagnostic::error(
                                t.line,
                                format!(
                                    "parallel task '{}' items must be tasks (T.*), got '{item}'",
                                    t.name
                                ),
                            )),
                        }
                    }
                }
                None => diags.push(Diagnostic::error(
                    t.line,
                    format!("parallel task '{}' is missing its 'parallel:' list", t.name),
                )),
            }
        }
        // Interaction-filter tasks reference widgets as data sources
        // (figure 15: filter_source: W.project_category_bubble).
        if let Some(ConfigValue::Scalar(src)) = t.params.get("filter_source") {
            match crate::ast::DataRef::parse(src) {
                Some(crate::ast::DataRef::Widget(w)) => {
                    if !widget_names.contains(w.as_str()) {
                        diags.push(Diagnostic::error(
                            t.line,
                            format!(
                                "task '{}' filter_source references unknown widget 'W.{w}'",
                                t.name
                            ),
                        ));
                    }
                }
                Some(crate::ast::DataRef::Data(d)) => {
                    if !data_names.contains(d.as_str()) {
                        diags.push(Diagnostic::warning(
                            t.line,
                            format!(
                                "task '{}' filter_source references undeclared data 'D.{d}'",
                                t.name
                            ),
                        ));
                    }
                }
                _ => diags.push(Diagnostic::error(
                    t.line,
                    format!(
                        "task '{}' filter_source must be W.* or D.*, got '{src}'",
                        t.name
                    ),
                )),
            }
        }
    }

    // Widgets.
    for w in &ff.widgets {
        if let Some(WidgetSource::Flow { input, tasks }) = &w.source {
            if !data_names.contains(input.as_str()) {
                diags.push(Diagnostic::warning(
                    w.line,
                    format!(
                        "widget '{}' reads 'D.{input}' which is not declared here; it must resolve from the shared objects list",
                        w.name
                    ),
                ));
            }
            for t in tasks {
                if !task_names.contains(t.as_str()) {
                    diags.push(Diagnostic::error(
                        w.line,
                        format!("widget '{}' uses unknown task 'T.{t}'", w.name),
                    ));
                }
            }
        }
        // Sub-layout widgets (Layout / TabLayout) reference other widgets.
        if w.widget_type == "Layout" {
            if let Some(rows) = w.params.get("rows").and_then(|v| v.as_list()) {
                for row in rows {
                    let mut errs = Vec::new();
                    for cell in crate::parser::parse_layout_row(row, w.line, &mut errs) {
                        if !widget_names.contains(cell.widget.as_str()) {
                            diags.push(Diagnostic::error(
                                w.line,
                                format!(
                                    "layout widget '{}' references unknown widget 'W.{}'",
                                    w.name, cell.widget
                                ),
                            ));
                        }
                    }
                    diags.extend(errs);
                }
            }
        }
        if w.widget_type == "TabLayout" {
            if let Some(tabs) = w.params.get("tabs").and_then(|v| v.as_list()) {
                for tab in tabs {
                    if let Some(body) = tab.as_map().and_then(|m| m.get_scalar("body")) {
                        match crate::ast::DataRef::parse(body) {
                            Some(crate::ast::DataRef::Widget(sub)) => {
                                if !widget_names.contains(sub.as_str()) {
                                    diags.push(Diagnostic::error(
                                        w.line,
                                        format!(
                                            "tab layout '{}' references unknown widget 'W.{sub}'",
                                            w.name
                                        ),
                                    ));
                                }
                            }
                            _ => diags.push(Diagnostic::error(
                                w.line,
                                format!(
                                    "tab body in '{}' must be a widget (W.*), got '{body}'",
                                    w.name
                                ),
                            )),
                        }
                    }
                }
            }
        }
    }

    // Layout.
    if let Some(layout) = &ff.layout {
        for (ri, row) in layout.rows.iter().enumerate() {
            let total: u32 = row.iter().map(|c| c.span as u32).sum();
            if total > 12 {
                diags.push(Diagnostic::error(
                    layout.line,
                    format!(
                        "layout row {} spans {total} columns; the grid has 12",
                        ri + 1
                    ),
                ));
            }
            for cell in row {
                if !widget_names.contains(cell.widget.as_str()) {
                    diags.push(Diagnostic::error(
                        layout.line,
                        format!("layout references unknown widget 'W.{}'", cell.widget),
                    ));
                }
            }
        }
    }

    // Unused data objects: declared, never read, never produced, not shared.
    let mut read: HashSet<&str> = HashSet::new();
    for f in &ff.flows {
        for i in &f.inputs {
            read.insert(i.as_str());
        }
    }
    for w in &ff.widgets {
        if let Some(WidgetSource::Flow { input, .. }) = &w.source {
            read.insert(input.as_str());
        }
    }
    let produced: HashSet<&str> = ff.flows.iter().map(|f| f.output.as_str()).collect();
    for d in &ff.data {
        if !read.contains(d.name.as_str())
            && !produced.contains(d.name.as_str())
            && !d.endpoint
            && d.publish.is_none()
        {
            diags.push(Diagnostic::warning(
                d.line,
                format!("data object 'D.{}' is never used", d.name),
            ));
        }
    }

    diags
}

/// True when the diagnostics contain no errors.
pub fn is_valid(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_flow_file;

    fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn clean_file_validates() {
        let src = "D:\n  a: [x, y]\nT:\n  t1:\n    type: filter_by\n    filter_expression: x < 3\nF:\n  +D.b: D.a | T.t1\n";
        let ff = parse_flow_file("t", src).unwrap();
        let diags = validate(&ff);
        assert!(is_valid(&diags), "{diags:?}");
    }

    #[test]
    fn unknown_task_is_error() {
        let src = "D:\n  a: [x]\nF:\n  D.b: D.a | T.missing\n";
        let ff = parse_flow_file("t", src).unwrap();
        let diags = validate(&ff);
        assert!(!is_valid(&diags));
        assert!(diags[0].message.contains("unknown task 'T.missing'"));
    }

    #[test]
    fn unknown_data_is_warning_resolved_by_shared() {
        let src = "T:\n  t1:\n    type: filter_by\nF:\n  D.b: D.external | T.t1\n";
        let ff = parse_flow_file("t", src).unwrap();
        let diags = validate(&ff);
        assert!(is_valid(&diags), "warning only: {diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("shared objects list")));

        let opts = ValidateOptions {
            shared_data: vec!["external".into()],
            ..Default::default()
        };
        let diags = validate_with(&ff, &opts);
        assert!(diags
            .iter()
            .all(|d| !d.message.contains("shared objects list")));
    }

    #[test]
    fn extension_tasks_count_as_known() {
        let src = "D:\n  a: [x]\nF:\n  D.b: D.a | T.custom_predictor\n";
        let ff = parse_flow_file("t", src).unwrap();
        assert!(!is_valid(&validate(&ff)));
        let opts = ValidateOptions {
            extra_tasks: vec!["custom_predictor".into()],
            ..Default::default()
        };
        assert!(is_valid(&validate_with(&ff, &opts)));
    }

    #[test]
    fn self_reading_flow_rejected() {
        let src = "D:\n  a: [x]\nT:\n  t1:\n    type: filter_by\nF:\n  D.a: D.a | T.t1\n";
        let ff = parse_flow_file("t", src).unwrap();
        let diags = validate(&ff);
        assert!(diags.iter().any(|d| d.message.contains("its own output")));
    }

    #[test]
    fn parallel_reference_checks() {
        let src = "T:\n  p:\n    parallel: [T.a, T.missing]\n  a:\n    type: map\n";
        let ff = parse_flow_file("t", src).unwrap();
        let diags = validate(&ff);
        let errs = errors(&diags);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("T.missing"));

        let src = "T:\n  p:\n    parallel: [T.p]\n";
        let ff = parse_flow_file("t", src).unwrap();
        assert!(validate(&ff)
            .iter()
            .any(|d| d.message.contains("references itself")));
    }

    #[test]
    fn filter_source_widget_check() {
        let src =
            "T:\n  f:\n    type: filter_by\n    filter_by: [team]\n    filter_source: W.teams\n";
        let ff = parse_flow_file("t", src).unwrap();
        assert!(validate(&ff)
            .iter()
            .any(|d| d.message.contains("unknown widget 'W.teams'")));

        let src = format!("{src}W:\n  teams:\n    type: List\n    source: D.dim_teams\n");
        let ff = parse_flow_file("t", &src).unwrap();
        let diags = validate(&ff);
        assert!(errors(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn layout_overflow_and_unknown_widget() {
        let src = "W:\n  w1:\n    type: List\nL:\n  rows:\n  - [span8: W.w1, span8: W.w1]\n";
        let ff = parse_flow_file("t", src).unwrap();
        assert!(validate(&ff).iter().any(|d| d.message.contains("spans 16")));

        let src = "L:\n  rows:\n  - [span4: W.ghost]\n";
        let ff = parse_flow_file("t", src).unwrap();
        assert!(validate(&ff)
            .iter()
            .any(|d| d.message.contains("unknown widget 'W.ghost'")));
    }

    #[test]
    fn tab_layout_bodies_checked() {
        let src =
            "W:\n  tabs:\n    type: TabLayout\n    tabs:\n    - name: 'A'\n      body: W.ghost\n";
        let ff = parse_flow_file("t", src).unwrap();
        assert!(validate(&ff).iter().any(|d| d.message.contains("W.ghost")));
    }

    #[test]
    fn unused_data_warning() {
        let src = "D:\n  lonely: [x]\n";
        let ff = parse_flow_file("t", src).unwrap();
        let diags = validate(&ff);
        assert!(is_valid(&diags));
        assert!(diags.iter().any(|d| d.message.contains("never used")));
    }
}
