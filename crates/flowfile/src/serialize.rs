//! Serialise an AST back to canonical flow-file text.
//!
//! The collaboration services (§4.5) treat the flow file as *the* artefact:
//! commits, forks and merges all operate on text. The serializer emits a
//! canonical form so structurally equal files are textually equal —
//! parse ∘ serialize is the identity on ASTs (modulo source lines), which
//! the round-trip property test pins down.

use crate::ast::{FlowFile, WidgetSource};
use crate::config::{ConfigMap, ConfigValue};

/// Quote a scalar when it needs it (contains separators, starts oddly, or
/// is empty).
fn scalar(s: &str) -> String {
    let needs = s.is_empty()
        || s.contains(':')
        || s.contains('#')
        || s.contains(',')
        || s.starts_with('[')
        || s.starts_with('\'')
        || s.starts_with('"')
        || s.starts_with(' ')
        || s.ends_with(' ');
    if needs {
        format!("'{}'", s.replace('\'', "''"))
    } else {
        s.to_string()
    }
}

fn write_value(out: &mut String, value: &ConfigValue, indent: usize) {
    match value {
        ConfigValue::Scalar(s) => {
            out.push(' ');
            out.push_str(&scalar(s));
            out.push('\n');
        }
        ConfigValue::List(items) => {
            // Inline when all items are scalars, block otherwise.
            if items.iter().all(|i| matches!(i, ConfigValue::Scalar(_))) {
                out.push_str(" [");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    if let ConfigValue::Scalar(s) = item {
                        out.push_str(&scalar(s));
                    }
                }
                out.push_str("]\n");
            } else {
                out.push('\n');
                for item in items {
                    write_list_item(out, item, indent);
                }
            }
        }
        ConfigValue::Map(m) => {
            out.push('\n');
            write_map(out, m, indent + 2);
        }
    }
}

fn write_list_item(out: &mut String, item: &ConfigValue, indent: usize) {
    let pad = " ".repeat(indent);
    match item {
        ConfigValue::Scalar(s) => {
            out.push_str(&format!("{pad}- {}\n", scalar(s)));
        }
        ConfigValue::List(items) => {
            // Inline list of pairs (layout rows).
            out.push_str(&format!("{pad}- ["));
            for (i, cell) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match cell {
                    ConfigValue::Map(m) => {
                        for (k, v, _) in m.entries() {
                            out.push_str(k);
                            out.push_str(": ");
                            if let ConfigValue::Scalar(s) = v {
                                out.push_str(&scalar(s));
                            }
                        }
                    }
                    ConfigValue::Scalar(s) => out.push_str(&scalar(s)),
                    ConfigValue::List(_) => {}
                }
            }
            out.push_str("]\n");
        }
        ConfigValue::Map(m) => {
            let mut first = true;
            for (k, v, _) in m.entries() {
                if first {
                    out.push_str(&format!("{pad}- {k}:"));
                    first = false;
                } else {
                    out.push_str(&format!("{pad}  {k}:"));
                }
                write_value(out, v, indent + 2);
            }
        }
    }
}

fn write_map(out: &mut String, map: &ConfigMap, indent: usize) {
    let pad = " ".repeat(indent);
    for (k, v, _) in map.entries() {
        out.push_str(&format!("{pad}{k}:"));
        write_value(out, v, indent);
    }
}

/// Serialise a flow file to text.
pub fn to_text(ff: &FlowFile) -> String {
    let mut out = String::new();

    if !ff.data.is_empty() {
        out.push_str("D:\n");
        for d in &ff.data {
            if d.columns.is_empty() {
                continue;
            }
            out.push_str(&format!("  {}: [", d.name));
            for (i, c) in d.columns.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match &c.path {
                    Some(p) => out.push_str(&format!("{} => {}", c.name, p)),
                    None => out.push_str(&c.name),
                }
            }
            out.push_str("]\n");
        }
        out.push('\n');
        // Detail blocks.
        for d in &ff.data {
            if d.props.is_empty() && !d.endpoint && d.publish.is_none() {
                continue;
            }
            out.push_str(&format!("D.{}:\n", d.name));
            for (k, v, _) in d.props.entries() {
                out.push_str(&format!("  {k}:"));
                write_value(&mut out, v, 2);
            }
            if d.endpoint {
                out.push_str("  endpoint: true\n");
            }
            if let Some(p) = &d.publish {
                out.push_str(&format!("  publish: {p}\n"));
            }
            out.push('\n');
        }
    }

    if !ff.tasks.is_empty() {
        out.push_str("T:\n");
        for t in &ff.tasks {
            out.push_str(&format!("  {}:\n", t.name));
            if t.task_type != "parallel" || !t.params.contains("parallel") {
                out.push_str(&format!("    type: {}\n", t.task_type));
            }
            for (k, v, _) in t.params.entries() {
                out.push_str(&format!("    {k}:"));
                write_value(&mut out, v, 4);
            }
        }
        out.push('\n');
    }

    if !ff.flows.is_empty() {
        out.push_str("F:\n");
        for f in &ff.flows {
            let plus = if f.endpoint_alias { "+" } else { "" };
            out.push_str(&format!("  {plus}D.{}: ", f.output));
            if f.inputs.len() == 1 {
                out.push_str(&format!("D.{}", f.inputs[0]));
            } else {
                out.push('(');
                for (i, input) in f.inputs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("D.{input}"));
                }
                out.push(')');
            }
            for t in &f.tasks {
                out.push_str(&format!(" | T.{t}"));
            }
            out.push('\n');
        }
        out.push('\n');
    }

    if !ff.widgets.is_empty() {
        out.push_str("W:\n");
        for w in &ff.widgets {
            out.push_str(&format!("  {}:\n", w.name));
            out.push_str(&format!("    type: {}\n", w.widget_type));
            match &w.source {
                Some(WidgetSource::Flow { input, tasks }) => {
                    out.push_str(&format!("    source: D.{input}"));
                    for t in tasks {
                        out.push_str(&format!(" | T.{t}"));
                    }
                    out.push('\n');
                }
                Some(WidgetSource::Static(items)) => {
                    out.push_str("    source: [");
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&scalar(item));
                    }
                    out.push_str("]\n");
                }
                None => {}
            }
            for (k, v, _) in w.params.entries() {
                out.push_str(&format!("    {k}:"));
                write_value(&mut out, v, 4);
            }
        }
        out.push('\n');
    }

    if let Some(layout) = &ff.layout {
        out.push_str("L:\n");
        if let Some(d) = &layout.description {
            out.push_str(&format!("  description: {}\n", scalar(d)));
        }
        if !layout.rows.is_empty() {
            out.push_str("  rows:\n");
            for row in &layout.rows {
                out.push_str("  - [");
                for (i, cell) in row.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("span{}: W.{}", cell.span, cell.widget));
                }
                out.push_str("]\n");
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_flow_file;

    const FULL: &str = r#"
D:
  ipl_tweets: [postedTime => created_at, body => text, location => user.location]
  players_tweets: [date, player, count]

D.ipl_tweets:
  source: 'tweets.json'
  format: json

D.players_tweets:
  endpoint: true
  publish: players_tweets

T:
  norm_ipldate:
    type: map
    operator: date
    transform: postedTime
    input_format: 'E MMM dd HH:mm:ss Z yyyy'
    output_format: yyyy-MM-dd
    output: date
  players_pipeline:
    parallel: [T.norm_ipldate, T.extract_players]
  extract_players:
    type: map
    operator: extract
    transform: body
    dict: players.txt
    output: player
  players_count:
    type: groupby
    groupby: [date, player]

F:
  D.players_tweets: D.ipl_tweets | T.players_pipeline | T.players_count

W:
  ipl_duration:
    type: Slider
    source: ['2013-05-02', '2013-05-27']
    range: true
  playertweets:
    type: WordCloud
    source: D.players_tweets | T.players_count
    text: player
    size: count

L:
  description: Clash of Titans
  rows:
  - [span12: W.ipl_duration]
  - [span6: W.playertweets, span5: W.playertweets]
"#;

    fn strip_lines(ff: &mut crate::ast::FlowFile) {
        for d in &mut ff.data {
            d.line = 0;
        }
        for t in &mut ff.tasks {
            t.line = 0;
        }
        for f in &mut ff.flows {
            f.line = 0;
        }
        for w in &mut ff.widgets {
            w.line = 0;
        }
        if let Some(l) = &mut ff.layout {
            l.line = 0;
        }
    }

    #[test]
    fn roundtrip_is_identity_on_ast() {
        let mut ff = parse_flow_file("rt", FULL).unwrap();
        let text = to_text(&ff);
        let mut ff2 = parse_flow_file("rt", &text).unwrap();
        strip_lines(&mut ff);
        strip_lines(&mut ff2);
        // Config-level spans inside params differ; compare the semantically
        // meaningful projections.
        assert_eq!(ff.data.len(), ff2.data.len());
        for (a, b) in ff.data.iter().zip(&ff2.data) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.columns, b.columns);
            assert_eq!(a.endpoint, b.endpoint);
            assert_eq!(a.publish, b.publish);
            let ka: Vec<_> = a
                .props
                .entries()
                .map(|(k, v, _)| (k.to_string(), v.clone()))
                .collect();
            let kb: Vec<_> = b
                .props
                .entries()
                .map(|(k, v, _)| (k.to_string(), v.clone()))
                .collect();
            assert_eq!(ka, kb, "props of {}", a.name);
        }
        assert_eq!(ff.flows, ff2.flows);
        for (a, b) in ff.tasks.iter().zip(&ff2.tasks) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.task_type, b.task_type);
        }
        for (a, b) in ff.widgets.iter().zip(&ff2.widgets) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.widget_type, b.widget_type);
            assert_eq!(a.source, b.source);
        }
        assert_eq!(
            ff.layout.as_ref().map(|l| &l.rows),
            ff2.layout.as_ref().map(|l| &l.rows)
        );
    }

    #[test]
    fn serialization_is_stable() {
        let ff = parse_flow_file("rt", FULL).unwrap();
        let t1 = to_text(&ff);
        let ff2 = parse_flow_file("rt", &t1).unwrap();
        let t2 = to_text(&ff2);
        assert_eq!(t1, t2, "canonical form is a fixed point");
    }

    #[test]
    fn quoting_protects_special_scalars() {
        assert_eq!(scalar("plain"), "plain");
        assert_eq!(scalar("a: b"), "'a: b'");
        assert_eq!(scalar("x#y"), "'x#y'");
        assert_eq!(scalar(""), "''");
        // Internal apostrophes round-trip unquoted (unquote only strips a
        // fully surrounding pair), so they are left alone.
        assert_eq!(scalar("it's"), "it's");
    }

    #[test]
    fn empty_file_serialises_empty() {
        let ff = crate::ast::FlowFile::default();
        assert_eq!(to_text(&ff), "");
    }
}
