//! Typed abstract syntax of a flow file.

use crate::config::ConfigMap;
use std::fmt;

/// A reference to a named object in one of the sections: `D.x`, `T.x`,
/// `W.x`. Widgets being data objects (§3.5.1) is encoded here: a task's
/// `filter_source` holds a [`DataRef::Widget`] while a flow input holds a
/// [`DataRef::Data`], and both flow through the same machinery.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataRef {
    /// A data object (`D.name`).
    Data(String),
    /// A task (`T.name`).
    Task(String),
    /// A widget treated as a data object (`W.name`).
    Widget(String),
}

impl DataRef {
    /// Parse `D.x` / `T.x` / `W.x` (whitespace after the dot tolerated — the
    /// paper's listings contain `D. name` artefacts).
    pub fn parse(s: &str) -> Option<DataRef> {
        let t = s.trim();
        let (prefix, rest) = t.split_once('.')?;
        let name = rest.trim();
        if name.is_empty() || !is_identifier(name) {
            return None;
        }
        match prefix.trim() {
            "D" => Some(DataRef::Data(name.to_string())),
            "T" => Some(DataRef::Task(name.to_string())),
            "W" => Some(DataRef::Widget(name.to_string())),
            _ => None,
        }
    }

    /// The bare name without the section prefix.
    pub fn name(&self) -> &str {
        match self {
            DataRef::Data(n) | DataRef::Task(n) | DataRef::Widget(n) => n,
        }
    }
}

impl fmt::Display for DataRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataRef::Data(n) => write!(f, "D.{n}"),
            DataRef::Task(n) => write!(f, "T.{n}"),
            DataRef::Widget(n) => write!(f, "W.{n}"),
        }
    }
}

/// True for `IDENTIFIER` per the appendix-B lexer: letters then
/// letters/digits/underscores.
pub fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One column of a data object's schema: a bare name, or a `name => path`
/// mapping into a hierarchical payload (figures 6 and 18).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Optional payload path (`user.location`).
    pub path: Option<String>,
}

impl ColumnSpec {
    /// Bare column.
    pub fn plain(name: impl Into<String>) -> Self {
        ColumnSpec {
            name: name.into(),
            path: None,
        }
    }

    /// Mapped column.
    pub fn mapped(name: impl Into<String>, path: impl Into<String>) -> Self {
        ColumnSpec {
            name: name.into(),
            path: Some(path.into()),
        }
    }
}

/// A data object: schema declaration plus detail properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataObject {
    /// Name (unique within the D section).
    pub name: String,
    /// Declared columns (may be empty for detail-only objects such as
    /// published-object consumers).
    pub columns: Vec<ColumnSpec>,
    /// Detail properties from the `D.<name>:` block (`source`, `format`,
    /// `separator`, `protocol`, `http_headers`, …).
    pub props: ConfigMap,
    /// `endpoint: true` — exposed to dashboards over the data API (§3.4.1).
    pub endpoint: bool,
    /// `publish: <name>` — shared with other dashboards under this name.
    pub publish: Option<String>,
    /// Source line of the declaration.
    pub line: usize,
}

impl DataObject {
    /// Declared column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A task definition: a named, typed, parameterised transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDef {
    /// Name (unique within the T section).
    pub name: String,
    /// Task type (`filter_by`, `groupby`, `join`, `map`, `topn`,
    /// `parallel`, or a custom/extension type).
    pub task_type: String,
    /// Remaining parameters, uninterpreted at this level (the engine and
    /// widget layers interpret them per type).
    pub params: ConfigMap,
    /// Source line.
    pub line: usize,
}

/// One flow: fan-in inputs piped through tasks into an output data object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Output data object name.
    pub output: String,
    /// Input data object names (≥1).
    pub inputs: Vec<String>,
    /// Task names in pipe order (≥1 per the appendix-B grammar).
    pub tasks: Vec<String>,
    /// `+D.name:` endpoint shorthand used on the flow head (figure 9).
    pub endpoint_alias: bool,
    /// Source line.
    pub line: usize,
}

/// A widget's `source:` — either a flow over a data object, or a static
/// literal list (the date slider's `['2013-05-02', '2013-05-27']`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WidgetSource {
    /// `D.x | T.a | T.b` (tasks may be empty: `source: D.dim_teams`).
    Flow {
        /// Input data object.
        input: String,
        /// Interaction-flow task names.
        tasks: Vec<String>,
    },
    /// A static list of scalar values.
    Static(Vec<String>),
}

/// A widget definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidgetDef {
    /// Name (unique within the W section).
    pub name: String,
    /// Widget type (`BubbleChart`, `WordCloud`, `Slider`, `Layout`,
    /// `TabLayout`, custom…).
    pub widget_type: String,
    /// Data source.
    pub source: Option<WidgetSource>,
    /// All other attributes (data bindings + visual attributes),
    /// uninterpreted here.
    pub params: ConfigMap,
    /// Source line.
    pub line: usize,
}

/// One cell of a layout row: a column span and the widget shown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutCell {
    /// Width in grid columns (1–12).
    pub span: u8,
    /// Widget name (sans `W.`).
    pub widget: String,
}

/// The layout section: a grid of rows of cells.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayoutDef {
    /// Dashboard description line.
    pub description: Option<String>,
    /// Rows, each a list of cells.
    pub rows: Vec<Vec<LayoutCell>>,
    /// Source line.
    pub line: usize,
}

/// A parsed flow file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowFile {
    /// Dashboard name (not part of the text; assigned by the platform).
    pub name: String,
    /// Data objects in declaration order.
    pub data: Vec<DataObject>,
    /// Tasks in declaration order.
    pub tasks: Vec<TaskDef>,
    /// Flows in declaration order.
    pub flows: Vec<Flow>,
    /// Widgets in declaration order.
    pub widgets: Vec<WidgetDef>,
    /// Layout, when present.
    pub layout: Option<LayoutDef>,
}

impl FlowFile {
    /// Look up a data object by name.
    pub fn data_object(&self, name: &str) -> Option<&DataObject> {
        self.data.iter().find(|d| d.name == name)
    }

    /// Look up a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskDef> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Look up a widget by name.
    pub fn widget(&self, name: &str) -> Option<&WidgetDef> {
        self.widgets.iter().find(|w| w.name == name)
    }

    /// Flows producing endpoint data (either via `endpoint: true` props or
    /// the `+` alias).
    pub fn endpoint_objects(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .data
            .iter()
            .filter(|d| d.endpoint)
            .map(|d| d.name.as_str())
            .collect();
        for f in &self.flows {
            if f.endpoint_alias && !out.contains(&f.output.as_str()) {
                out.push(f.output.as_str());
            }
        }
        out
    }

    /// True when the file is data-processing-mode only (§3.7.1): no widgets
    /// and no layout.
    pub fn is_data_processing_mode(&self) -> bool {
        self.widgets.is_empty() && self.layout.is_none()
    }

    /// True when the file is consumption-mode only: no flows of its own
    /// (all widget sources reference published objects).
    pub fn is_consumption_mode(&self) -> bool {
        self.flows.is_empty() && !self.widgets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataref_parse_and_display() {
        assert_eq!(DataRef::parse("D.x"), Some(DataRef::Data("x".into())));
        assert_eq!(
            DataRef::parse(" T.my_task "),
            Some(DataRef::Task("my_task".into()))
        );
        assert_eq!(
            DataRef::parse("W.bubble"),
            Some(DataRef::Widget("bubble".into()))
        );
        assert_eq!(
            DataRef::parse("D. spaced"),
            Some(DataRef::Data("spaced".into()))
        );
        assert_eq!(DataRef::parse("X.x"), None);
        assert_eq!(DataRef::parse("D."), None);
        assert_eq!(DataRef::parse("noprefix"), None);
        assert_eq!(DataRef::parse("D.bad name"), None);
        assert_eq!(DataRef::Data("x".into()).to_string(), "D.x");
    }

    #[test]
    fn identifier_rules() {
        assert!(is_identifier("abc_123"));
        assert!(is_identifier("_private"));
        assert!(!is_identifier("1abc"));
        assert!(!is_identifier(""));
        assert!(!is_identifier("a-b"));
    }

    #[test]
    fn endpoint_objects_merge_props_and_alias() {
        let mut ff = FlowFile::default();
        ff.data.push(DataObject {
            name: "a".into(),
            columns: vec![],
            props: Default::default(),
            endpoint: true,
            publish: None,
            line: 1,
        });
        ff.flows.push(Flow {
            output: "b".into(),
            inputs: vec!["a".into()],
            tasks: vec!["t".into()],
            endpoint_alias: true,
            line: 2,
        });
        assert_eq!(ff.endpoint_objects(), vec!["a", "b"]);
    }

    #[test]
    fn mode_detection() {
        let mut processing = FlowFile::default();
        processing.flows.push(Flow {
            output: "o".into(),
            inputs: vec!["i".into()],
            tasks: vec!["t".into()],
            endpoint_alias: false,
            line: 1,
        });
        assert!(processing.is_data_processing_mode());
        assert!(!processing.is_consumption_mode());

        let mut consumption = FlowFile::default();
        consumption.widgets.push(WidgetDef {
            name: "w".into(),
            widget_type: "List".into(),
            source: None,
            params: Default::default(),
            line: 1,
        });
        assert!(consumption.is_consumption_mode());
        assert!(!consumption.is_data_processing_mode());
    }
}
