//! Parser for flow pipe expressions — the F-section value grammar of
//! appendix B:
//!
//! ```text
//! flow := '('? D.input (',' D.input)* ')'? ('|' T.task)+
//! ```
//!
//! Widget sources reuse the same shape with a single input and zero-or-more
//! tasks (`source: D.dim_teams` is a bare input).

use crate::ast::DataRef;
use crate::diag::{FlowError, Result};

/// A parsed pipe expression: inputs (fan-in) and the task chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowExpr {
    /// Input data-object names (≥1).
    pub inputs: Vec<String>,
    /// Task names in pipe order.
    pub tasks: Vec<String>,
}

/// Parse a flow expression.
///
/// `require_task` enforces the F-section grammar's one-or-more tasks; widget
/// sources pass `false`.
pub fn parse_flow_expr(text: &str, line: usize, require_task: bool) -> Result<FlowExpr> {
    let mut segments = split_pipes(text);
    if segments.is_empty() {
        return Err(FlowError::single(line, "empty flow expression"));
    }
    let head = segments.remove(0);

    // Head: either `(D.a, D.b)` or a single `D.a`.
    let head_trim = head.trim();
    let inputs: Vec<String> = if head_trim.starts_with('(') {
        if !head_trim.ends_with(')') {
            return Err(FlowError::single(
                line,
                format!("fan-in list must close with ')': '{head_trim}'"),
            ));
        }
        let inner = &head_trim[1..head_trim.len() - 1];
        let parts: Vec<&str> = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if parts.is_empty() {
            return Err(FlowError::single(line, "empty fan-in list '()'"));
        }
        parts
            .iter()
            .map(|p| match DataRef::parse(p) {
                Some(DataRef::Data(n)) => Ok(n),
                _ => Err(FlowError::single(
                    line,
                    format!("flow inputs must be data objects (D.*), got '{p}'"),
                )),
            })
            .collect::<Result<Vec<_>>>()?
    } else {
        match DataRef::parse(head_trim) {
            Some(DataRef::Data(n)) => vec![n],
            _ => {
                return Err(FlowError::single(
                    line,
                    format!("flow must start with a data object (D.*), got '{head_trim}'"),
                ))
            }
        }
    };

    // Tail: tasks.
    let mut tasks = Vec::with_capacity(segments.len());
    for seg in &segments {
        match DataRef::parse(seg.trim()) {
            Some(DataRef::Task(n)) => tasks.push(n),
            _ => {
                return Err(FlowError::single(
                    line,
                    format!("pipe stages must be tasks (T.*), got '{}'", seg.trim()),
                ))
            }
        }
    }
    if require_task && tasks.is_empty() {
        return Err(FlowError::single(
            line,
            "a flow needs at least one task after the inputs (grammar: ('|' T.task)+)",
        ));
    }
    if inputs.len() > 1 && tasks.is_empty() {
        return Err(FlowError::single(
            line,
            "a multi-input source needs a task to combine its inputs",
        ));
    }
    Ok(FlowExpr { inputs, tasks })
}

/// Split on `|` outside parentheses/quotes.
fn split_pipes(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    let mut quote: Option<char> = None;
    for c in text.chars() {
        match quote {
            Some(q) => {
                cur.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    cur.push(c);
                }
                '(' => {
                    depth += 1;
                    cur.push(c);
                }
                ')' => {
                    depth -= 1;
                    cur.push(c);
                }
                '|' if depth == 0 => out.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            },
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out.into_iter()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_input_chain() {
        let f = parse_flow_expr(
            "D.ipl_tweets | T.players_pipeline | T.players_count",
            1,
            true,
        )
        .unwrap();
        assert_eq!(f.inputs, vec!["ipl_tweets"]);
        assert_eq!(f.tasks, vec!["players_pipeline", "players_count"]);
    }

    #[test]
    fn fan_in() {
        let f = parse_flow_expr(
            "(D.players_tweets, D.team_players) | T.join_player_team",
            1,
            true,
        )
        .unwrap();
        assert_eq!(f.inputs, vec!["players_tweets", "team_players"]);
        assert_eq!(f.tasks, vec!["join_player_team"]);
    }

    #[test]
    fn widget_source_without_tasks() {
        let f = parse_flow_expr("D.dim_teams", 1, false).unwrap();
        assert_eq!(f.inputs, vec!["dim_teams"]);
        assert!(f.tasks.is_empty());
    }

    #[test]
    fn grammar_requires_a_task_in_flows() {
        let err = parse_flow_expr("D.dim_teams", 1, true).unwrap_err();
        assert!(err.first().message.contains("at least one task"));
    }

    #[test]
    fn multi_input_needs_combiner() {
        assert!(parse_flow_expr("(D.a, D.b)", 1, false).is_err());
    }

    #[test]
    fn rejects_wrong_prefixes() {
        assert!(parse_flow_expr("T.x | T.y", 1, true).is_err());
        assert!(parse_flow_expr("D.a | D.b", 1, true).is_err());
        assert!(parse_flow_expr("D.a | W.w", 1, true).is_err());
        assert!(parse_flow_expr("(D.a, T.b) | T.c", 1, true).is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_flow_expr("", 1, true).is_err());
        assert!(parse_flow_expr("(D.a, D.b | T.c", 1, true).is_err());
        assert!(parse_flow_expr("() | T.c", 1, true).is_err());
    }

    #[test]
    fn tolerates_pdf_spacing() {
        let f = parse_flow_expr("D. svn_jira_summary | T. get_svn_jira_count", 1, true).unwrap();
        assert_eq!(f.inputs, vec!["svn_jira_summary"]);
        assert_eq!(f.tasks, vec!["get_svn_jira_count"]);
    }
}
