//! # shareinsights-flowfile
//!
//! The ShareInsights flow-file DSL (§3 of the paper, grammar in appendix B).
//!
//! A flow file is a single text document with five clearly demarcated
//! sections:
//!
//! * `D:` — data objects: schema column lists, optional `col => json.path`
//!   mappings, and per-object detail blocks (`D.<name>:` with `source`,
//!   `format`, `endpoint`, `publish`, …);
//! * `T:` — task configurations (`type: groupby`, parameters);
//! * `F:` — flows: `D.out: (D.a, D.b) | T.x | T.y` pipe chains, fan-in at
//!   the head, fan-out by writing several flows;
//! * `W:` — widgets: `type`, a `source:` that is *itself a flow*, data
//!   attribute bindings and visual attributes;
//! * `L:` — a 12-column grid layout.
//!
//! Parsing is two-stage: [`config`] parses the indentation-structured text
//! into a generic ordered tree (a deliberately small YAML-like subset), and
//! [`parser`] interprets that tree into the typed [`ast::FlowFile`].
//! [`validate()`](validate::validate) checks referential integrity, and [`serialize`] writes an
//! AST back out as canonical flow-file text (the representation the
//! collaboration services diff, fork and merge).

pub mod ast;
pub mod config;
pub mod diag;
pub mod flowexpr;
pub mod parser;
pub mod serialize;
pub mod validate;

pub use ast::{
    ColumnSpec, DataObject, DataRef, Flow, FlowFile, LayoutCell, LayoutDef, TaskDef, WidgetDef,
    WidgetSource,
};
pub use diag::{Diagnostic, FlowError, Severity};
pub use parser::parse_flow_file;
pub use serialize::to_text;
pub use validate::validate;
