//! Generic configuration-tree parser: the indentation-structured, YAML-like
//! surface the flow file is written in.
//!
//! This stage knows nothing about sections or semantics; it turns text into
//! an ordered tree of [`ConfigValue`]s. Supported syntax (everything the
//! paper's listings use):
//!
//! * `key: value` and `key:` followed by an indented block;
//! * block lists with `- item` (scalar, `key: value` map start, or inline
//!   list);
//! * inline lists `[a, b, c]`, possibly spanning lines, whose items may be
//!   `a => b` path mappings or `span12: W.x` pairs;
//! * `'single'` / `"double"` quoted scalars;
//! * `#` comments (outside quotes);
//! * flow continuations: lines ending in `|` or `,`, unbalanced brackets,
//!   and lines starting with `|` merge with their neighbours.

use crate::diag::{FlowError, Result};

/// An ordered key/value map preserving declaration order and source lines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigMap {
    entries: Vec<(String, ConfigValue, usize)>,
}

impl ConfigMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry (duplicate keys allowed at this level; semantic
    /// layers reject them where appropriate).
    pub fn push(&mut self, key: impl Into<String>, value: ConfigValue, line: usize) {
        self.entries.push((key.into(), value, line));
    }

    /// Entries in declaration order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &ConfigValue, usize)> {
        self.entries.iter().map(|(k, v, l)| (k.as_str(), v, *l))
    }

    /// First value for a key.
    pub fn get(&self, key: &str) -> Option<&ConfigValue> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v)
    }

    /// First value's source line for a key.
    pub fn line_of(&self, key: &str) -> Option<usize> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, _, l)| *l)
    }

    /// First scalar value for a key.
    pub fn get_scalar(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            ConfigValue::Scalar(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Scalar parsed as bool (`true`/`false`).
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get_scalar(key)? {
            "true" | "True" | "TRUE" => Some(true),
            "false" | "False" | "FALSE" => Some(false),
            _ => None,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigValue {
    /// A scalar (quotes already stripped).
    Scalar(String),
    /// A list (block `-` items or inline `[...]`).
    List(Vec<ConfigValue>),
    /// A nested map.
    Map(ConfigMap),
}

impl ConfigValue {
    /// Scalar payload, if this is one.
    pub fn as_scalar(&self) -> Option<&str> {
        match self {
            ConfigValue::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// List items, if this is a list.
    pub fn as_list(&self) -> Option<&[ConfigValue]> {
        match self {
            ConfigValue::List(items) => Some(items),
            _ => None,
        }
    }

    /// Map, if this is one.
    pub fn as_map(&self) -> Option<&ConfigMap> {
        match self {
            ConfigValue::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Scalar list items (errors elsewhere if non-scalar items appear).
    pub fn scalar_items(&self) -> Vec<&str> {
        match self {
            ConfigValue::List(items) => items.iter().filter_map(|i| i.as_scalar()).collect(),
            ConfigValue::Scalar(s) => vec![s.as_str()],
            _ => Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    text: String,
    lineno: usize,
}

/// Strip a comment (unquoted `#`) from a raw line; returns the retained
/// prefix.
fn strip_comment(line: &str) -> &str {
    let mut quote: Option<char> = None;
    for (i, c) in line.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                '#' => return &line[..i],
                _ => {}
            },
        }
    }
    line
}

/// Count net bracket balance and whether the line ends mid-expression.
fn scan_line(text: &str) -> (i32, bool) {
    let mut balance = 0i32;
    let mut quote: Option<char> = None;
    for c in text.chars() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                '[' | '(' => balance += 1,
                ']' | ')' => balance -= 1,
                _ => {}
            },
        }
    }
    let trimmed = text.trim_end();
    let open_ended = trimmed.ends_with('|') || trimmed.ends_with(',');
    (balance, open_ended)
}

/// Preprocess: strip comments, drop blanks, compute indents, merge
/// continuation lines.
fn preprocess(source: &str) -> Result<Vec<Line>> {
    let mut raw: Vec<Line> = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let lineno = i + 1;
        if line.contains('\t') {
            return Err(FlowError::single(
                lineno,
                "tabs are not allowed for indentation; use spaces",
            ));
        }
        let stripped = strip_comment(line);
        let trimmed_end = stripped.trim_end();
        if trimmed_end.trim().is_empty() {
            continue;
        }
        let indent = trimmed_end.len() - trimmed_end.trim_start().len();
        raw.push(Line {
            indent,
            text: trimmed_end.trim_start().to_string(),
            lineno,
        });
    }

    // Merge continuations.
    let mut merged: Vec<Line> = Vec::new();
    for line in raw {
        let join_with_prev = if let Some(prev) = merged.last() {
            let (balance, open_ended) = scan_line(&prev.text);
            balance > 0 || open_ended || line.text.starts_with('|')
        } else {
            false
        };
        if join_with_prev {
            let prev = merged.last_mut().expect("checked non-empty");
            prev.text.push(' ');
            prev.text.push_str(&line.text);
        } else {
            merged.push(line);
        }
    }
    // Validate every merged line is bracket-balanced.
    for l in &merged {
        let (balance, _) = scan_line(&l.text);
        if balance != 0 {
            return Err(FlowError::single(
                l.lineno,
                format!("unbalanced brackets in '{}'", truncate(&l.text)),
            ));
        }
    }
    Ok(merged)
}

fn truncate(s: &str) -> String {
    if s.len() > 60 {
        format!("{}…", &s[..60])
    } else {
        s.to_string()
    }
}

/// Strip matching surrounding quotes from a scalar.
fn unquote(s: &str) -> String {
    let t = s.trim();
    if t.len() >= 2 {
        let first = t.chars().next().unwrap();
        if (first == '\'' || first == '"') && t.ends_with(first) {
            return t[1..t.len() - 1].to_string();
        }
    }
    t.to_string()
}

/// Find the first `:` that separates a key from a value (outside quotes and
/// brackets, and not part of `://`).
fn split_key_value(text: &str) -> Option<(String, String)> {
    let mut quote: Option<char> = None;
    let mut depth = 0i32;
    let bytes = text.as_bytes();
    for (i, c) in text.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                '[' | '(' => depth += 1,
                ']' | ')' => depth -= 1,
                ':' if depth == 0 => {
                    // skip '::' or '://'
                    if bytes.get(i + 1) == Some(&b'/') {
                        continue;
                    }
                    let key = text[..i].trim().to_string();
                    let value = text[i + 1..].trim().to_string();
                    if key.is_empty() {
                        return None;
                    }
                    // Keys are identifier-ish tokens (allowing D./T./W./+
                    // prefixes and internal spaces from `D. name` PDF
                    // artefacts). Reject keys containing pipe characters —
                    // those are flow expressions, not keys.
                    if key.contains('|') {
                        return None;
                    }
                    return Some((key, value));
                }
                _ => {}
            },
        }
    }
    None
}

/// Split inline-list content on top-level commas.
fn split_top_level_commas(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    let mut depth = 0i32;
    for c in text.chars() {
        match quote {
            Some(q) => {
                cur.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    cur.push(c);
                }
                '[' | '(' => {
                    depth += 1;
                    cur.push(c);
                }
                ']' | ')' => {
                    depth -= 1;
                    cur.push(c);
                }
                ',' if depth == 0 => out.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            },
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out.into_iter()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Parse an inline value: `[...]` list, or scalar.
fn parse_inline_value(text: &str, lineno: usize) -> ConfigValue {
    let t = text.trim();
    if t.starts_with('[') && t.ends_with(']') {
        let inner = &t[1..t.len() - 1];
        let items = split_top_level_commas(inner)
            .into_iter()
            .map(|item| {
                // An item may itself be `key: value` (layout cells).
                if let Some((k, v)) = split_key_value(&item) {
                    let mut m = ConfigMap::new();
                    m.push(k, parse_inline_value(&v, lineno), lineno);
                    ConfigValue::Map(m)
                } else {
                    ConfigValue::Scalar(unquote(&item))
                }
            })
            .collect();
        ConfigValue::List(items)
    } else {
        ConfigValue::Scalar(unquote(t))
    }
}

fn is_dash(text: &str) -> bool {
    text.starts_with("- ") || text == "-"
}

/// Parse the value that follows a `key:` whose inline value was empty: a
/// deeper block, or (YAML style) a dash list at the *same* indent as the
/// key — the paper's `rows:` / `- [span12: …]` layout listings use the
/// latter.
fn parse_block_value(lines: &[Line], start: &mut usize, key_indent: usize) -> Result<ConfigValue> {
    if *start < lines.len() {
        if lines[*start].indent > key_indent {
            return parse_block(lines, start, key_indent as i64);
        }
        if lines[*start].indent == key_indent && is_dash(&lines[*start].text) {
            return parse_list(lines, start, key_indent);
        }
    }
    Ok(ConfigValue::Scalar(String::new()))
}

/// Parse consecutive `- item` entries at exactly `list_indent`.
fn parse_list(lines: &[Line], start: &mut usize, list_indent: usize) -> Result<ConfigValue> {
    let mut items = Vec::new();
    while *start < lines.len()
        && lines[*start].indent == list_indent
        && is_dash(&lines[*start].text)
    {
        let dash_line = lines[*start].clone();
        let after_dash = dash_line.text[1..].trim_start().to_string();
        // Content after '-' behaves as if indented two past the dash.
        let virtual_indent = list_indent + 2;
        if after_dash.is_empty() {
            // `-` alone: value is the following deeper block.
            *start += 1;
            if *start < lines.len() && lines[*start].indent > list_indent {
                items.push(parse_block(lines, start, list_indent as i64)?);
            } else {
                items.push(ConfigValue::Scalar(String::new()));
            }
            continue;
        }
        if let Some((key, value)) = split_key_value(&after_dash) {
            let mut map = ConfigMap::new();
            if value.is_empty() {
                *start += 1;
                map.push(
                    key,
                    parse_block_value(lines, start, virtual_indent)?,
                    dash_line.lineno,
                );
            } else {
                map.push(
                    key,
                    parse_inline_value(&value, dash_line.lineno),
                    dash_line.lineno,
                );
                *start += 1;
            }
            // Further map entries of this item: at or beyond the virtual
            // indent.
            while *start < lines.len()
                && lines[*start].indent >= virtual_indent
                && !is_dash(&lines[*start].text)
            {
                let l = lines[*start].clone();
                if let Some((k, v)) = split_key_value(&l.text) {
                    if v.is_empty() {
                        *start += 1;
                        let nested = parse_block_value(lines, start, l.indent)?;
                        map.push(k, nested, l.lineno);
                    } else {
                        map.push(k, parse_inline_value(&v, l.lineno), l.lineno);
                        *start += 1;
                    }
                } else {
                    return Err(FlowError::single(
                        l.lineno,
                        format!(
                            "expected 'key: value' inside list item, got '{}'",
                            truncate(&l.text)
                        ),
                    ));
                }
            }
            items.push(ConfigValue::Map(map));
        } else {
            items.push(parse_inline_value(&after_dash, dash_line.lineno));
            *start += 1;
        }
    }
    Ok(ConfigValue::List(items))
}

/// Recursive block parser. `lines[start..]` with indent > `parent_indent`
/// belong to this block.
fn parse_block(lines: &[Line], start: &mut usize, parent_indent: i64) -> Result<ConfigValue> {
    debug_assert!(*start < lines.len());
    let block_indent = lines[*start].indent;
    if (block_indent as i64) <= parent_indent {
        return Err(FlowError::single(
            lines[*start].lineno,
            "internal: parse_block called on dedented line",
        ));
    }

    if is_dash(&lines[*start].text) {
        return parse_list(lines, start, block_indent);
    }

    // Not a list: map entries or bare scalars.
    let mut map = ConfigMap::new();
    let mut scalars: Vec<(String, usize)> = Vec::new();
    while *start < lines.len() && lines[*start].indent >= block_indent {
        let l = lines[*start].clone();
        if l.indent > block_indent {
            return Err(FlowError::single(
                l.lineno,
                format!("unexpected indentation for '{}'", truncate(&l.text)),
            ));
        }
        if is_dash(&l.text) {
            // A dash at map level belongs to the preceding key, which
            // parse_block_value consumes; reaching one here is a stray.
            return Err(FlowError::single(
                l.lineno,
                format!("list item '{}' has no preceding 'key:'", truncate(&l.text)),
            ));
        }
        match split_key_value(&l.text) {
            Some((key, value)) => {
                if value.is_empty() {
                    *start += 1;
                    let v = parse_block_value(lines, start, block_indent)?;
                    map.push(key, v, l.lineno);
                } else {
                    map.push(key, parse_inline_value(&value, l.lineno), l.lineno);
                    *start += 1;
                }
            }
            None => {
                scalars.push((l.text.clone(), l.lineno));
                *start += 1;
            }
        }
    }

    match (map.is_empty(), scalars.len()) {
        (true, 0) => Ok(ConfigValue::Map(map)),
        (true, 1) => Ok(parse_inline_value(&scalars[0].0, scalars[0].1)),
        (true, _) => {
            // Multiple bare scalars: a wrapped flow expression — join.
            let joined = scalars
                .iter()
                .map(|(s, _)| s.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            Ok(ConfigValue::Scalar(joined))
        }
        (false, 0) => Ok(ConfigValue::Map(map)),
        (false, _) => Err(FlowError::single(
            scalars[0].1,
            format!(
                "cannot mix bare values with 'key: value' entries ('{}')",
                truncate(&scalars[0].0)
            ),
        )),
    }
}

/// Parse a whole document into its top-level map.
pub fn parse_config(source: &str) -> Result<ConfigMap> {
    let lines = preprocess(source)?;
    if lines.is_empty() {
        return Ok(ConfigMap::new());
    }
    if lines[0].indent != 0 {
        return Err(FlowError::single(
            lines[0].lineno,
            "first entry must start at column 0",
        ));
    }
    let mut start = 0usize;
    let v = parse_block(&lines, &mut start, -1)?;
    if start != lines.len() {
        return Err(FlowError::single(
            lines[start].lineno,
            format!("unexpected content '{}'", truncate(&lines[start].text)),
        ));
    }
    match v {
        ConfigValue::Map(m) => Ok(m),
        _ => Err(FlowError::single(
            lines[0].lineno,
            "top level of a flow file must be 'Section: ...' entries",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_block_entries() {
        let m = parse_config("a: 1\nb:\n  c: two\n  d: 'three'\n").unwrap();
        assert_eq!(m.get_scalar("a"), Some("1"));
        let b = m.get("b").unwrap().as_map().unwrap();
        assert_eq!(b.get_scalar("c"), Some("two"));
        assert_eq!(b.get_scalar("d"), Some("three"), "quotes stripped");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let m = parse_config("# header\na: 1  # trailing\n\n\nb: '#notcomment'\n").unwrap();
        assert_eq!(m.get_scalar("a"), Some("1"));
        assert_eq!(m.get_scalar("b"), Some("#notcomment"));
    }

    #[test]
    fn inline_lists_with_mappings() {
        let m = parse_config("cols: [project, question => title, tags]\n").unwrap();
        let items = m.get("cols").unwrap().as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].as_scalar(), Some("question => title"));
    }

    #[test]
    fn multiline_inline_list() {
        let src = "ipl_tweets: [\n  postedTime => created_at,\n  body => text,\n  location => user.location\n]\n";
        let m = parse_config(src).unwrap();
        let items = m.get("ipl_tweets").unwrap().as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].as_scalar(), Some("location => user.location"));
    }

    #[test]
    fn block_lists_of_maps() {
        let src = "aggregates:\n- operator: sum\n  apply_on: noOfCheckins\n  out_field: total_checkins\n- operator: sum\n  apply_on: noOfBugs\n  out_field: total_jira\n";
        let m = parse_config(src).unwrap();
        let aggs = m.get("aggregates").unwrap().as_list().unwrap();
        assert_eq!(aggs.len(), 2);
        let a0 = aggs[0].as_map().unwrap();
        assert_eq!(a0.get_scalar("operator"), Some("sum"));
        assert_eq!(a0.get_scalar("out_field"), Some("total_checkins"));
    }

    #[test]
    fn layout_row_cells() {
        let src = "rows:\n- [span12: W.apache_custom_widget]\n- [span4: W.a, span8: W.b]\n";
        let m = parse_config(src).unwrap();
        let rows = m.get("rows").unwrap().as_list().unwrap();
        assert_eq!(rows.len(), 2);
        let row1 = rows[1].as_list().unwrap();
        assert_eq!(row1.len(), 2);
        let cell = row1[0].as_map().unwrap();
        assert_eq!(cell.get_scalar("span4"), Some("W.a"));
    }

    #[test]
    fn flow_continuation_pipe_at_eol() {
        let src = "F:\n  D.players_tweets: D.ipl_tweets |\n    T.players_pipeline |\n    T.players_count\n";
        let m = parse_config(src).unwrap();
        let f = m.get("F").unwrap().as_map().unwrap();
        assert_eq!(
            f.get_scalar("D.players_tweets"),
            Some("D.ipl_tweets | T.players_pipeline | T.players_count")
        );
    }

    #[test]
    fn flow_continuation_pipe_at_bol() {
        let src = "F:\n  D.temp: D.releases\n  | T.calculate_total_release\n";
        let m = parse_config(src).unwrap();
        let f = m.get("F").unwrap().as_map().unwrap();
        assert_eq!(
            f.get_scalar("D.temp"),
            Some("D.releases | T.calculate_total_release")
        );
    }

    #[test]
    fn flow_as_block_value() {
        // figure 9: flow expression as a block under the key.
        let src = "F:\n  D.checkin_jira_emails:\n    D.svn_jira_summary | T.get_svn_jira_count\n";
        let m = parse_config(src).unwrap();
        let f = m.get("F").unwrap().as_map().unwrap();
        assert_eq!(
            f.get_scalar("D.checkin_jira_emails"),
            Some("D.svn_jira_summary | T.get_svn_jira_count")
        );
    }

    #[test]
    fn fan_in_parenthesised_multiline() {
        let src = "F:\n  D.rel_qa_tags: (D.temp_release_count,\n    D.stack_summary\n  ) | T.combine_stack_summary\n";
        let m = parse_config(src).unwrap();
        let f = m.get("F").unwrap().as_map().unwrap();
        let flow = f.get_scalar("D.rel_qa_tags").unwrap();
        assert!(flow.starts_with("(D.temp_release_count"));
        assert!(flow.ends_with("| T.combine_stack_summary"));
    }

    #[test]
    fn nested_list_item_with_block_map() {
        // MapMarker markers: `- marker1:` opening a nested block.
        let src = "markers:\n- marker1:\n    type: circle_marker\n    size: big\n";
        let m = parse_config(src).unwrap();
        let markers = m.get("markers").unwrap().as_list().unwrap();
        let item = markers[0].as_map().unwrap();
        let inner = item.get("marker1").unwrap().as_map().unwrap();
        assert_eq!(inner.get_scalar("type"), Some("circle_marker"));
        assert_eq!(inner.get_scalar("size"), Some("big"));
    }

    #[test]
    fn tab_layout_tabs() {
        let src = "tabs:\n- name: 'Player'\n  body: W.playertweetstab\n- name: 'Word'\n  body: W.wordtweetstab\n";
        let m = parse_config(src).unwrap();
        let tabs = m.get("tabs").unwrap().as_list().unwrap();
        assert_eq!(tabs.len(), 2);
        assert_eq!(tabs[1].as_map().unwrap().get_scalar("name"), Some("Word"));
    }

    #[test]
    fn url_values_not_split_on_colon() {
        let src = "source: https://api.stackexchange.com/2.2/questions?order=desc\n";
        let m = parse_config(src).unwrap();
        assert_eq!(
            m.get_scalar("source"),
            Some("https://api.stackexchange.com/2.2/questions?order=desc")
        );
    }

    #[test]
    fn errors_are_located() {
        let err = parse_config("a:\n\tb: 1\n").unwrap_err();
        assert_eq!(err.first().line, 2);
        assert!(err.first().message.contains("tabs"));

        let err = parse_config("cols: [a, b\n").unwrap_err();
        assert!(err.first().message.contains("unbalanced"));
    }

    #[test]
    fn mixing_scalars_and_entries_rejected() {
        let err = parse_config("a:\n  plainvalue\n  k: v\n").unwrap_err();
        assert!(err.first().message.contains("cannot mix"));
    }

    #[test]
    fn empty_value_no_children_is_empty_scalar() {
        let m = parse_config("a: 1\nendpoint:\n").unwrap();
        assert_eq!(m.get_scalar("endpoint"), Some(""));
    }

    #[test]
    fn empty_input() {
        assert!(parse_config("").unwrap().is_empty());
        assert!(parse_config("# only comments\n\n").unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_preserved_in_order() {
        let m = parse_config("a: 1\na: 2\n").unwrap();
        let keys: Vec<&str> = m.entries().map(|(k, _, _)| k).collect();
        assert_eq!(keys, vec!["a", "a"]);
        assert_eq!(m.get_scalar("a"), Some("1"), "get returns first");
    }
}
