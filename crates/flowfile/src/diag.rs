//! Diagnostics with source positions.
//!
//! §5.2.2 observation 7 records that error reporting which leaks the
//! underlying engine breaks the abstraction — the most popular debugging
//! strategy became "roll back and re-add". Diagnostics here therefore speak
//! flow-file vocabulary (sections, data objects, tasks, widgets) and always
//! carry a line number.

use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; the file still compiles.
    Warning,
    /// The file is rejected.
    Error,
}

/// One message tied to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// 1-based source line (0 = whole file).
    pub line: usize,
    /// Message in flow-file vocabulary.
    pub message: String,
}

impl Diagnostic {
    /// An error at a line.
    pub fn error(line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            line,
            message: message.into(),
        }
    }

    /// A warning at a line.
    pub fn warning(line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        if self.line == 0 {
            write!(f, "{sev}: {}", self.message)
        } else {
            write!(f, "{sev} (line {}): {}", self.line, self.message)
        }
    }
}

/// Error type carrying one or more diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowError {
    /// All collected diagnostics (at least one error).
    pub diagnostics: Vec<Diagnostic>,
}

impl FlowError {
    /// Single-diagnostic error.
    pub fn single(line: usize, message: impl Into<String>) -> Self {
        FlowError {
            diagnostics: vec![Diagnostic::error(line, message)],
        }
    }

    /// From a diagnostic list (keeps warnings for context).
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        FlowError { diagnostics }
    }

    /// The first error diagnostic.
    pub fn first(&self) -> &Diagnostic {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .unwrap_or(&self.diagnostics[0])
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FlowError {}

/// Result alias for flow-file operations.
pub type Result<T, E = FlowError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_severity() {
        let d = Diagnostic::error(12, "unknown task 'T.foo'");
        assert_eq!(d.to_string(), "error (line 12): unknown task 'T.foo'");
        let d = Diagnostic::warning(0, "unused data object");
        assert_eq!(d.to_string(), "warning: unused data object");
    }

    #[test]
    fn first_prefers_errors() {
        let e = FlowError::from_diagnostics(vec![
            Diagnostic::warning(1, "w"),
            Diagnostic::error(2, "e"),
        ]);
        assert_eq!(e.first().line, 2);
        let multi = e.to_string();
        assert!(multi.contains("w") && multi.contains("e"));
    }
}
