//! Interpretation of the generic config tree into the typed
//! [`crate::ast::FlowFile`] AST.

use crate::ast::{
    is_identifier, ColumnSpec, DataObject, DataRef, Flow, FlowFile, LayoutCell, LayoutDef, TaskDef,
    WidgetDef, WidgetSource,
};
use crate::config::{parse_config, ConfigMap, ConfigValue};
use crate::diag::{Diagnostic, FlowError, Result};
use crate::flowexpr::parse_flow_expr;

/// Parse flow-file text into an AST.
///
/// `name` is the dashboard name (assigned by the platform, e.g. from the
/// `/dashboards/<name>/create` URL). Errors carry line-located diagnostics;
/// referential validation is a separate pass
/// ([`validate`](crate::validate::validate)).
pub fn parse_flow_file(name: &str, text: &str) -> Result<FlowFile> {
    let top = parse_config(text)?;
    let mut ff = FlowFile {
        name: name.to_string(),
        ..Default::default()
    };
    let mut errors: Vec<Diagnostic> = Vec::new();

    // First pass: sections in declaration order.
    for (key, value, line) in top.entries() {
        match key {
            "D" => parse_data_section(value, line, &mut ff, &mut errors),
            "T" => parse_task_section(value, line, &mut ff, &mut errors),
            "F" => parse_flow_section(value, line, &mut ff, &mut errors),
            "W" => parse_widget_section(value, line, &mut ff, &mut errors),
            "L" => parse_layout_section(value, line, &mut ff, &mut errors),
            k if is_data_detail_key(k) => {
                let obj_name = k.split_once('.').expect("checked").1.trim().to_string();
                apply_data_details(&obj_name, value, line, &mut ff, &mut errors);
            }
            k => errors.push(Diagnostic::error(
                line,
                format!("unknown top-level section '{k}' (expected D, T, F, W, L or D.<name>)"),
            )),
        }
    }

    if errors
        .iter()
        .any(|d| d.severity == crate::diag::Severity::Error)
    {
        return Err(FlowError::from_diagnostics(errors));
    }
    Ok(ff)
}

fn is_data_detail_key(k: &str) -> bool {
    matches!(DataRef::parse(k), Some(DataRef::Data(_)))
        || (k.starts_with('+') && matches!(DataRef::parse(&k[1..]), Some(DataRef::Data(_))))
}

fn ensure_data_object<'a>(ff: &'a mut FlowFile, name: &str, line: usize) -> &'a mut DataObject {
    if !ff.data.iter().any(|d| d.name == name) {
        ff.data.push(DataObject {
            name: name.to_string(),
            columns: Vec::new(),
            props: ConfigMap::new(),
            endpoint: false,
            publish: None,
            line,
        });
    }
    ff.data
        .iter_mut()
        .find(|d| d.name == name)
        .expect("just ensured")
}

fn parse_column_spec(item: &str) -> ColumnSpec {
    match item.split_once("=>") {
        Some((name, path)) => ColumnSpec::mapped(name.trim(), path.trim()),
        None => ColumnSpec::plain(item.trim()),
    }
}

fn parse_data_section(
    value: &ConfigValue,
    line: usize,
    ff: &mut FlowFile,
    errors: &mut Vec<Diagnostic>,
) {
    let Some(map) = value.as_map() else {
        errors.push(Diagnostic::error(
            line,
            "D section must contain data objects",
        ));
        return;
    };
    for (key, v, dline) in map.entries() {
        // Inside D: either `name: [cols]` schema entries or nested
        // `D.name:` detail blocks.
        if is_data_detail_key(key) {
            let obj = key.split_once('.').expect("checked").1.trim().to_string();
            apply_data_details(&obj, v, dline, ff, errors);
            continue;
        }
        if !is_identifier(key) {
            errors.push(Diagnostic::error(
                dline,
                format!("invalid data object name '{key}'"),
            ));
            continue;
        }
        if ff
            .data
            .iter()
            .any(|d| d.name == key && !d.columns.is_empty())
        {
            errors.push(Diagnostic::error(
                dline,
                format!("duplicate data object '{key}'"),
            ));
            continue;
        }
        let columns: Vec<ColumnSpec> = match v {
            ConfigValue::List(items) => items
                .iter()
                .filter_map(|i| i.as_scalar())
                .map(parse_column_spec)
                .collect(),
            ConfigValue::Scalar(s) if s.is_empty() => Vec::new(),
            ConfigValue::Scalar(s) => vec![parse_column_spec(s)],
            ConfigValue::Map(_) => {
                // A map here is a detail block written without the D. prefix
                // — accepted for convenience.
                apply_data_details(key, v, dline, ff, errors);
                continue;
            }
        };
        let obj = ensure_data_object(ff, key, dline);
        obj.columns = columns;
        obj.line = dline;
    }
}

fn apply_data_details(
    name: &str,
    value: &ConfigValue,
    line: usize,
    ff: &mut FlowFile,
    errors: &mut Vec<Diagnostic>,
) {
    let Some(map) = value.as_map() else {
        errors.push(Diagnostic::error(
            line,
            format!("data details for '{name}' must be 'property: value' entries"),
        ));
        return;
    };
    let obj = ensure_data_object(ff, name, line);
    for (k, v, pline) in map.entries() {
        match k {
            "endpoint" => match v.as_scalar() {
                Some("true") | Some("") => obj.endpoint = true,
                Some("false") => obj.endpoint = false,
                _ => errors.push(Diagnostic::error(
                    pline,
                    format!("endpoint for '{name}' must be true or false"),
                )),
            },
            "publish" => match v.as_scalar() {
                Some(p) if is_identifier(p) => obj.publish = Some(p.to_string()),
                _ => errors.push(Diagnostic::error(
                    pline,
                    format!("publish for '{name}' must name a shared data object"),
                )),
            },
            _ => obj.props.push(k, v.clone(), pline),
        }
    }
}

fn parse_task_section(
    value: &ConfigValue,
    line: usize,
    ff: &mut FlowFile,
    errors: &mut Vec<Diagnostic>,
) {
    let Some(map) = value.as_map() else {
        errors.push(Diagnostic::error(
            line,
            "T section must contain task definitions",
        ));
        return;
    };
    for (key, v, tline) in map.entries() {
        if !is_identifier(key) {
            errors.push(Diagnostic::error(
                tline,
                format!("invalid task name '{key}'"),
            ));
            continue;
        }
        if ff.tasks.iter().any(|t| t.name == key) {
            errors.push(Diagnostic::error(tline, format!("duplicate task '{key}'")));
            continue;
        }
        let Some(tmap) = v.as_map() else {
            errors.push(Diagnostic::error(
                tline,
                format!("task '{key}' must be a block of parameters"),
            ));
            continue;
        };
        // `parallel:` composites have no `type:`; their type is 'parallel'.
        let task_type = match tmap.get_scalar("type") {
            Some(t) => t.to_string(),
            None if tmap.contains("parallel") => "parallel".to_string(),
            None => {
                errors.push(Diagnostic::error(
                    tline,
                    format!("task '{key}' is missing 'type:'"),
                ));
                continue;
            }
        };
        let mut params = ConfigMap::new();
        for (k, pv, pline) in tmap.entries() {
            if k != "type" {
                params.push(k, pv.clone(), pline);
            }
        }
        ff.tasks.push(TaskDef {
            name: key.to_string(),
            task_type,
            params,
            line: tline,
        });
    }
}

fn parse_flow_section(
    value: &ConfigValue,
    line: usize,
    ff: &mut FlowFile,
    errors: &mut Vec<Diagnostic>,
) {
    let Some(map) = value.as_map() else {
        errors.push(Diagnostic::error(line, "F section must contain flows"));
        return;
    };
    for (key, v, fline) in map.entries() {
        let (endpoint_alias, key_body) = match key.strip_prefix('+') {
            Some(rest) => (true, rest.trim()),
            None => (false, key),
        };
        let output = match DataRef::parse(key_body) {
            Some(DataRef::Data(n)) => n,
            _ => {
                errors.push(Diagnostic::error(
                    fline,
                    format!("flow output must be 'D.<name>', got '{key}'"),
                ));
                continue;
            }
        };
        match v {
            ConfigValue::Scalar(expr) => match parse_flow_expr(expr, fline, true) {
                Ok(fe) => {
                    if ff.flows.iter().any(|f| f.output == output) {
                        errors.push(Diagnostic::error(
                            fline,
                            format!("data object 'D.{output}' is produced by more than one flow"),
                        ));
                        continue;
                    }
                    ff.flows.push(Flow {
                        output,
                        inputs: fe.inputs,
                        tasks: fe.tasks,
                        endpoint_alias,
                        line: fline,
                    });
                }
                Err(e) => errors.extend(e.diagnostics),
            },
            // A map under an F-section D.name key is a detail block
            // (figure 19 places endpoint/publish right after the flow).
            ConfigValue::Map(_) => {
                apply_data_details(&output, v, fline, ff, errors);
                if endpoint_alias {
                    ensure_data_object(ff, &output, fline).endpoint = true;
                }
            }
            ConfigValue::List(_) => errors.push(Diagnostic::error(
                fline,
                format!("flow for 'D.{output}' must be a pipe expression"),
            )),
        }
    }
}

fn parse_widget_section(
    value: &ConfigValue,
    line: usize,
    ff: &mut FlowFile,
    errors: &mut Vec<Diagnostic>,
) {
    let Some(map) = value.as_map() else {
        errors.push(Diagnostic::error(
            line,
            "W section must contain widget definitions",
        ));
        return;
    };
    for (key, v, wline) in map.entries() {
        if !is_identifier(key) {
            errors.push(Diagnostic::error(
                wline,
                format!("invalid widget name '{key}'"),
            ));
            continue;
        }
        if ff.widgets.iter().any(|w| w.name == key) {
            errors.push(Diagnostic::error(
                wline,
                format!("duplicate widget '{key}'"),
            ));
            continue;
        }
        let Some(wmap) = v.as_map() else {
            errors.push(Diagnostic::error(
                wline,
                format!("widget '{key}' must be a block of attributes"),
            ));
            continue;
        };
        let Some(widget_type) = wmap.get_scalar("type").map(str::to_string) else {
            errors.push(Diagnostic::error(
                wline,
                format!("widget '{key}' is missing 'type:'"),
            ));
            continue;
        };
        let source = match wmap.get("source") {
            None => None,
            Some(ConfigValue::Scalar(expr)) => {
                match parse_flow_expr(expr, wmap.line_of("source").unwrap_or(wline), false) {
                    Ok(fe) => {
                        if fe.inputs.len() != 1 {
                            errors.push(Diagnostic::error(
                                wline,
                                format!("widget '{key}' source must have exactly one input"),
                            ));
                            None
                        } else {
                            Some(WidgetSource::Flow {
                                input: fe.inputs.into_iter().next().expect("len checked"),
                                tasks: fe.tasks,
                            })
                        }
                    }
                    Err(e) => {
                        errors.extend(e.diagnostics);
                        None
                    }
                }
            }
            Some(ConfigValue::List(items)) => Some(WidgetSource::Static(
                items
                    .iter()
                    .filter_map(|i| i.as_scalar())
                    .map(str::to_string)
                    .collect(),
            )),
            Some(ConfigValue::Map(_)) => {
                errors.push(Diagnostic::error(
                    wline,
                    format!("widget '{key}' source must be a flow or a static list"),
                ));
                None
            }
        };
        let mut params = ConfigMap::new();
        for (k, pv, pline) in wmap.entries() {
            if k != "type" && k != "source" {
                params.push(k, pv.clone(), pline);
            }
        }
        ff.widgets.push(WidgetDef {
            name: key.to_string(),
            widget_type,
            source,
            params,
            line: wline,
        });
    }
}

fn parse_layout_section(
    value: &ConfigValue,
    line: usize,
    ff: &mut FlowFile,
    errors: &mut Vec<Diagnostic>,
) {
    if ff.layout.is_some() {
        errors.push(Diagnostic::error(line, "duplicate L section"));
        return;
    }
    let Some(map) = value.as_map() else {
        errors.push(Diagnostic::error(
            line,
            "L section must contain layout entries",
        ));
        return;
    };
    let mut layout = LayoutDef {
        description: map.get_scalar("description").map(str::to_string),
        rows: Vec::new(),
        line,
    };
    if let Some(rows_val) = map.get("rows") {
        let Some(rows) = rows_val.as_list() else {
            errors.push(Diagnostic::error(line, "layout 'rows' must be a list"));
            return;
        };
        for row in rows {
            let cells = parse_layout_row(row, line, errors);
            layout.rows.push(cells);
        }
    }
    ff.layout = Some(layout);
}

/// Parse one `- [span4: W.a, span8: W.b]` row into cells.
pub(crate) fn parse_layout_row(
    row: &ConfigValue,
    line: usize,
    errors: &mut Vec<Diagnostic>,
) -> Vec<LayoutCell> {
    let mut cells = Vec::new();
    let items: Vec<&ConfigValue> = match row {
        ConfigValue::List(items) => items.iter().collect(),
        ConfigValue::Map(_) => vec![row],
        ConfigValue::Scalar(_) => {
            errors.push(Diagnostic::error(
                line,
                "layout row must be a list of 'spanN: W.widget' cells",
            ));
            return cells;
        }
    };
    for item in items {
        let Some(cell_map) = item.as_map() else {
            errors.push(Diagnostic::error(
                line,
                "layout cell must be 'spanN: W.widget'",
            ));
            continue;
        };
        for (k, v, cline) in cell_map.entries() {
            let Some(span_str) = k.strip_prefix("span") else {
                errors.push(Diagnostic::error(
                    cline,
                    format!("layout cell key must be 'spanN', got '{k}'"),
                ));
                continue;
            };
            let Ok(span) = span_str.parse::<u8>() else {
                errors.push(Diagnostic::error(cline, format!("invalid span '{k}'")));
                continue;
            };
            if !(1..=12).contains(&span) {
                errors.push(Diagnostic::error(
                    cline,
                    format!("span must be 1..=12, got {span}"),
                ));
                continue;
            }
            match v.as_scalar().and_then(DataRef::parse) {
                Some(DataRef::Widget(w)) => cells.push(LayoutCell { span, widget: w }),
                _ => errors.push(Diagnostic::error(
                    cline,
                    format!("layout cell must reference a widget (W.*), got '{:?}'", v),
                )),
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
D:
  stack_summary: [project, question, answer, tags]
  checkin_summary: [project, year, total_checkins]

D.stack_summary:
  separator: ','
  source: 'stackoverflow.csv'
  format: 'csv'

T:
  classification:
    type: filter_by
    filter_expression: rating < 3
  get_count:
    type: groupby
    groupby: [project, year]

F:
  D.checkin_summary: D.stack_summary | T.get_count

W:
  bubble:
    type: BubbleChart
    source: D.checkin_summary | T.classification
    text: project
    size: total_checkins

L:
  description: Test dashboard
  rows:
  - [span12: W.bubble]
"#;

    #[test]
    fn parses_all_sections() {
        let ff = parse_flow_file("test", SMALL).unwrap();
        assert_eq!(ff.name, "test");
        assert_eq!(ff.data.len(), 2);
        assert_eq!(ff.tasks.len(), 2);
        assert_eq!(ff.flows.len(), 1);
        assert_eq!(ff.widgets.len(), 1);
        assert!(ff.layout.is_some());
    }

    #[test]
    fn data_details_merge_into_schema_object() {
        let ff = parse_flow_file("test", SMALL).unwrap();
        let d = ff.data_object("stack_summary").unwrap();
        assert_eq!(
            d.column_names(),
            vec!["project", "question", "answer", "tags"]
        );
        assert_eq!(d.props.get_scalar("source"), Some("stackoverflow.csv"));
        assert_eq!(d.props.get_scalar("format"), Some("csv"));
        assert_eq!(d.props.get_scalar("separator"), Some(","));
    }

    #[test]
    fn flow_parsed_with_tasks() {
        let ff = parse_flow_file("test", SMALL).unwrap();
        let f = &ff.flows[0];
        assert_eq!(f.output, "checkin_summary");
        assert_eq!(f.inputs, vec!["stack_summary"]);
        assert_eq!(f.tasks, vec!["get_count"]);
        assert!(!f.endpoint_alias);
    }

    #[test]
    fn widget_source_and_params() {
        let ff = parse_flow_file("test", SMALL).unwrap();
        let w = ff.widget("bubble").unwrap();
        assert_eq!(w.widget_type, "BubbleChart");
        assert_eq!(
            w.source,
            Some(WidgetSource::Flow {
                input: "checkin_summary".into(),
                tasks: vec!["classification".into()]
            })
        );
        assert_eq!(w.params.get_scalar("text"), Some("project"));
        assert!(!w.params.contains("type"), "type lifted out of params");
    }

    #[test]
    fn layout_cells() {
        let ff = parse_flow_file("test", SMALL).unwrap();
        let l = ff.layout.as_ref().unwrap();
        assert_eq!(l.description.as_deref(), Some("Test dashboard"));
        assert_eq!(l.rows.len(), 1);
        assert_eq!(
            l.rows[0][0],
            LayoutCell {
                span: 12,
                widget: "bubble".into()
            }
        );
    }

    #[test]
    fn path_mappings_in_schema() {
        let src = "D:\n  ipl_tweets: [\n    postedTime => created_at,\n    body => text,\n    location => user.location\n  ]\n";
        let ff = parse_flow_file("t", src).unwrap();
        let d = ff.data_object("ipl_tweets").unwrap();
        assert_eq!(
            d.columns[2],
            ColumnSpec::mapped("location", "user.location")
        );
    }

    #[test]
    fn endpoint_and_publish_props() {
        let src = "D:\n  a: [x]\nD.a:\n  endpoint: true\n  publish: shared_a\n";
        let ff = parse_flow_file("t", src).unwrap();
        let d = ff.data_object("a").unwrap();
        assert!(d.endpoint);
        assert_eq!(d.publish.as_deref(), Some("shared_a"));
        assert_eq!(ff.endpoint_objects(), vec!["a"]);
    }

    #[test]
    fn endpoint_alias_plus_prefix() {
        let src = "D:\n  a: [x]\nT:\n  t1:\n    type: filter_by\nF:\n  +D.b: D.a | T.t1\n";
        let ff = parse_flow_file("t", src).unwrap();
        assert!(ff.flows[0].endpoint_alias);
        assert!(ff.endpoint_objects().contains(&"b"));
    }

    #[test]
    fn details_inside_f_section() {
        // figure 19: D.players_tweets endpoint/publish block adjacent to flows.
        let src = "D:\n  a: [x]\nT:\n  t1:\n    type: filter_by\nF:\n  D.b: D.a | T.t1\n  D.b:\n    endpoint: true\n    publish: players_tweets\n";
        let ff = parse_flow_file("t", src).unwrap();
        let d = ff.data_object("b").unwrap();
        assert!(d.endpoint);
        assert_eq!(d.publish.as_deref(), Some("players_tweets"));
    }

    #[test]
    fn parallel_task_without_type() {
        let src = "T:\n  players_pipeline:\n    parallel: [T.norm_ipldate, T.extract_players]\n";
        let ff = parse_flow_file("t", src).unwrap();
        let t = ff.task("players_pipeline").unwrap();
        assert_eq!(t.task_type, "parallel");
        let items = t.params.get("parallel").unwrap().as_list().unwrap();
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn static_widget_source() {
        let src = "W:\n  ipl_duration:\n    type: Slider\n    source: ['2013-05-02', '2013-05-27']\n    range: true\n";
        let ff = parse_flow_file("t", src).unwrap();
        let w = ff.widget("ipl_duration").unwrap();
        assert_eq!(
            w.source,
            Some(WidgetSource::Static(vec![
                "2013-05-02".into(),
                "2013-05-27".into()
            ]))
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let src = "T:\n  t1:\n    type: filter_by\n  t1:\n    type: groupby\n";
        let err = parse_flow_file("t", src).unwrap_err();
        assert!(err.to_string().contains("duplicate task"));

        let src = "D:\n  a: [x]\n  a: [y]\n";
        assert!(parse_flow_file("t", src).is_err());

        let src = "F:\n  D.b: D.a | T.t\n  D.b: D.c | T.t\n";
        let err = parse_flow_file("t", src).unwrap_err();
        assert!(err.to_string().contains("more than one flow"));
    }

    #[test]
    fn missing_type_rejected() {
        let err = parse_flow_file("t", "T:\n  t1:\n    foo: bar\n").unwrap_err();
        assert!(err.to_string().contains("missing 'type:'"));
        let err = parse_flow_file("t", "W:\n  w1:\n    text: x\n").unwrap_err();
        assert!(err.to_string().contains("missing 'type:'"));
    }

    #[test]
    fn unknown_section_rejected() {
        let err = parse_flow_file("t", "Q:\n  x: 1\n").unwrap_err();
        assert!(err.to_string().contains("unknown top-level section"));
    }

    #[test]
    fn bad_span_rejected() {
        let err = parse_flow_file("t", "L:\n  rows:\n  - [span13: W.x]\n").unwrap_err();
        assert!(err.to_string().contains("span must be 1..=12"));
        let err = parse_flow_file("t", "L:\n  rows:\n  - [width4: W.x]\n").unwrap_err();
        assert!(err.to_string().contains("spanN"));
    }

    #[test]
    fn empty_file_parses() {
        let ff = parse_flow_file("t", "").unwrap();
        assert!(ff.data.is_empty() && ff.tasks.is_empty());
    }
}
