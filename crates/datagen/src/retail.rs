//! Retail sales generator — a second enterprise-flavoured hackathon
//! dataset (§5.1: "transaction as well as reference data about business
//! entities"), used by the `branderstanding`-style example (figure 34).

use crate::rng::SeededRng;
use shareinsights_tabular::datefmt::civil_from_days;
use shareinsights_tabular::row;
use shareinsights_tabular::{Row, Table};

/// `(brand, category, unit price, popularity weight)`.
pub const PRODUCTS: [(&str, &str, f64, f64); 12] = [
    ("Acme Cola", "beverages", 1.5, 4.0),
    ("Acme Diet", "beverages", 1.5, 2.0),
    ("Zest Tea", "beverages", 2.0, 1.5),
    ("Crunchy Oats", "breakfast", 4.0, 2.5),
    ("Morning Flakes", "breakfast", 3.5, 2.0),
    ("Choco Pops", "breakfast", 4.5, 1.0),
    ("Fresh Soap", "personal-care", 2.5, 3.0),
    ("Silk Shampoo", "personal-care", 6.0, 2.0),
    ("Mint Paste", "personal-care", 3.0, 2.5),
    ("Super Clean", "household", 5.0, 1.5),
    ("Bright Wash", "household", 7.0, 1.0),
    ("Spark Wipes", "household", 3.0, 0.8),
];

const REGIONS: [&str; 5] = ["north", "south", "east", "west", "central"];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct RetailConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of transaction rows.
    pub transactions: usize,
    /// First sale date (epoch days).
    pub start_day: i32,
    /// Window length in days.
    pub days: usize,
}

impl Default for RetailConfig {
    fn default() -> Self {
        RetailConfig {
            seed: 13,
            transactions: 5_000,
            start_day: shareinsights_tabular::datefmt::days_from_civil(2014, 6, 1),
            days: 90,
        }
    }
}

/// Generated retail corpus: transactions plus product reference data.
#[derive(Debug, Clone)]
pub struct RetailCorpus {
    /// `[date, brand, region, units, revenue]`.
    pub sales: Table,
    /// `[brand, category, unit_price]`.
    pub products: Table,
}

/// Generate the corpus.
pub fn generate(cfg: &RetailConfig) -> RetailCorpus {
    let mut rng = SeededRng::new(cfg.seed);
    let weights: Vec<f64> = PRODUCTS.iter().map(|p| p.3).collect();
    let mut sales_rows: Vec<Row> = Vec::with_capacity(cfg.transactions);
    for _ in 0..cfg.transactions {
        let pi = rng.weighted_index(&weights);
        let (brand, _, price, _) = PRODUCTS[pi];
        let day = cfg.start_day + rng.index(cfg.days) as i32;
        let (y, m, d) = civil_from_days(day);
        // Weekend uplift.
        let wd = shareinsights_tabular::datefmt::weekday_from_days(day);
        let base_units = if wd >= 5 { 8.0 } else { 5.0 };
        let units = rng.count_around(base_units).max(1) as i64;
        let revenue = (units as f64 * price * 100.0).round() / 100.0;
        sales_rows.push(row![
            format!("{y:04}-{m:02}-{d:02}"),
            brand,
            *rng.pick(&REGIONS),
            units,
            revenue
        ]);
    }
    let product_rows: Vec<Row> = PRODUCTS
        .iter()
        .map(|(b, c, p, _)| row![*b, *c, *p])
        .collect();
    RetailCorpus {
        sales: Table::from_rows(
            &["date", "brand", "region", "units", "revenue"],
            &sales_rows,
        )
        .expect("sales table"),
        products: Table::from_rows(&["brand", "category", "unit_price"], &product_rows)
            .expect("products table"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_joined_consistency() {
        let a = generate(&RetailConfig::default());
        let b = generate(&RetailConfig::default());
        assert_eq!(a.sales, b.sales);
        // Every sales brand exists in the product reference table.
        let brands: Vec<String> = (0..a.products.num_rows())
            .map(|i| a.products.value(i, "brand").unwrap().to_string())
            .collect();
        for i in 0..a.sales.num_rows().min(500) {
            let brand = a.sales.value(i, "brand").unwrap().to_string();
            assert!(brands.contains(&brand));
        }
    }

    #[test]
    fn revenue_matches_units_times_price() {
        let c = generate(&RetailConfig::default());
        for i in 0..c.sales.num_rows().min(200) {
            let brand = c.sales.value(i, "brand").unwrap().to_string();
            let units = c.sales.value(i, "units").unwrap().as_int().unwrap();
            let revenue = c.sales.value(i, "revenue").unwrap().as_float().unwrap();
            let price = PRODUCTS.iter().find(|p| p.0 == brand).unwrap().2;
            assert!((revenue - units as f64 * price).abs() < 0.01);
        }
    }

    #[test]
    fn popular_brands_sell_more() {
        let c = generate(&RetailConfig::default());
        let mut counts = std::collections::HashMap::<String, usize>::new();
        for i in 0..c.sales.num_rows() {
            *counts
                .entry(c.sales.value(i, "brand").unwrap().to_string())
                .or_default() += 1;
        }
        let cola = counts.get("Acme Cola").copied().unwrap_or(0);
        let wipes = counts.get("Spark Wipes").copied().unwrap_or(0);
        assert!(cola > wipes * 2, "cola {cola} vs wipes {wipes}");
    }
}
