//! Service-desk ticket generator — the enterprise dataset behind the
//! hackathon's "Service Desk Ticket Analysis" dashboard (figure 33) and the
//! custom task one winning team wrote to predict resolution dates from
//! ticket keywords (§5.2.2 observation 2).

use crate::rng::SeededRng;
use shareinsights_tabular::datefmt::civil_from_days;
use shareinsights_tabular::row;
use shareinsights_tabular::{Row, Table};

/// `(category, keywords, mean resolution days)` — keyword presence drives
/// resolution time, which is exactly the signal the custom predictor task
/// learns.
pub const CATEGORIES: [(&str, &[&str], f64); 6] = [
    ("network", &["vpn", "wifi", "dns", "proxy"], 2.0),
    ("hardware", &["laptop", "monitor", "keyboard", "disk"], 5.0),
    (
        "access",
        &["password", "login", "permission", "account"],
        1.0,
    ),
    ("email", &["outlook", "mailbox", "spam", "calendar"], 1.5),
    ("software", &["install", "license", "crash", "update"], 3.0),
    (
        "database",
        &["backup", "restore", "query", "replication"],
        7.0,
    ),
];

const FILLER: [&str; 10] = [
    "user reports issue with",
    "urgent help needed for",
    "intermittent problem affecting",
    "please investigate",
    "ticket raised regarding",
    "escalated case about",
    "repeated failure of",
    "new request for",
    "follow up on",
    "cannot proceed due to",
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TicketsConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of tickets.
    pub tickets: usize,
    /// First open date (epoch days).
    pub start_day: i32,
    /// Window length in days.
    pub days: usize,
}

impl Default for TicketsConfig {
    fn default() -> Self {
        TicketsConfig {
            seed: 11,
            tickets: 2_000,
            start_day: shareinsights_tabular::datefmt::days_from_civil(2014, 1, 1),
            days: 180,
        }
    }
}

fn iso(day: i32) -> String {
    let (y, m, d) = civil_from_days(day);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Generate a ticket table: `[ticket_id, opened, closed, category, priority,
/// description, resolution_days]`.
pub fn generate(cfg: &TicketsConfig) -> Table {
    let mut rng = SeededRng::new(cfg.seed);
    let mut rows: Vec<Row> = Vec::with_capacity(cfg.tickets);
    for id in 0..cfg.tickets {
        let (category, keywords, mean_days) = CATEGORIES[rng.zipf(CATEGORIES.len(), 0.7)];
        let opened = cfg.start_day + rng.index(cfg.days) as i32;
        let priority =
            ["low", "medium", "high", "critical"][rng.weighted_index(&[4.0, 3.0, 2.0, 1.0])];
        let priority_factor = match priority {
            "critical" => 0.4,
            "high" => 0.7,
            "medium" => 1.0,
            _ => 1.4,
        };
        let resolution = (rng.count_around(mean_days * priority_factor) as i64).max(0);
        let closed = opened + resolution as i32;
        let keyword = rng.pick(keywords);
        let description = format!("{} {} {}", rng.pick(&FILLER), keyword, category);
        rows.push(row![
            format!("TCK-{id:05}"),
            iso(opened),
            iso(closed),
            category,
            priority,
            description,
            resolution
        ]);
    }
    Table::from_rows(
        &[
            "ticket_id",
            "opened",
            "closed",
            "category",
            "priority",
            "description",
            "resolution_days",
        ],
        &rows,
    )
    .expect("tickets table")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let a = generate(&TicketsConfig::default());
        let b = generate(&TicketsConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.num_rows(), 2_000);
        assert_eq!(a.num_columns(), 7);
    }

    #[test]
    fn keywords_predict_resolution() {
        // Database tickets (mean 7d) should take longer than access (1d) —
        // the signal the custom predictor task exploits.
        let t = generate(&TicketsConfig::default());
        let mut db = (0i64, 0i64);
        let mut access = (0i64, 0i64);
        for i in 0..t.num_rows() {
            let cat = t.value(i, "category").unwrap().to_string();
            let days = t.value(i, "resolution_days").unwrap().as_int().unwrap();
            if cat == "database" {
                db = (db.0 + days, db.1 + 1);
            } else if cat == "access" {
                access = (access.0 + days, access.1 + 1);
            }
        }
        assert!(db.1 > 10 && access.1 > 10);
        let (db_avg, acc_avg) = (db.0 as f64 / db.1 as f64, access.0 as f64 / access.1 as f64);
        assert!(db_avg > acc_avg * 2.0, "db {db_avg} vs access {acc_avg}");
    }

    #[test]
    fn closed_never_before_opened() {
        let t = generate(&TicketsConfig::default());
        for i in 0..t.num_rows() {
            let opened = t.value(i, "opened").unwrap().to_string();
            let closed = t.value(i, "closed").unwrap().to_string();
            assert!(closed >= opened, "{opened} -> {closed}");
        }
    }

    #[test]
    fn descriptions_contain_category_keywords() {
        let t = generate(&TicketsConfig::default());
        for i in 0..50 {
            let cat = t.value(i, "category").unwrap().to_string();
            let desc = t.value(i, "description").unwrap().to_string();
            let (_, keywords, _) = CATEGORIES.iter().find(|(c, _, _)| *c == cat).unwrap();
            assert!(
                keywords.iter().any(|k| desc.contains(k)),
                "desc '{desc}' lacks {cat} keywords"
            );
        }
    }
}
