//! # shareinsights-datagen
//!
//! Seeded synthetic dataset generators replacing the paper's proprietary
//! data feeds (Gnip IPL tweets, Apache SVN/JIRA/Stack Overflow dumps,
//! enterprise hackathon data-sets). Every generator is deterministic given
//! a seed, so tests, examples and benches are reproducible.
//!
//! | module | paper source | what it generates |
//! |---|---|---|
//! | [`ipl`] | Gnip twitter feed (§3.7) | hierarchical JSON tweets with teams, players, cities, skewed volumes; plus the `players.txt`/`teams.csv` dictionaries and `lat_long` reference table |
//! | [`apache`] | apache.org project data (§3) | per-project check-ins, bugs, emails, releases, contributors, Stack Overflow traffic |
//! | [`tickets`] | hackathon enterprise data (§5) | service-desk tickets with categories, keywords and resolution times |
//! | [`retail`] | hackathon enterprise data (§5) | retail sales transactions with reference data |
//! | [`dirty`] | §5.2.2 obs. 4 | controlled corruption of any table: bad dates, stray whitespace, wrong-type cells, duplicate rows |

pub mod apache;
pub mod dirty;
pub mod ipl;
pub mod retail;
pub mod rng;
pub mod tickets;

pub use rng::SeededRng;
