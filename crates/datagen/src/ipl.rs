//! IPL tweet generator: the stand-in for the Gnip twitter feed the paper's
//! tweet-analysis dashboard ingests (§3.7, appendix A).
//!
//! Generates:
//! * raw tweets as NDJSON documents with the Gnip shape
//!   (`created_at`, `text`, `user.location`) — exactly what the
//!   `ipl_tweets` data object maps with `=>` paths;
//! * the `players.txt` dictionary (surface forms → canonical names);
//! * the `teams.csv` dictionary;
//! * the `dim_teams`, `team_players` and `lat_long` reference tables of
//!   appendix A.1.
//!
//! Volumes are zipf-skewed per team and day-shaped (match days spike), so
//! downstream streamgraphs and word clouds have realistic structure.

use crate::rng::SeededRng;
use shareinsights_tabular::io::json::quote_json;
use shareinsights_tabular::row;
use shareinsights_tabular::{Row, Table};

/// An IPL team with its reference attributes.
#[derive(Debug, Clone)]
pub struct Team {
    /// Short code, e.g. `CSK`.
    pub code: &'static str,
    /// Full franchise name.
    pub full_name: &'static str,
    /// Dashboard sort order.
    pub sort_order: i64,
    /// Brand colour.
    pub color: &'static str,
    /// Home city (drives location skew).
    pub home_city: &'static str,
}

/// The eight franchises the generator models.
pub const TEAMS: [Team; 8] = [
    Team {
        code: "CSK",
        full_name: "Chennai Super Kings",
        sort_order: 1,
        color: "#f9cd05",
        home_city: "chennai",
    },
    Team {
        code: "MI",
        full_name: "Mumbai Indians",
        sort_order: 2,
        color: "#004ba0",
        home_city: "mumbai",
    },
    Team {
        code: "RCB",
        full_name: "Royal Challengers Bangalore",
        sort_order: 3,
        color: "#ec1c24",
        home_city: "bangalore",
    },
    Team {
        code: "KKR",
        full_name: "Kolkata Knight Riders",
        sort_order: 4,
        color: "#3a225d",
        home_city: "kolkata",
    },
    Team {
        code: "RR",
        full_name: "Rajasthan Royals",
        sort_order: 5,
        color: "#254aa5",
        home_city: "jaipur",
    },
    Team {
        code: "SRH",
        full_name: "Sunrisers Hyderabad",
        sort_order: 6,
        color: "#ff822a",
        home_city: "hyderabad",
    },
    Team {
        code: "KXIP",
        full_name: "Kings XI Punjab",
        sort_order: 7,
        color: "#d71920",
        home_city: "chandigarh",
    },
    Team {
        code: "DD",
        full_name: "Delhi Daredevils",
        sort_order: 8,
        color: "#17449b",
        home_city: "delhi",
    },
];

/// `(canonical name, surface forms, team code)` for the player dictionary.
pub const PLAYERS: [(&str, &[&str], &str); 16] = [
    ("MS Dhoni", &["dhoni", "msd", "mahi", "thala"], "CSK"),
    ("Suresh Raina", &["raina", "chinna thala"], "CSK"),
    ("Rohit Sharma", &["rohit", "hitman"], "MI"),
    ("Kieron Pollard", &["pollard", "polly"], "MI"),
    ("Virat Kohli", &["kohli", "vk", "cheeku"], "RCB"),
    ("Chris Gayle", &["gayle", "universe boss"], "RCB"),
    ("AB de Villiers", &["abd", "de villiers", "mr 360"], "RCB"),
    ("Gautam Gambhir", &["gambhir", "gauti"], "KKR"),
    ("Sunil Narine", &["narine"], "KKR"),
    ("Shane Watson", &["watson", "watto"], "RR"),
    ("Ajinkya Rahane", &["rahane", "jinks"], "RR"),
    ("Shikhar Dhawan", &["dhawan", "gabbar"], "SRH"),
    ("Dale Steyn", &["steyn"], "SRH"),
    ("David Miller", &["miller", "killer miller"], "KXIP"),
    ("Glenn Maxwell", &["maxwell", "maxi"], "KXIP"),
    ("Virender Sehwag", &["sehwag", "viru"], "DD"),
];

const CITIES: [&str; 12] = [
    "Mumbai",
    "Delhi",
    "Chennai",
    "Kolkata",
    "Bangalore",
    "Hyderabad",
    "Jaipur",
    "Pune",
    "Ahmedabad",
    "Chandigarh",
    "Lucknow",
    "Kochi",
];

const PHRASES: [&str; 14] = [
    "what a six by",
    "brilliant catch from",
    "cant believe that shot by",
    "superb bowling spell by",
    "another boundary for",
    "huge wicket falls",
    "this match is on fire",
    "great finish coming up",
    "momentum shifting now",
    "powerplay madness",
    "death overs drama",
    "century loading for",
    "dot ball pressure building",
    "strategic timeout taken",
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct IplConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total tweets to generate.
    pub tweets: usize,
    /// Tournament start date (epoch days).
    pub start_day: i32,
    /// Tournament length in days.
    pub days: usize,
}

impl Default for IplConfig {
    fn default() -> Self {
        IplConfig {
            seed: 42,
            tweets: 5_000,
            // 2013-05-02, the date the paper's date slider starts at.
            start_day: shareinsights_tabular::datefmt::days_from_civil(2013, 5, 2),
            days: 26,
        }
    }
}

/// Generated IPL corpus: raw NDJSON plus the reference tables.
#[derive(Debug, Clone)]
pub struct IplCorpus {
    /// NDJSON tweets in the Gnip document shape.
    pub tweets_ndjson: String,
    /// `players.txt` dictionary content (`surface => Canonical`).
    pub players_dict: String,
    /// `teams.csv` dictionary content.
    pub teams_dict: String,
    /// `dim_teams` reference table.
    pub dim_teams: Table,
    /// `team_players` reference table.
    pub team_players: Table,
    /// `lat_long` state-to-coordinates table.
    pub lat_long: Table,
}

/// Generate an IPL corpus.
pub fn generate(cfg: &IplConfig) -> IplCorpus {
    let mut rng = SeededRng::new(cfg.seed);
    let mut ndjson = String::with_capacity(cfg.tweets * 160);

    // Precompute per-team day weights: each team spikes on its "match days".
    let mut team_day_weight = vec![vec![1.0f64; cfg.days]; TEAMS.len()];
    for (ti, _) in TEAMS.iter().enumerate() {
        for (d, w) in team_day_weight[ti].iter_mut().enumerate() {
            if (d + ti) % 4 == 0 {
                *w = 6.0; // match day spike
            }
        }
    }

    for _ in 0..cfg.tweets {
        // Zipf-skewed team popularity.
        let ti = rng.zipf(TEAMS.len(), 0.9);
        let team = &TEAMS[ti];
        let day = rng.weighted_index(&team_day_weight[ti]);
        let abs_day = cfg.start_day + day as i32;
        let (y, mo, dd) = shareinsights_tabular::datefmt::civil_from_days(abs_day);
        let hh = rng.int_range(8, 23);
        let mi = rng.int_range(0, 59);
        let ss = rng.int_range(0, 59);
        let weekday = shareinsights_tabular::datefmt::weekday_from_days(abs_day);
        let wd = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][weekday as usize];
        let mon = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ][(mo - 1) as usize];
        let created = format!("{wd} {mon} {dd:02} {hh:02}:{mi:02}:{ss:02} +0530 {y:04}");

        // Body: phrase + team mention (usually) + player mention (often).
        let mut body = String::new();
        #[allow(clippy::explicit_auto_deref)]
        {
            body.push_str(*rng.pick(&PHRASES));
        }
        if rng.chance(0.85) {
            body.push(' ');
            body.push_str(team.code);
        }
        if rng.chance(0.7) {
            // Pick a player, biased to this team's players.
            let candidates: Vec<usize> = (0..PLAYERS.len())
                .filter(|&pi| PLAYERS[pi].2 == team.code)
                .collect();
            let pi = if !candidates.is_empty() && rng.chance(0.8) {
                candidates[rng.index(candidates.len())]
            } else {
                rng.index(PLAYERS.len())
            };
            let (_, surfaces, _) = PLAYERS[pi];
            body.push(' ');
            #[allow(clippy::explicit_auto_deref)]
            {
                body.push_str(*rng.pick(surfaces));
            }
        }
        if rng.chance(0.3) {
            body.push_str(" ipl2013");
        }

        // Location skewed to the team's home city; some noise/missing.
        let location = if rng.chance(0.12) {
            None
        } else if rng.chance(0.5) {
            Some(format!("{}, India", capitalize(team.home_city)))
        } else {
            Some(rng.pick(&CITIES).to_string())
        };

        ndjson.push_str("{\"created_at\": ");
        ndjson.push_str(&quote_json(&created));
        ndjson.push_str(", \"text\": ");
        ndjson.push_str(&quote_json(&body));
        ndjson.push_str(", \"user\": {");
        if let Some(loc) = location {
            ndjson.push_str("\"location\": ");
            ndjson.push_str(&quote_json(&loc));
        }
        ndjson.push_str("}}\n");
    }

    IplCorpus {
        tweets_ndjson: ndjson,
        players_dict: players_dict(),
        teams_dict: teams_dict(),
        dim_teams: dim_teams(),
        team_players: team_players(),
        lat_long: lat_long(),
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// The `players.txt` dictionary content.
pub fn players_dict() -> String {
    let mut out = String::from("# surface form => canonical player name\n");
    for (canonical, surfaces, _) in PLAYERS {
        for s in surfaces {
            out.push_str(&format!("{s} => {canonical}\n"));
        }
    }
    out
}

/// The `teams.csv` dictionary content (surface form, canonical full name).
pub fn teams_dict() -> String {
    let mut out = String::new();
    for t in &TEAMS {
        out.push_str(&format!("{},{}\n", t.code.to_lowercase(), t.full_name));
        out.push_str(&format!("{},{}\n", t.full_name.to_lowercase(), t.full_name));
    }
    out
}

/// The `dim_teams` reference table of appendix A.1.
pub fn dim_teams() -> Table {
    let rows: Vec<Row> = TEAMS
        .iter()
        .enumerate()
        .map(|(i, t)| {
            row![
                (i + 1) as i64,
                t.code,
                t.full_name,
                t.sort_order,
                t.color,
                0i64
            ]
        })
        .collect();
    Table::from_rows(
        &[
            "team_number",
            "team",
            "team_fullName",
            "sort_order",
            "color",
            "noOfTweets",
        ],
        &rows,
    )
    .expect("static dim_teams")
}

/// The `team_players` reference table of appendix A.1.
pub fn team_players() -> Table {
    let rows: Vec<Row> = PLAYERS
        .iter()
        .enumerate()
        .map(|(i, (canonical, _, team))| {
            let full = TEAMS
                .iter()
                .find(|t| t.code == *team)
                .map(|t| t.full_name)
                .unwrap_or("");
            row![*canonical, full, *team, (i + 1) as i64, 0i64]
        })
        .collect();
    Table::from_rows(
        &["player", "team_fullName", "team", "player_id", "noOfTweets"],
        &rows,
    )
    .expect("static team_players")
}

/// The `lat_long` table: state to map-marker coordinates.
pub fn lat_long() -> Table {
    let states: [(&str, f64, f64); 14] = [
        ("Maharashtra", 19.075, 72.877),
        ("Delhi", 28.704, 77.102),
        ("Tamil Nadu", 13.082, 80.270),
        ("West Bengal", 22.572, 88.363),
        ("Karnataka", 12.971, 77.594),
        ("Telangana", 17.385, 78.486),
        ("Rajasthan", 26.912, 75.787),
        ("Gujarat", 23.022, 72.571),
        ("Punjab", 30.733, 76.779),
        ("Uttar Pradesh", 26.846, 80.946),
        ("Kerala", 9.931, 76.267),
        ("Madhya Pradesh", 23.259, 77.412),
        ("Bihar", 25.594, 85.137),
        ("Jharkhand", 23.344, 85.309),
    ];
    let rows: Vec<Row> = states
        .iter()
        .map(|(s, lat, lon)| row![*s, format!("{lat},{lon}"), *lat, *lon])
        .collect();
    Table::from_rows(&["state", "point_one", "point_two", "point_three"], &rows)
        .expect("static lat_long")
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::io::json::{read_json_records, PathMapping};
    use shareinsights_tabular::text::ExtractDict;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate(&IplConfig::default());
        let b = generate(&IplConfig::default());
        assert_eq!(a.tweets_ndjson, b.tweets_ndjson);
        let c = generate(&IplConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a.tweets_ndjson, c.tweets_ndjson);
    }

    #[test]
    fn ndjson_parses_with_figure18_mapping() {
        let corpus = generate(&IplConfig {
            tweets: 200,
            ..Default::default()
        });
        let mapping = PathMapping::new(vec![
            ("postedTime".into(), "created_at".into()),
            ("body".into(), "text".into()),
            ("location".into(), "user.location".into()),
        ]);
        let t = read_json_records(&corpus.tweets_ndjson, &mapping).unwrap();
        assert_eq!(t.num_rows(), 200);
        assert_eq!(t.schema().names(), vec!["postedTime", "body", "location"]);
        // Some tweets have no location (the generator's missing-data rate).
        let nulls = t.column("location").unwrap().null_count();
        assert!(nulls > 0 && nulls < 200, "nulls: {nulls}");
    }

    #[test]
    fn created_at_matches_twitter_format() {
        let corpus = generate(&IplConfig {
            tweets: 50,
            ..Default::default()
        });
        let pat = shareinsights_tabular::datefmt::DatePattern::compile("E MMM dd HH:mm:ss Z yyyy")
            .unwrap();
        for line in corpus.tweets_ndjson.lines() {
            let doc = shareinsights_tabular::io::json::parse_json(line).unwrap();
            let created = doc.path("created_at").unwrap().as_str().unwrap();
            assert!(pat.parse(created).is_ok(), "unparseable: {created}");
        }
    }

    #[test]
    fn players_dict_extracts_from_tweets() {
        let corpus = generate(&IplConfig {
            tweets: 500,
            ..Default::default()
        });
        let dict = ExtractDict::parse(&corpus.players_dict);
        assert!(dict.len() >= 30);
        let mut hits = 0;
        for line in corpus.tweets_ndjson.lines() {
            let doc = shareinsights_tabular::io::json::parse_json(line).unwrap();
            let text = doc.path("text").unwrap().as_str().unwrap();
            if dict.extract_first(text).is_some() {
                hits += 1;
            }
        }
        assert!(hits > 200, "player mentions: {hits}/500");
    }

    #[test]
    fn reference_tables_are_consistent() {
        let dim = dim_teams();
        let tp = team_players();
        assert_eq!(dim.num_rows(), TEAMS.len());
        assert_eq!(tp.num_rows(), PLAYERS.len());
        // Every player's team full name exists in dim_teams.
        let full_names: Vec<String> = (0..dim.num_rows())
            .map(|i| dim.value(i, "team_fullName").unwrap().to_string())
            .collect();
        for i in 0..tp.num_rows() {
            let f = tp.value(i, "team_fullName").unwrap().to_string();
            assert!(full_names.contains(&f), "{f}");
        }
    }

    #[test]
    fn team_volume_is_skewed() {
        let corpus = generate(&IplConfig {
            tweets: 2_000,
            ..Default::default()
        });
        let dict = ExtractDict::parse(&corpus.teams_dict);
        let mut counts = std::collections::HashMap::<String, usize>::new();
        for line in corpus.tweets_ndjson.lines() {
            let doc = shareinsights_tabular::io::json::parse_json(line).unwrap();
            let text = doc.path("text").unwrap().as_str().unwrap();
            if let Some(team) = dict.extract_first(text) {
                *counts.entry(team.to_string()).or_default() += 1;
            }
        }
        let mut v: Vec<usize> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        assert!(v.len() >= 6, "most teams mentioned: {v:?}");
        assert!(v[0] > v[v.len() - 1] * 2, "zipf head-heaviness: {v:?}");
    }
}
