//! Apache project activity generator: the stand-in for the bug-ticket,
//! commit-history, Stack Overflow and contributor data behind the paper's
//! Apache dashboard (§3, figure 3).
//!
//! Generates the tables the Apache flow file consumes:
//! * `svn_jira_summary` — per project/year: check-ins, bugs, emails;
//! * `stack_summary` — per project: questions, answers, tags;
//! * `releases` — per project/year release counts;
//! * `contributors` — per project contributor counts;
//! * plus a category mapping (project → technology).

use crate::rng::SeededRng;
use shareinsights_tabular::row;
use shareinsights_tabular::{Row, Table};

/// `(project, technology category, relative activity weight)`.
pub const PROJECTS: [(&str, &str, f64); 16] = [
    ("hadoop", "big-data", 3.0),
    ("spark", "big-data", 4.0),
    ("pig", "big-data", 1.5),
    ("hive", "big-data", 2.0),
    ("hbase", "big-data", 2.0),
    ("kafka", "streaming", 3.5),
    ("storm", "streaming", 1.5),
    ("flink", "streaming", 2.5),
    ("cassandra", "database", 2.5),
    ("couchdb", "database", 1.0),
    ("derby", "database", 0.5),
    ("lucene", "search", 2.0),
    ("solr", "search", 1.8),
    ("tomcat", "web", 2.2),
    ("httpd", "web", 1.6),
    ("struts", "web", 0.8),
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct ApacheConfig {
    /// RNG seed.
    pub seed: u64,
    /// First year covered.
    pub start_year: i64,
    /// Number of years covered.
    pub years: usize,
}

impl Default for ApacheConfig {
    fn default() -> Self {
        ApacheConfig {
            seed: 7,
            start_year: 2010,
            years: 5,
        }
    }
}

/// The generated Apache corpus.
#[derive(Debug, Clone)]
pub struct ApacheCorpus {
    /// Per project/year activity: `[project, year, noOfBugs, noOfCheckins,
    /// noOfEmailsTotal]`.
    pub svn_jira_summary: Table,
    /// Stack Overflow traffic: `[project, question, answer, tags]`.
    pub stack_summary: Table,
    /// Releases: `[project, year, releases]`.
    pub releases: Table,
    /// Contributors: `[project, contributors]`.
    pub contributors: Table,
    /// Category map: `[project, technology]`.
    pub categories: Table,
}

/// Generate the corpus.
pub fn generate(cfg: &ApacheConfig) -> ApacheCorpus {
    let mut rng = SeededRng::new(cfg.seed);

    let mut svn_rows: Vec<Row> = Vec::new();
    let mut release_rows: Vec<Row> = Vec::new();
    let mut stack_rows: Vec<Row> = Vec::new();
    let mut contrib_rows: Vec<Row> = Vec::new();
    let mut cat_rows: Vec<Row> = Vec::new();

    for (project, tech, weight) in PROJECTS {
        cat_rows.push(row![project, tech]);
        let contributors = rng.count_around(40.0 * weight) as i64 + 1;
        contrib_rows.push(row![project, contributors]);

        // Stack Overflow: several rows per project (one per "month bucket").
        for _ in 0..6 {
            let questions = rng.count_around(80.0 * weight) as i64;
            let answers = (questions as f64 * (0.6 + 0.3 * rng.unit())) as i64;
            stack_rows.push(row![
                project,
                questions,
                answers,
                format!("{project},{tech}")
            ]);
        }

        for yi in 0..cfg.years {
            let year = cfg.start_year + yi as i64;
            // Projects trend: big-data grows over the window, web declines.
            let trend = match tech {
                "big-data" | "streaming" => 1.0 + 0.25 * yi as f64,
                "web" => (1.0 - 0.1 * yi as f64).max(0.3),
                _ => 1.0,
            };
            let checkins = rng.count_around(300.0 * weight * trend) as i64;
            let bugs = rng.count_around(60.0 * weight * trend) as i64;
            let emails = rng.count_around(500.0 * weight * trend) as i64;
            svn_rows.push(row![project, year, bugs, checkins, emails]);
            let releases = rng.int_range(0, (2.0 * weight * trend) as i64 + 1);
            release_rows.push(row![project, year, releases]);
        }
    }

    ApacheCorpus {
        svn_jira_summary: Table::from_rows(
            &[
                "project",
                "year",
                "noOfBugs",
                "noOfCheckins",
                "noOfEmailsTotal",
            ],
            &svn_rows,
        )
        .expect("svn_jira_summary"),
        stack_summary: Table::from_rows(&["project", "question", "answer", "tags"], &stack_rows)
            .expect("stack_summary"),
        releases: Table::from_rows(&["project", "year", "releases"], &release_rows)
            .expect("releases"),
        contributors: Table::from_rows(&["project", "contributors"], &contrib_rows)
            .expect("contributors"),
        categories: Table::from_rows(&["project", "technology"], &cat_rows).expect("categories"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(&ApacheConfig::default());
        let b = generate(&ApacheConfig::default());
        assert_eq!(a.svn_jira_summary, b.svn_jira_summary);
        assert_eq!(a.stack_summary, b.stack_summary);
    }

    #[test]
    fn shapes_match_flowfile_schemas() {
        let c = generate(&ApacheConfig::default());
        assert_eq!(
            c.svn_jira_summary.schema().names(),
            vec![
                "project",
                "year",
                "noOfBugs",
                "noOfCheckins",
                "noOfEmailsTotal"
            ]
        );
        assert_eq!(
            c.stack_summary.schema().names(),
            vec!["project", "question", "answer", "tags"]
        );
        assert_eq!(c.svn_jira_summary.num_rows(), PROJECTS.len() * 5);
        assert_eq!(c.contributors.num_rows(), PROJECTS.len());
    }

    #[test]
    fn big_data_grows_over_years() {
        let c = generate(&ApacheConfig::default());
        let t = &c.svn_jira_summary;
        let mut first_year = 0i64;
        let mut last_year = 0i64;
        for i in 0..t.num_rows() {
            if t.value(i, "project").unwrap().to_string() == "spark" {
                let y = t.value(i, "year").unwrap().as_int().unwrap();
                let ch = t.value(i, "noOfCheckins").unwrap().as_int().unwrap();
                if y == 2010 {
                    first_year = ch;
                }
                if y == 2014 {
                    last_year = ch;
                }
            }
        }
        assert!(
            last_year > first_year,
            "spark activity should grow: {first_year} -> {last_year}"
        );
    }

    #[test]
    fn all_counts_nonnegative() {
        let c = generate(&ApacheConfig::default());
        for t in [&c.svn_jira_summary, &c.releases, &c.contributors] {
            for i in 0..t.num_rows() {
                for col in t.schema().names() {
                    if let Some(v) = t.value(i, col).unwrap().as_int() {
                        assert!(v >= 0, "{col}={v}");
                    }
                }
            }
        }
    }
}
