//! Controlled data corruption.
//!
//! §5.2.2 observation 4: "During the actual competition, the real data
//! provided forced teams to define more elaborate pipelines to cleanse the
//! data." The OBS-4 bench regenerates that effect by corrupting clean
//! synthetic tables in measured ways and counting how many extra cleaning
//! tasks a pipeline needs to recover.

use crate::rng::SeededRng;
use shareinsights_tabular::{Row, Table, Value};

/// What fraction of cells/rows each corruption touches.
#[derive(Debug, Clone)]
pub struct DirtyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Probability a string cell gains stray surrounding whitespace.
    pub whitespace_rate: f64,
    /// Probability a date-looking cell is rewritten in a different format.
    pub date_mangle_rate: f64,
    /// Probability a cell becomes null.
    pub null_rate: f64,
    /// Probability a row is duplicated.
    pub duplicate_rate: f64,
    /// Probability a string cell changes letter case.
    pub case_rate: f64,
}

impl Default for DirtyConfig {
    fn default() -> Self {
        DirtyConfig {
            seed: 99,
            whitespace_rate: 0.05,
            date_mangle_rate: 0.05,
            null_rate: 0.03,
            duplicate_rate: 0.02,
            case_rate: 0.05,
        }
    }
}

fn looks_like_iso_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter().enumerate().all(|(i, c)| {
            if i == 4 || i == 7 {
                *c == b'-'
            } else {
                c.is_ascii_digit()
            }
        })
}

/// Corrupt a table per the config. Row count grows by duplicates only.
pub fn corrupt(table: &Table, cfg: &DirtyConfig) -> Table {
    let mut rng = SeededRng::new(cfg.seed);
    let names: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows: Vec<Row> = Vec::with_capacity(table.num_rows());
    for i in 0..table.num_rows() {
        let mut row = table.row(i);
        for cell in row.0.iter_mut() {
            if rng.chance(cfg.null_rate) {
                *cell = Value::Null;
                continue;
            }
            if let Value::Str(s) = cell {
                if looks_like_iso_date(s) && rng.chance(cfg.date_mangle_rate) {
                    // Rewrite 2013-05-02 as 02/05/2013 — the classic
                    // regional-format landmine.
                    let (y, m, d) = (&s[..4], &s[5..7], &s[8..10]);
                    *cell = Value::Str(format!("{d}/{m}/{y}"));
                    continue;
                }
                if rng.chance(cfg.whitespace_rate) {
                    *cell = Value::Str(format!("  {s} "));
                    continue;
                }
                if rng.chance(cfg.case_rate) {
                    *cell = Value::Str(s.to_uppercase());
                }
            }
        }
        let dup = rng.chance(cfg.duplicate_rate);
        rows.push(row.clone());
        if dup {
            rows.push(row);
        }
    }
    Table::from_rows(&names, &rows).expect("corrupted table keeps shape")
}

/// Quality report comparing a table against cleanliness invariants —
/// what a meta-dashboard (§6 future work: auto-constructed data-quality
/// dashboards) would surface per column.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Total rows.
    pub rows: usize,
    /// Exact duplicate rows (beyond the first occurrence).
    pub duplicate_rows: usize,
    /// Null cells across all columns.
    pub null_cells: usize,
    /// String cells with leading/trailing whitespace.
    pub padded_cells: usize,
    /// Cells in `dd/MM/yyyy` format in columns that also contain ISO dates.
    pub mixed_format_dates: usize,
}

/// Measure data-quality violations.
pub fn assess(table: &Table) -> QualityReport {
    use std::collections::HashSet;
    let mut seen: HashSet<Row> = HashSet::new();
    let mut duplicate_rows = 0;
    let mut null_cells = 0;
    let mut padded_cells = 0;
    let mut mixed_format_dates = 0;

    // Per column: does it contain ISO dates at all?
    let mut col_has_iso = vec![false; table.num_columns()];
    for (ci, col) in table.columns().iter().enumerate() {
        for i in 0..table.num_rows() {
            if col.str_at(i).is_some_and(looks_like_iso_date) {
                col_has_iso[ci] = true;
                break;
            }
        }
    }

    for i in 0..table.num_rows() {
        let row = table.row(i);
        if !seen.insert(row.clone()) {
            duplicate_rows += 1;
        }
        for (ci, v) in row.iter().enumerate() {
            match v {
                Value::Null => null_cells += 1,
                Value::Str(s) => {
                    if s != s.trim() {
                        padded_cells += 1;
                    }
                    if col_has_iso[ci] && s.len() == 10 && s.as_bytes()[2] == b'/' {
                        mixed_format_dates += 1;
                    }
                }
                _ => {}
            }
        }
    }
    QualityReport {
        rows: table.num_rows(),
        duplicate_rows,
        null_cells,
        padded_cells,
        mixed_format_dates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;

    fn clean() -> Table {
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                row![
                    format!("2013-05-{:02}", (i % 28) + 1),
                    format!("name{i}"),
                    i as i64
                ]
            })
            .collect();
        Table::from_rows(&["date", "name", "n"], &rows).unwrap()
    }

    #[test]
    fn clean_table_assesses_clean() {
        let r = assess(&clean());
        assert_eq!(
            r,
            QualityReport {
                rows: 200,
                duplicate_rows: 0,
                null_cells: 0,
                padded_cells: 0,
                mixed_format_dates: 0
            }
        );
    }

    #[test]
    fn corruption_introduces_measured_violations() {
        let dirty = corrupt(&clean(), &DirtyConfig::default());
        let r = assess(&dirty);
        assert!(r.rows > 200, "duplicates grow the table");
        assert!(r.null_cells > 0);
        assert!(r.padded_cells > 0);
        assert!(r.mixed_format_dates > 0);
    }

    #[test]
    fn corruption_is_deterministic() {
        let a = corrupt(&clean(), &DirtyConfig::default());
        let b = corrupt(&clean(), &DirtyConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rates_are_identity() {
        let cfg = DirtyConfig {
            whitespace_rate: 0.0,
            date_mangle_rate: 0.0,
            null_rate: 0.0,
            duplicate_rate: 0.0,
            case_rate: 0.0,
            ..Default::default()
        };
        assert_eq!(corrupt(&clean(), &cfg), clean());
    }

    #[test]
    fn iso_date_detector() {
        assert!(looks_like_iso_date("2013-05-02"));
        assert!(!looks_like_iso_date("02/05/2013"));
        assert!(!looks_like_iso_date("2013-5-2"));
        assert!(!looks_like_iso_date("hello"));
    }
}
