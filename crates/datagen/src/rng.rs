//! A self-contained seeded RNG (xoshiro256** seeded through SplitMix64)
//! giving every generator the same reproducible source plus the
//! weighted/zipfian helpers the generators share. Implemented locally so
//! the workspace has no crates.io dependencies.

/// A seeded RNG with dataset-generation helpers.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
}

impl SeededRng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, per the
        // reference implementation's seeding recommendation.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SeededRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform integer in `[0, n)` (rejection-sampled, unbiased).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        let n = n as u64;
        // Largest multiple of n that fits in u64 defines the accept zone.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return (x % n) as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty int range");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        if span == 0 {
            // Full i64 range.
            return self.next_u64() as i64;
        }
        let threshold = span.wrapping_neg() % span;
        let draw = loop {
            let x = self.next_u64();
            if x >= threshold {
                break x % span;
            }
        };
        (lo as i128 + draw as i128) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Pick one element uniformly.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Pick an index with probability proportional to `weights`.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must be positive");
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Zipf-distributed index in `[0, n)` with exponent `s` — the skew the
    /// IPL tweet volumes and word frequencies follow.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        // Inverse-CDF over precomputable harmonic weights would allocate;
        // for generator use, rejection-free linear scan over n is fine
        // because n is small (teams, players, word vocabulary).
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
        }
        let mut x = self.unit() * total;
        for k in 1..=n {
            x -= 1.0 / (k as f64).powf(s);
            if x <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Poisson-ish non-negative count with the given mean (normal
    /// approximation clipped at zero — good enough for volume shaping).
    pub fn count_around(&mut self, mean: f64) -> usize {
        let u1: f64 = self.unit().max(1e-12);
        let u2: f64 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + z * mean.sqrt()).round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.index(1000), b.index(1000));
        }
        let mut c = SeededRng::new(8);
        let same = (0..100).filter(|_| a.index(1000) == c.index(1000)).count();
        assert!(same < 10, "different seeds should diverge");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SeededRng::new(1);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&[8.0, 1.0, 1.0])] += 1;
        }
        assert!(counts[0] > 7_000, "heavy item dominates: {counts:?}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut r = SeededRng::new(2);
        let mut counts = vec![0usize; 20];
        for _ in 0..20_000 {
            counts[r.zipf(20, 1.0)] += 1;
        }
        assert!(counts[0] > counts[10] * 3, "{counts:?}");
        assert!(counts[0] > counts[19] * 5);
    }

    #[test]
    fn count_around_is_nonnegative_and_centred() {
        let mut r = SeededRng::new(3);
        let mean: f64 = (0..5_000).map(|_| r.count_around(50.0) as f64).sum::<f64>() / 5_000.0;
        assert!((mean - 50.0).abs() < 3.0, "mean {mean}");
        assert_eq!(r.count_around(0.0), 0);
    }

    #[test]
    fn bounds_respected() {
        let mut r = SeededRng::new(4);
        for _ in 0..1000 {
            let v = r.int_range(-5, 5);
            assert!((-5..=5).contains(&v));
            assert!(r.index(3) < 3);
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
        // Extremes don't overflow.
        r.int_range(i64::MIN, i64::MAX);
        assert_eq!(r.int_range(3, 3), 3);
    }
}
