//! Thin wrapper over `rand` giving every generator the same seeded,
//! reproducible source plus the weighted/zipfian helpers the generators
//! share.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG with dataset-generation helpers.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.inner.random_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty int range");
        self.inner.random_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Pick one element uniformly.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Pick an index with probability proportional to `weights`.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must be positive");
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Zipf-distributed index in `[0, n)` with exponent `s` — the skew the
    /// IPL tweet volumes and word frequencies follow.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        // Inverse-CDF over precomputable harmonic weights would allocate;
        // for generator use, rejection-free linear scan over n is fine
        // because n is small (teams, players, word vocabulary).
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
        }
        let mut x = self.unit() * total;
        for k in 1..=n {
            x -= 1.0 / (k as f64).powf(s);
            if x <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Poisson-ish non-negative count with the given mean (normal
    /// approximation clipped at zero — good enough for volume shaping).
    pub fn count_around(&mut self, mean: f64) -> usize {
        let u1: f64 = self.unit().max(1e-12);
        let u2: f64 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + z * mean.sqrt()).round().max(0.0) as usize
    }

    /// Access the underlying `rand` RNG for anything else.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.index(1000), b.index(1000));
        }
        let mut c = SeededRng::new(8);
        let same = (0..100).filter(|_| a.index(1000) == c.index(1000)).count();
        assert!(same < 10, "different seeds should diverge");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SeededRng::new(1);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&[8.0, 1.0, 1.0])] += 1;
        }
        assert!(counts[0] > 7_000, "heavy item dominates: {counts:?}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut r = SeededRng::new(2);
        let mut counts = vec![0usize; 20];
        for _ in 0..20_000 {
            counts[r.zipf(20, 1.0)] += 1;
        }
        assert!(counts[0] > counts[10] * 3, "{counts:?}");
        assert!(counts[0] > counts[19] * 5);
    }

    #[test]
    fn count_around_is_nonnegative_and_centred() {
        let mut r = SeededRng::new(3);
        let mean: f64 = (0..5_000).map(|_| r.count_around(50.0) as f64).sum::<f64>() / 5_000.0;
        assert!((mean - 50.0).abs() < 3.0, "mean {mean}");
        assert_eq!(r.count_around(0.0), 0);
    }

    #[test]
    fn bounds_respected() {
        let mut r = SeededRng::new(4);
        for _ in 0..1000 {
            let v = r.int_range(-5, 5);
            assert!((-5..=5).contains(&v));
            assert!(r.index(3) < 3);
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
