//! Dashboard runtime: widget instances, selection state, interaction
//! propagation, and rendering.
//!
//! Building a runtime wires every widget's `source:` chain to a
//! [`DataCube`] over the endpoint table it reads. Selecting a value on one
//! widget and re-rendering another evaluates the downstream interaction
//! flows against the new selection state — figure 13's "project selection
//! updates project details", without event handlers.

use crate::cube::DataCube;
use crate::error::{Result, WidgetError};
use crate::model::{binding_spec, validate_bindings};
use crate::registry::WidgetRegistry;
use crate::render::{render_widget, RenderNode};
use parking_lot::RwLock;
use shareinsights_engine::selection::{Selection, SelectionProvider};
use shareinsights_engine::task::{interpret_task, InterpretEnv, NamedTask};
use shareinsights_engine::TaskRegistry;
use shareinsights_flowfile::ast::{DataRef, FlowFile, WidgetDef, WidgetSource};
use shareinsights_flowfile::config::ConfigValue;
use shareinsights_tabular::{Table, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A widget bound to its data and holding its selection state.
pub struct WidgetInstance {
    /// The flow-file definition.
    pub def: WidgetDef,
    /// Interaction-flow tasks (empty for direct sources).
    tasks: Vec<NamedTask>,
    /// The cube serving this widget (None for static/sourceless widgets).
    cube: Option<Arc<DataCube>>,
    /// Static source values (sliders).
    static_values: Vec<String>,
    /// Selected values per widget column.
    selected: RwLock<HashMap<String, Vec<Value>>>,
    /// Range selection (sliders).
    range: RwLock<Option<(Value, Value)>>,
    /// Whether selections are ranges.
    range_selection: bool,
}

impl WidgetInstance {
    /// Record a discrete selection on a widget column (e.g. clicking the
    /// `pig` bubble sets column `text` to `["pig"]`).
    pub fn select(&self, column: &str, values: Vec<Value>) {
        self.selected.write().insert(column.to_string(), values);
    }

    /// Clear a column's selection.
    pub fn clear_selection(&self, column: &str) {
        self.selected.write().remove(column);
    }

    /// Set a slider range.
    pub fn set_range(&self, lo: Value, hi: Value) {
        *self.range.write() = Some((lo, hi));
    }

    /// The widget's current selection for a requested column, resolving
    /// widget-column names to selections (§3.5.1: widget columns behave as
    /// data columns).
    pub fn selection_for(&self, column: &str) -> Option<Selection> {
        if self.range_selection {
            if let Some((lo, hi)) = self.range.read().clone() {
                return Some(Selection::Range(lo, hi));
            }
            // Default slider range: its static bounds.
            if self.static_values.len() >= 2 {
                return Some(Selection::Range(
                    Value::Str(self.static_values[0].clone()),
                    Value::Str(self.static_values[self.static_values.len() - 1].clone()),
                ));
            }
            return None;
        }
        let selected = self.selected.read();
        if let Some(vals) = selected.get(column) {
            return Some(Selection::Values(vals.clone()));
        }
        // Permissive fallback: a single recorded selection answers any
        // column query (mirrors the paper's loose widget-column binding).
        if selected.len() == 1 {
            return selected.values().next().cloned().map(Selection::Values);
        }
        None
    }

    /// The column a widget attribute binds to. Marker attributes of
    /// `MapMarker` widgets are nested inside the `markers:` list and are
    /// searched there.
    pub fn binding(&self, attr: &str) -> Option<String> {
        if let Some(col) = self.def.params.get_scalar(attr) {
            return Some(col.to_string());
        }
        if let Some(ConfigValue::List(markers)) = self.def.params.get("markers") {
            for marker in markers {
                if let Some(m) = marker.as_map() {
                    for (_, v, _) in m.entries() {
                        if let Some(col) = v.as_map().and_then(|inner| inner.get_scalar(attr)) {
                            return Some(col.to_string());
                        }
                    }
                }
            }
        }
        None
    }
}

/// The live dashboard: widgets + shared selection state over endpoints.
pub struct DashboardRuntime {
    widgets: BTreeMap<String, Arc<WidgetInstance>>,
    cubes: BTreeMap<String, Arc<DataCube>>,
    registry: WidgetRegistry,
    layout_rows: Vec<Vec<(u8, String)>>,
}

impl std::fmt::Debug for DashboardRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DashboardRuntime")
            .field("widgets", &self.widgets.keys().collect::<Vec<_>>())
            .field("cubes", &self.cubes.keys().collect::<Vec<_>>())
            .field("layout_rows", &self.layout_rows)
            .finish()
    }
}

/// Selection provider view over the dashboard (what interaction filters
/// consult).
struct DashboardSelections {
    widgets: BTreeMap<String, Arc<WidgetInstance>>,
}

impl SelectionProvider for DashboardSelections {
    fn selection(&self, widget: &str, column: &str) -> Option<Selection> {
        self.widgets.get(widget)?.selection_for(column)
    }
}

impl DashboardRuntime {
    /// Build a runtime from a flow file and its endpoint tables.
    ///
    /// `endpoints` maps data-object names to materialised tables (the
    /// output of a batch run, or shared objects from other dashboards).
    pub fn build(
        ff: &FlowFile,
        endpoints: &BTreeMap<String, Table>,
        task_registry: &TaskRegistry,
        widget_registry: &WidgetRegistry,
    ) -> Result<DashboardRuntime> {
        let loader = |_: &str| None;
        let env = InterpretEnv {
            registry: task_registry,
            load_text: &loader,
            all_tasks: &ff.tasks,
        };

        let mut cubes: BTreeMap<String, Arc<DataCube>> = BTreeMap::new();
        let mut widgets: BTreeMap<String, Arc<WidgetInstance>> = BTreeMap::new();

        for def in &ff.widgets {
            let info = binding_spec(&def.widget_type);
            let custom = widget_registry.get(&def.widget_type);
            if info.is_none() && custom.is_none() {
                return Err(WidgetError::UnknownType {
                    widget: def.name.clone(),
                    widget_type: def.widget_type.clone(),
                });
            }
            let range_selection = info.map(|i| i.range_selection).unwrap_or(false)
                || custom.as_ref().is_some_and(|c| c.range_selection());

            let (tasks, cube, static_values, schema) = match &def.source {
                Some(WidgetSource::Flow { input, tasks }) => {
                    let table = endpoints
                        .get(input)
                        .ok_or_else(|| WidgetError::MissingSource {
                            widget: def.name.clone(),
                            source: input.clone(),
                        })?;
                    let cube = cubes
                        .entry(input.clone())
                        .or_insert_with(|| Arc::new(DataCube::new(table.clone())))
                        .clone();
                    let mut named = Vec::with_capacity(tasks.len());
                    for tname in tasks {
                        let tdef = ff.task(tname).ok_or_else(|| WidgetError::Flow {
                            widget: def.name.clone(),
                            message: format!("unknown task 'T.{tname}'"),
                        })?;
                        named.push(interpret_task(tdef, &env).map_err(|e| WidgetError::Flow {
                            widget: def.name.clone(),
                            message: e.to_string(),
                        })?);
                    }
                    // The schema after the chain (for binding validation):
                    // derive by propagating; fall back to the base schema.
                    let mut schema = table.schema().clone();
                    let mut ok = true;
                    for t in &named {
                        match t.kind.output_schema(&t.name, &[schema.clone()]) {
                            Ok(s) => schema = s,
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    let schema = ok.then_some(schema);
                    (named, Some(cube), Vec::new(), schema)
                }
                Some(WidgetSource::Static(values)) => (Vec::new(), None, values.clone(), None),
                None => (Vec::new(), None, Vec::new(), None),
            };

            match &custom {
                Some(factory) => factory.validate(def, schema.as_ref())?,
                None => validate_bindings(def, schema.as_ref())?,
            }

            let instance = Arc::new(WidgetInstance {
                def: def.clone(),
                tasks,
                cube,
                static_values,
                selected: RwLock::new(HashMap::new()),
                range: RwLock::new(None),
                range_selection,
            });
            // Figure 12: `default_selection: true` pre-selects a value
            // (`default_selection_key: text` / `default_selection_value:
            // 'pig'`), so dependent widgets render populated on first load.
            if def.params.get_bool("default_selection").unwrap_or(false) {
                let key = def
                    .params
                    .get_scalar("default_selection_key")
                    .unwrap_or("text");
                if let Some(value) = def.params.get_scalar("default_selection_value") {
                    instance.select(key, vec![Value::Str(value.to_string())]);
                }
            }
            widgets.insert(def.name.clone(), instance);
        }

        let layout_rows = ff
            .layout
            .as_ref()
            .map(|l| {
                l.rows
                    .iter()
                    .map(|row| row.iter().map(|c| (c.span, c.widget.clone())).collect())
                    .collect()
            })
            .unwrap_or_default();

        Ok(DashboardRuntime {
            widgets,
            cubes,
            registry: widget_registry.clone(),
            layout_rows,
        })
    }

    /// Widget instance by name.
    pub fn widget(&self, name: &str) -> Option<&Arc<WidgetInstance>> {
        self.widgets.get(name)
    }

    /// All widget names.
    pub fn widget_names(&self) -> Vec<&str> {
        self.widgets.keys().map(String::as_str).collect()
    }

    /// Record a discrete selection (a user click) on a widget column.
    pub fn select(&self, widget: &str, column: &str, values: Vec<Value>) -> Result<()> {
        self.widgets
            .get(widget)
            .ok_or_else(|| WidgetError::Invalid(format!("no widget '{widget}'")))?
            .select(column, values);
        Ok(())
    }

    /// Set a slider range.
    pub fn set_range(&self, widget: &str, lo: Value, hi: Value) -> Result<()> {
        self.widgets
            .get(widget)
            .ok_or_else(|| WidgetError::Invalid(format!("no widget '{widget}'")))?
            .set_range(lo, hi);
        Ok(())
    }

    fn selections(&self) -> DashboardSelections {
        DashboardSelections {
            widgets: self.widgets.clone(),
        }
    }

    /// Evaluate one widget's data under the current selection state.
    pub fn data_of(&self, widget: &str) -> Result<Table> {
        let inst = self
            .widgets
            .get(widget)
            .ok_or_else(|| WidgetError::Invalid(format!("no widget '{widget}'")))?;
        match (&inst.cube, inst.static_values.is_empty()) {
            (Some(cube), _) => {
                let sels = self.selections();
                Ok((*cube.eval(widget, &inst.tasks, &sels)?).clone())
            }
            (None, false) => {
                let rows: Vec<shareinsights_tabular::Row> = inst
                    .static_values
                    .iter()
                    .map(|v| shareinsights_tabular::Row(vec![Value::Str(v.clone())]))
                    .collect();
                Table::from_rows(&["value"], &rows).map_err(|e| WidgetError::Invalid(e.to_string()))
            }
            (None, true) => {
                Table::from_rows(&["value"], &[]).map_err(|e| WidgetError::Invalid(e.to_string()))
            }
        }
    }

    /// Render one widget (resolving sub-layouts and tabs recursively).
    pub fn render_widget(&self, name: &str, max_items: usize) -> Result<RenderNode> {
        let inst = self
            .widgets
            .get(name)
            .ok_or_else(|| WidgetError::Invalid(format!("no widget '{name}'")))?;
        match inst.def.widget_type.as_str() {
            "Layout" => {
                let mut children = Vec::new();
                if let Some(ConfigValue::List(rows)) = inst.def.params.get("rows") {
                    for row in rows {
                        for cell in row.as_list().unwrap_or(&[]) {
                            if let Some(m) = cell.as_map() {
                                for (_, v, _) in m.entries() {
                                    if let Some(DataRef::Widget(w)) =
                                        v.as_scalar().and_then(DataRef::parse)
                                    {
                                        children.push(self.render_widget(&w, max_items)?);
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(RenderNode::container(name, "Layout", children))
            }
            "TabLayout" => {
                let mut children = Vec::new();
                if let Some(ConfigValue::List(tabs)) = inst.def.params.get("tabs") {
                    for tab in tabs {
                        if let Some(body) = tab.as_map().and_then(|m| m.get_scalar("body")) {
                            if let Some(DataRef::Widget(w)) = DataRef::parse(body) {
                                children.push(self.render_widget(&w, max_items)?);
                            }
                        }
                    }
                }
                Ok(RenderNode::container(name, "TabLayout", children))
            }
            wtype => {
                let table = self.data_of(name)?;
                if let Some(factory) = self.registry.get(wtype) {
                    return Ok(factory.render(&inst.def, &table));
                }
                let inst2 = Arc::clone(inst);
                let binder = move |attr: &str| inst2.binding(attr);
                Ok(render_widget(name, wtype, &table, &binder, max_items))
            }
        }
    }

    /// Render the whole dashboard per the layout section.
    pub fn render(&self, max_items: usize) -> Result<RenderNode> {
        let mut children = Vec::new();
        if self.layout_rows.is_empty() {
            for name in self.widgets.keys() {
                children.push(self.render_widget(name, max_items)?);
            }
        } else {
            for row in &self.layout_rows {
                for (_, widget) in row {
                    children.push(self.render_widget(widget, max_items)?);
                }
            }
        }
        Ok(RenderNode::container("dashboard", "Dashboard", children))
    }

    /// Layout rows as `(span, widget)` lists (consumed by the layout
    /// solver).
    pub fn layout_rows(&self) -> &[Vec<(u8, String)>] {
        &self.layout_rows
    }

    /// Cache statistics summed over all cubes.
    pub fn cube_stats(&self) -> (u64, u64) {
        self.cubes
            .values()
            .map(|c| c.cache_stats())
            .fold((0, 0), |(h, m), (ch, cm)| (h + ch, m + cm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_flowfile::parse_flow_file;
    use shareinsights_tabular::row;

    const DASH: &str = r#"
W:
  teams:
    type: List
    source: D.dim_teams
    text: team

  ipl_duration:
    type: Slider
    source: ['2013-05-02', '2013-05-27']
    range: true

  relative_teamtweets:
    type: Streamgraph
    source: D.team_tweets | T.filter_by_date | T.filter_by_team
    x: date
    y: noOfTweets
    serie: team

T:
  filter_by_date:
    type: filter_by
    filter_by: [date]
    filter_source: W.ipl_duration

  filter_by_team:
    type: filter_by
    filter_by: [team]
    filter_source: W.teams
    filter_val: [text]

L:
  description: Clash of Titans
  rows:
  - [span12: W.teams]
  - [span11: W.ipl_duration]
  - [span11: W.relative_teamtweets]
"#;

    fn endpoints() -> BTreeMap<String, Table> {
        let mut m = BTreeMap::new();
        m.insert(
            "dim_teams".to_string(),
            Table::from_rows(&["team"], &[row!["CSK"], row!["MI"], row!["RCB"]]).unwrap(),
        );
        m.insert(
            "team_tweets".to_string(),
            Table::from_rows(
                &["date", "team", "noOfTweets"],
                &[
                    row!["2013-05-02", "CSK", 100i64],
                    row!["2013-05-03", "MI", 80i64],
                    row!["2013-06-01", "CSK", 10i64],
                ],
            )
            .unwrap(),
        );
        m
    }

    fn build() -> DashboardRuntime {
        let ff = parse_flow_file("ipl", DASH).unwrap();
        DashboardRuntime::build(
            &ff,
            &endpoints(),
            &TaskRegistry::new(),
            &WidgetRegistry::new(),
        )
        .unwrap()
    }

    #[test]
    fn builds_and_lists_widgets() {
        let dash = build();
        assert_eq!(
            dash.widget_names(),
            vec!["ipl_duration", "relative_teamtweets", "teams"]
        );
    }

    #[test]
    fn slider_default_range_filters_dates() {
        let dash = build();
        // The slider's static bounds [05-02, 05-27] exclude the June row.
        let data = dash.data_of("relative_teamtweets").unwrap();
        assert_eq!(data.num_rows(), 2);
    }

    #[test]
    fn selection_propagates_to_downstream_widget() {
        let dash = build();
        dash.select("teams", "text", vec!["CSK".into()]).unwrap();
        let data = dash.data_of("relative_teamtweets").unwrap();
        assert_eq!(data.num_rows(), 1);
        assert_eq!(data.value(0, "team").unwrap().to_string(), "CSK");

        dash.set_range("ipl_duration", "2013-05-01".into(), "2013-06-30".into())
            .unwrap();
        let data = dash.data_of("relative_teamtweets").unwrap();
        assert_eq!(data.num_rows(), 2, "wider range admits the June row");
    }

    #[test]
    fn renders_by_layout_order() {
        let dash = build();
        let tree = dash.render(10).unwrap();
        assert_eq!(tree.children.len(), 3);
        assert_eq!(tree.children[0].name, "teams");
        assert_eq!(tree.children[1].widget_type, "Slider");
        let printed = tree.to_string();
        assert!(printed.contains("- CSK"));
    }

    #[test]
    fn repeated_renders_hit_cube_cache() {
        let dash = build();
        dash.render(10).unwrap();
        dash.render(10).unwrap();
        let (hits, misses) = dash.cube_stats();
        assert!(
            hits >= misses,
            "second render served from cache: {hits}/{misses}"
        );
    }

    #[test]
    fn missing_endpoint_is_a_clear_error() {
        let ff = parse_flow_file(
            "t",
            "W:\n  w:\n    type: List\n    source: D.ghost\n    text: x\n",
        )
        .unwrap();
        let err = DashboardRuntime::build(
            &ff,
            &BTreeMap::new(),
            &TaskRegistry::new(),
            &WidgetRegistry::new(),
        )
        .unwrap_err();
        assert!(matches!(err, WidgetError::MissingSource { .. }));
    }

    #[test]
    fn unknown_widget_type_rejected() {
        let ff = parse_flow_file("t", "W:\n  w:\n    type: HoloDeck\n").unwrap();
        let err = DashboardRuntime::build(
            &ff,
            &BTreeMap::new(),
            &TaskRegistry::new(),
            &WidgetRegistry::new(),
        )
        .unwrap_err();
        assert!(matches!(err, WidgetError::UnknownType { .. }));
    }

    #[test]
    fn binding_validated_against_post_flow_schema() {
        // The widget binds to a column produced by its interaction chain's
        // groupby output, not the raw endpoint.
        let src = r#"
W:
  cloud:
    type: WordCloud
    source: D.words | T.agg
    text: word
    size: total
T:
  agg:
    type: groupby
    groupby: [word]
    aggregates:
    - operator: sum
      apply_on: count
      out_field: total
"#;
        let ff = parse_flow_file("t", src).unwrap();
        let mut eps = BTreeMap::new();
        eps.insert(
            "words".to_string(),
            Table::from_rows(
                &["word", "count"],
                &[row!["six", 3i64], row!["six", 2i64], row!["four", 1i64]],
            )
            .unwrap(),
        );
        let dash = DashboardRuntime::build(&ff, &eps, &TaskRegistry::new(), &WidgetRegistry::new())
            .unwrap();
        let node = dash.render_widget("cloud", 5).unwrap();
        assert_eq!(node.lines[0], "six (5)");
    }

    #[test]
    fn tab_layout_renders_children() {
        let src = r#"
W:
  inner:
    type: List
    source: D.d
    text: x
  tabs:
    type: TabLayout
    tabs:
    - name: 'A'
      body: W.inner
"#;
        let ff = parse_flow_file("t", src).unwrap();
        let mut eps = BTreeMap::new();
        eps.insert(
            "d".to_string(),
            Table::from_rows(&["x"], &[row!["hello"]]).unwrap(),
        );
        let dash = DashboardRuntime::build(&ff, &eps, &TaskRegistry::new(), &WidgetRegistry::new())
            .unwrap();
        let node = dash.render_widget("tabs", 5).unwrap();
        assert_eq!(node.children.len(), 1);
        assert_eq!(node.children[0].lines[0], "- hello");
    }
}
