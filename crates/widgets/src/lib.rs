//! # shareinsights-widgets
//!
//! The widget layer (§3.5 of the paper): widget types with data/visual
//! attribute bindings, the interactive **data cube** that evaluates widget
//! flows, widget-to-widget interaction, and a deterministic render tree
//! standing in for the browser dashboard.
//!
//! Key ideas reproduced faithfully:
//!
//! * **Widgets are data objects** (§3.5.1): a [`WidgetInstance`] exposes its
//!   current selection through the engine's
//!   [`SelectionProvider`](shareinsights_engine::SelectionProvider), so the
//!   very same `filter_by` task configuration works in batch flows and
//!   interaction flows.
//! * **Interaction is a flow** (figure 14): a widget's `source:` is a task
//!   chain over an endpoint data object, evaluated by the [`cube::DataCube`]
//!   whenever an upstream selection changes — no event handlers, no
//!   imperative glue.
//! * **Custom widgets** (§4.2 Widgets API): the [`registry::WidgetFactory`]
//!   trait admits new widget types that are indistinguishable from
//!   built-ins in the flow file.

pub mod cube;
pub mod dashboard;
pub mod error;
pub mod model;
pub mod registry;
pub mod render;
pub mod style;

pub use cube::DataCube;
pub use dashboard::{DashboardRuntime, WidgetInstance};
pub use error::{Result, WidgetError};
pub use model::{binding_spec, WidgetTypeInfo};
pub use registry::{WidgetFactory, WidgetRegistry};
pub use render::RenderNode;
pub use style::{apply_styles, Stylesheet};
