//! Custom widget registry — §4.2's "Widgets API".
//!
//! "Commercial and open source widgets can easily be made part of the
//! platform by implementing this interface." A [`WidgetFactory`] validates
//! a widget definition against its source schema and renders its data; the
//! Apache dashboard's weight-slider widget (§3.5: "a custom widget —
//! written using the platform extension APIs") is the canonical example,
//! reproduced in the apache_dashboard example binary.

use crate::error::Result;
use crate::render::RenderNode;
use parking_lot::RwLock;
use shareinsights_flowfile::ast::WidgetDef;
use shareinsights_tabular::{Schema, Table};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A pluggable widget implementation.
pub trait WidgetFactory: Send + Sync {
    /// Widget type name as used in `type:`.
    fn type_name(&self) -> &str;

    /// Validate the definition against the source schema (None = unknown).
    fn validate(&self, def: &WidgetDef, schema: Option<&Schema>) -> Result<()>;

    /// Render the widget's current data.
    fn render(&self, def: &WidgetDef, table: &Table) -> RenderNode;

    /// Whether selections are ranges (slider-like) rather than values.
    fn range_selection(&self) -> bool {
        false
    }
}

/// Registry of custom widget factories.
#[derive(Clone, Default)]
pub struct WidgetRegistry {
    factories: Arc<RwLock<BTreeMap<String, Arc<dyn WidgetFactory>>>>,
}

impl WidgetRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a factory.
    pub fn register(&self, factory: Arc<dyn WidgetFactory>) {
        self.factories
            .write()
            .insert(factory.type_name().to_string(), factory);
    }

    /// Look up by type name.
    pub fn get(&self, type_name: &str) -> Option<Arc<dyn WidgetFactory>> {
        self.factories.read().get(type_name).cloned()
    }

    /// Registered type names.
    pub fn type_names(&self) -> Vec<String> {
        self.factories.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::WidgetError;
    use shareinsights_flowfile::parse_flow_file;
    use shareinsights_tabular::row;

    /// The Apache dashboard's custom weight-slider widget, as a test
    /// double: four sliders whose values weight the activity index.
    struct WeightSliders;

    impl WidgetFactory for WeightSliders {
        fn type_name(&self) -> &str {
            "WeightSliders"
        }

        fn validate(&self, def: &WidgetDef, _schema: Option<&Schema>) -> Result<()> {
            if def.params.get("weights").is_none() {
                return Err(WidgetError::Invalid(format!(
                    "widget '{}': WeightSliders needs a 'weights:' list",
                    def.name
                )));
            }
            Ok(())
        }

        fn render(&self, def: &WidgetDef, _table: &Table) -> RenderNode {
            let weights = def
                .params
                .get("weights")
                .map(|v| v.scalar_items().join(", "))
                .unwrap_or_default();
            RenderNode::leaf(
                &def.name,
                "WeightSliders",
                vec![format!("weights: {weights}")],
            )
        }
    }

    #[test]
    fn custom_widget_registers_and_renders() {
        let reg = WidgetRegistry::new();
        assert!(reg.get("WeightSliders").is_none());
        reg.register(Arc::new(WeightSliders));
        assert_eq!(reg.type_names(), vec!["WeightSliders"]);

        let ff = parse_flow_file(
            "t",
            "W:\n  apache_custom_widget:\n    type: WeightSliders\n    weights: [checkins, bugs, contributors, releases]\n",
        )
        .unwrap();
        let def = &ff.widgets[0];
        let factory = reg.get("WeightSliders").unwrap();
        factory.validate(def, None).unwrap();
        let table = Table::from_rows(&["x"], &[row![1i64]]).unwrap();
        let node = factory.render(def, &table);
        assert!(node.lines[0].contains("checkins"));
    }

    #[test]
    fn validation_errors_propagate() {
        let reg = WidgetRegistry::new();
        reg.register(Arc::new(WeightSliders));
        let ff = parse_flow_file("t", "W:\n  w:\n    type: WeightSliders\n").unwrap();
        let err = reg
            .get("WeightSliders")
            .unwrap()
            .validate(&ff.widgets[0], None)
            .unwrap_err();
        assert!(err.to_string().contains("weights"));
    }
}
