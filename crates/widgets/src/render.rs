//! The render tree: a deterministic, inspectable stand-in for the browser
//! dashboard.
//!
//! Each widget renders its current data into a [`RenderNode`]; the layout
//! crate positions nodes on the 12-column grid; the whole tree prints as a
//! plain-text dashboard (what examples and the hackathon judging model
//! consume).

use shareinsights_tabular::{Table, Value};
use std::fmt;

/// One rendered widget (or container) in the dashboard tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderNode {
    /// Widget name.
    pub name: String,
    /// Widget type.
    pub widget_type: String,
    /// Rendered content lines (type-specific textual encoding).
    pub lines: Vec<String>,
    /// Nested nodes (sub-layouts, tabs).
    pub children: Vec<RenderNode>,
}

impl RenderNode {
    /// Leaf node.
    pub fn leaf(name: &str, widget_type: &str, lines: Vec<String>) -> Self {
        RenderNode {
            name: name.to_string(),
            widget_type: widget_type.to_string(),
            lines,
            children: Vec::new(),
        }
    }

    /// Container node.
    pub fn container(name: &str, widget_type: &str, children: Vec<RenderNode>) -> Self {
        RenderNode {
            name: name.to_string(),
            widget_type: widget_type.to_string(),
            lines: Vec::new(),
            children,
        }
    }

    /// Total widget count in this subtree (self included).
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(RenderNode::count).sum::<usize>()
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        writeln!(f, "{pad}[{}] {}", self.widget_type, self.name)?;
        for line in &self.lines {
            writeln!(f, "{pad}  {line}")?;
        }
        for child in &self.children {
            child.fmt_indented(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for RenderNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

fn fmt_num(v: &Value) -> String {
    v.to_string()
}

/// Render a table through a widget type's visual encoding. `bindings`
/// resolves data attributes to columns.
pub fn render_widget(
    name: &str,
    widget_type: &str,
    table: &Table,
    get_binding: &dyn Fn(&str) -> Option<String>,
    max_items: usize,
) -> RenderNode {
    let col_values = |attr: &str| -> Vec<Value> {
        get_binding(attr)
            .and_then(|col| table.column(&col).ok().cloned())
            .map(|c| c.iter().collect())
            .unwrap_or_default()
    };
    let lines = match widget_type {
        "BubbleChart" | "Pie" | "WordCloud" => {
            let text = col_values("text");
            let size = col_values("size");
            let mut pairs: Vec<(String, Value)> = text
                .iter()
                .zip(size.iter())
                .map(|(t, s)| (t.to_string(), s.clone()))
                .collect();
            pairs.sort_by(|a, b| b.1.cmp(&a.1));
            pairs
                .iter()
                .take(max_items)
                .map(|(t, s)| format!("{t} ({})", fmt_num(s)))
                .collect()
        }
        "List" => col_values("text")
            .iter()
            .take(max_items)
            .map(|v| format!("- {v}"))
            .collect(),
        "Streamgraph" | "Line" | "Bar" => {
            let x = col_values("x");
            let y = col_values("y");
            let serie = col_values("serie");
            (0..x.len().min(max_items))
                .map(|i| {
                    let s = serie.get(i).map(|v| format!("{v}: ")).unwrap_or_default();
                    format!(
                        "{}{} -> {}",
                        s,
                        x[i],
                        y.get(i).map(fmt_num).unwrap_or_default()
                    )
                })
                .collect()
        }
        "MapMarker" => {
            let lat = col_values("latlong_value");
            let size = col_values("markersize");
            (0..lat.len().min(max_items))
                .map(|i| {
                    format!(
                        "marker @{} size {}",
                        lat[i],
                        size.get(i).map(fmt_num).unwrap_or_default()
                    )
                })
                .collect()
        }
        "Slider" => {
            let vals: Vec<String> = (0..table.num_rows().min(2))
                .map(|i| {
                    table
                        .row(i)
                        .0
                        .first()
                        .map(|v| v.to_string())
                        .unwrap_or_default()
                })
                .collect();
            vec![format!("slider [{}]", vals.join(" .. "))]
        }
        "DataGrid" => table
            .pretty(max_items)
            .lines()
            .map(str::to_string)
            .collect(),
        "HTML" => {
            // Show the first row's cells as labelled fields.
            if table.num_rows() == 0 {
                vec!["<empty>".to_string()]
            } else {
                table
                    .schema()
                    .names()
                    .iter()
                    .take(max_items)
                    .map(|c| format!("{c}: {}", table.value(0, c).unwrap_or(Value::Null)))
                    .collect()
            }
        }
        _ => vec![format!("{} rows", table.num_rows())],
    };
    RenderNode::leaf(name, widget_type, lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;

    fn table() -> Table {
        Table::from_rows(
            &["player", "count"],
            &[
                row!["dhoni", 50i64],
                row!["kohli", 70i64],
                row!["rohit", 30i64],
            ],
        )
        .unwrap()
    }

    fn binder(attr: &str) -> Option<String> {
        match attr {
            "text" => Some("player".into()),
            "size" => Some("count".into()),
            _ => None,
        }
    }

    #[test]
    fn word_cloud_sorts_by_size() {
        let node = render_widget("cloud", "WordCloud", &table(), &binder, 10);
        assert_eq!(node.lines, vec!["kohli (70)", "dhoni (50)", "rohit (30)"]);
    }

    #[test]
    fn max_items_truncates() {
        let node = render_widget("cloud", "WordCloud", &table(), &binder, 1);
        assert_eq!(node.lines.len(), 1);
    }

    #[test]
    fn list_and_grid() {
        let node = render_widget("l", "List", &table(), &binder, 10);
        assert_eq!(node.lines[0], "- dhoni");
        let node = render_widget("g", "DataGrid", &table(), &binder, 10);
        assert!(node.lines.iter().any(|l| l.contains("player")));
    }

    #[test]
    fn slider_renders_bounds() {
        let t = Table::from_rows(&["value"], &[row!["2013-05-02"], row!["2013-05-27"]]).unwrap();
        let node = render_widget("s", "Slider", &t, &|_| None, 10);
        assert_eq!(node.lines, vec!["slider [2013-05-02 .. 2013-05-27]"]);
    }

    #[test]
    fn tree_display_and_count() {
        let tree = RenderNode::container(
            "root",
            "Layout",
            vec![
                RenderNode::leaf("a", "List", vec!["- x".into()]),
                RenderNode::container(
                    "tabs",
                    "TabLayout",
                    vec![RenderNode::leaf("b", "WordCloud", vec![])],
                ),
            ],
        );
        assert_eq!(tree.count(), 4);
        let s = tree.to_string();
        assert!(s.contains("[Layout] root"));
        assert!(s.contains("  [List] a"));
        assert!(s.contains("- x"));
    }

    #[test]
    fn unknown_type_renders_row_count() {
        let node = render_widget("x", "Mystery", &table(), &binder, 10);
        assert_eq!(node.lines, vec!["3 rows"]);
    }
}
