//! The interactive data cube.
//!
//! §4.1: the widget sections compile to "a data cube (in JavaScript) for
//! ad-hoc widget interaction (group, filter etc)". This is that component:
//! it holds an endpoint table in memory and evaluates interaction-flow task
//! chains against the *current selection state*, caching results per
//! selection fingerprint so repeated interactions are O(lookup).
//!
//! Two layers make cold interactions cheap and hot ones free:
//!
//! - The endpoint snapshot is wrapped in an [`IndexedTable`], so the first
//!   task of a chain (the common `filter_by`/`groupby`/`sort` shapes) runs
//!   against lazily built per-column indexes instead of a scan whenever
//!   the index covers it, falling back to the scan kernels otherwise.
//! - Results are cached per selection fingerprint in a *bounded* LRU map
//!   guarded by a single mutex (one lock acquisition per eval), so a long
//!   interactive session cannot grow the cache without limit.

use crate::error::{Result, WidgetError};
use parking_lot::Mutex;
use shareinsights_engine::selection::SelectionProvider;
use shareinsights_engine::task::{NamedTask, TaskKind, TaskRuntime};
use shareinsights_tabular::{IndexedTable, Table};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Default bound on cached results per cube.
pub const DEFAULT_CUBE_CACHE_ENTRIES: usize = 256;

struct CachedResult {
    table: Arc<Table>,
    lru_seq: u64,
}

/// Everything the cube mutates per eval, under one lock: the result map,
/// its recency order, and the hit/miss/eviction counters.
#[derive(Default)]
struct CubeCache {
    entries: HashMap<u64, CachedResult>,
    /// lru_seq -> fingerprint, oldest first (sequences are unique).
    order: BTreeMap<u64, u64>,
    next_seq: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A cube over one endpoint data object, with a task chain per widget.
pub struct DataCube {
    indexed: IndexedTable,
    cache: Mutex<CubeCache>,
    max_entries: usize,
}

impl DataCube {
    /// Build over an endpoint snapshot with the default cache bound.
    pub fn new(base: Table) -> Self {
        DataCube::with_capacity(base, DEFAULT_CUBE_CACHE_ENTRIES)
    }

    /// Build with an explicit bound on cached results (at least one).
    pub fn with_capacity(base: Table, max_entries: usize) -> Self {
        DataCube {
            indexed: IndexedTable::new(base),
            cache: Mutex::new(CubeCache::default()),
            max_entries: max_entries.max(1),
        }
    }

    /// The underlying endpoint table.
    pub fn base(&self) -> &Table {
        self.indexed.table()
    }

    /// `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.lock();
        (c.hits, c.misses)
    }

    /// Entries dropped to stay within the cache bound.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.lock().evictions
    }

    /// `(index builds, total build time in µs)` for the wrapped snapshot.
    pub fn index_build_stats(&self) -> (u64, u64) {
        self.indexed.build_stats()
    }

    /// The widget/column pairs a task chain depends on — the selection
    /// *fingerprint domain*. Only these affect the result, so the cache key
    /// hashes only their current values.
    pub fn dependencies(tasks: &[NamedTask]) -> BTreeSet<(String, String)> {
        let mut deps = BTreeSet::new();
        for t in tasks {
            collect_deps(&t.kind, &mut deps);
        }
        deps
    }

    /// Evaluate a task chain under the given selections.
    pub fn eval(
        &self,
        widget: &str,
        tasks: &[NamedTask],
        selections: &dyn SelectionProvider,
    ) -> Result<Arc<Table>> {
        let key = fingerprint(widget, tasks, selections);
        {
            let mut c = self.cache.lock();
            let hit = c
                .entries
                .get(&key)
                .map(|e| (Arc::clone(&e.table), e.lru_seq));
            if let Some((table, old_seq)) = hit {
                let seq = c.next_seq;
                c.next_seq += 1;
                c.order.remove(&old_seq);
                c.order.insert(seq, key);
                c.entries.get_mut(&key).expect("present").lru_seq = seq;
                c.hits += 1;
                return Ok(table);
            }
            c.misses += 1;
        }

        // Evaluate outside the lock; the first task runs against the
        // indexed snapshot when covered, the scan kernels otherwise.
        let lookup = |_: &str| None;
        let rt = TaskRuntime {
            selections: Some(selections),
            lookup_table: &lookup,
        };
        let mut current: Option<Table> = None;
        for (i, t) in tasks.iter().enumerate() {
            let fast = if i == 0 {
                t.kind.execute_indexed(&self.indexed, &rt)
            } else {
                None
            };
            let next = match fast {
                Some(table) => table,
                None => {
                    let input = match &current {
                        Some(c) => c,
                        None => self.indexed.table(),
                    };
                    t.kind
                        .execute(&t.name, std::slice::from_ref(input), &rt)
                        .map_err(|e| WidgetError::Flow {
                            widget: widget.to_string(),
                            message: e.to_string(),
                        })?
                }
            };
            current = Some(next);
        }
        let arc = Arc::new(current.unwrap_or_else(|| self.indexed.table().clone()));

        let mut c = self.cache.lock();
        let seq = c.next_seq;
        c.next_seq += 1;
        if let Some(old) = c.entries.insert(
            key,
            CachedResult {
                table: Arc::clone(&arc),
                lru_seq: seq,
            },
        ) {
            c.order.remove(&old.lru_seq);
        }
        c.order.insert(seq, key);
        while c.entries.len() > self.max_entries {
            let Some((&oldest, _)) = c.order.iter().next() else {
                break;
            };
            let victim = c.order.remove(&oldest).expect("present");
            c.entries.remove(&victim);
            c.evictions += 1;
        }
        Ok(arc)
    }

    /// Drop all cached results (called when the endpoint data itself is
    /// refreshed by a batch run). Counters are kept.
    pub fn invalidate(&self) {
        let mut c = self.cache.lock();
        c.entries.clear();
        c.order.clear();
    }
}

fn collect_deps(kind: &TaskKind, deps: &mut BTreeSet<(String, String)>) {
    match kind {
        TaskKind::FilterBySource {
            source: shareinsights_engine::task::FilterSource::Widget(w),
            source_columns,
            columns,
            ..
        } => {
            for (i, _) in columns.iter().enumerate() {
                let col = source_columns
                    .get(i)
                    .or_else(|| source_columns.first())
                    .cloned()
                    .unwrap_or_else(|| "value".to_string());
                deps.insert((w.clone(), col));
            }
        }
        TaskKind::Parallel(subs) => {
            for s in subs {
                collect_deps(&s.kind, deps);
            }
        }
        _ => {}
    }
}

fn fingerprint(widget: &str, tasks: &[NamedTask], selections: &dyn SelectionProvider) -> u64 {
    let mut h = DefaultHasher::new();
    widget.hash(&mut h);
    for t in tasks {
        t.name.hash(&mut h);
    }
    for (w, c) in DataCube::dependencies(tasks) {
        w.hash(&mut h);
        c.hash(&mut h);
        match selections.selection(&w, &c) {
            Some(shareinsights_engine::Selection::Values(vals)) => {
                1u8.hash(&mut h);
                for v in vals {
                    v.hash(&mut h);
                }
            }
            Some(shareinsights_engine::Selection::Range(lo, hi)) => {
                2u8.hash(&mut h);
                lo.hash(&mut h);
                hi.hash(&mut h);
            }
            None => 0u8.hash(&mut h),
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_engine::selection::{Selection, StaticSelections};
    use shareinsights_engine::task::FilterSource;
    use shareinsights_tabular::agg::AggKind;
    use shareinsights_tabular::ops::{AggregateSpec, GroupBy};
    use shareinsights_tabular::row;

    fn team_tweets() -> Table {
        Table::from_rows(
            &["date", "team", "noOfTweets"],
            &[
                row!["2013-05-02", "CSK", 100i64],
                row!["2013-05-02", "MI", 80i64],
                row!["2013-05-03", "CSK", 60i64],
                row!["2013-05-10", "RCB", 40i64],
            ],
        )
        .unwrap()
    }

    fn filter_by_team() -> NamedTask {
        NamedTask {
            name: "filter_by_team".into(),
            kind: TaskKind::FilterBySource {
                columns: vec!["team".into()],
                source: FilterSource::Widget("teams".into()),
                source_columns: vec!["text".into()],
            },
        }
    }

    fn aggregate_by_team() -> NamedTask {
        NamedTask {
            name: "aggregate_by_team".into(),
            kind: TaskKind::GroupBy {
                builtin: GroupBy::with_aggregates(
                    &["team"],
                    vec![AggregateSpec::new(AggKind::Sum, "noOfTweets", "noOfTweets")],
                ),
                custom: vec![],
            },
        }
    }

    #[test]
    fn evaluates_interaction_flow() {
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![filter_by_team(), aggregate_by_team()];

        // No selection: all teams aggregated.
        let out = cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(out.num_rows(), 3);

        // Select CSK: one row, 160 tweets.
        sel.set("teams", "text", Selection::Values(vec!["CSK".into()]));
        let out = cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "noOfTweets").unwrap().as_int(), Some(160));
        // The filter ran through the dictionary index on `team`.
        assert!(cube.index_build_stats().0 >= 1);
    }

    #[test]
    fn cache_hits_on_repeat_and_distinguishes_selections() {
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![filter_by_team(), aggregate_by_team()];

        cube.eval("w", &tasks, &sel).unwrap();
        cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(cube.cache_stats(), (1, 1), "second call hits");

        sel.set("teams", "text", Selection::Values(vec!["MI".into()]));
        let out = cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(out.value(0, "team").unwrap().to_string(), "MI");
        assert_eq!(cube.cache_stats(), (1, 2), "new selection misses");
    }

    #[test]
    fn unrelated_selection_changes_still_hit() {
        // Changing a widget the chain doesn't depend on must not bust the
        // cache — the fingerprint only covers dependencies.
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![filter_by_team()];
        cube.eval("w", &tasks, &sel).unwrap();
        sel.set("other_widget", "text", Selection::Values(vec!["x".into()]));
        cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(cube.cache_stats(), (1, 1));
    }

    #[test]
    fn dependencies_extracted() {
        let deps = DataCube::dependencies(&[filter_by_team(), aggregate_by_team()]);
        assert_eq!(deps.len(), 1);
        assert!(deps.contains(&("teams".to_string(), "text".to_string())));
    }

    #[test]
    fn invalidate_clears_cache() {
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![aggregate_by_team()];
        cube.eval("w", &tasks, &sel).unwrap();
        cube.invalidate();
        cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(cube.cache_stats(), (0, 2));
    }

    #[test]
    fn cache_is_bounded_with_lru_eviction() {
        let cube = DataCube::with_capacity(team_tweets(), 2);
        let sel = StaticSelections::new();
        let tasks = vec![filter_by_team()];
        for team in ["CSK", "MI", "RCB"] {
            sel.set("teams", "text", Selection::Values(vec![team.into()]));
            cube.eval("w", &tasks, &sel).unwrap();
        }
        assert_eq!(cube.cache_evictions(), 1, "third distinct result evicts");
        // The oldest fingerprint (CSK) was evicted; re-evaluating it misses.
        sel.set("teams", "text", Selection::Values(vec!["CSK".into()]));
        cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(cube.cache_stats(), (0, 4));
        // The most recent (RCB) is still cached.
        sel.set("teams", "text", Selection::Values(vec!["RCB".into()]));
        cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(cube.cache_stats(), (1, 4));
    }

    #[test]
    fn indexed_and_scan_chains_agree() {
        // The same chain evaluated through the cube (indexed first task)
        // and via the raw scan kernels must be identical.
        let base = team_tweets();
        let cube = DataCube::new(base.clone());
        let sel = StaticSelections::new();
        sel.set(
            "teams",
            "text",
            Selection::Values(vec!["CSK".into(), "RCB".into()]),
        );
        let tasks = vec![filter_by_team(), aggregate_by_team()];
        let via_cube = cube.eval("w", &tasks, &sel).unwrap();
        let rt = TaskRuntime {
            selections: Some(&sel),
            lookup_table: &|_| None,
        };
        let mut scan = base;
        for t in &tasks {
            scan = t
                .kind
                .execute(&t.name, std::slice::from_ref(&scan), &rt)
                .unwrap();
        }
        assert_eq!(*via_cube, scan);
    }

    #[test]
    fn range_selection_on_dates() {
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![NamedTask {
            name: "filter_by_date".into(),
            kind: TaskKind::FilterBySource {
                columns: vec!["date".into()],
                source: FilterSource::Widget("ipl_duration".into()),
                source_columns: vec!["date".into()],
            },
        }];
        sel.set(
            "ipl_duration",
            "date",
            Selection::Range("2013-05-02".into(), "2013-05-03".into()),
        );
        let out = cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(out.num_rows(), 3);
    }
}
