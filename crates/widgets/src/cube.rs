//! The interactive data cube.
//!
//! §4.1: the widget sections compile to "a data cube (in JavaScript) for
//! ad-hoc widget interaction (group, filter etc)". This is that component:
//! it holds an endpoint table in memory and evaluates interaction-flow task
//! chains against the *current selection state*, caching results per
//! selection fingerprint so repeated interactions are O(lookup).

use crate::error::{Result, WidgetError};
use parking_lot::Mutex;
use shareinsights_engine::selection::SelectionProvider;
use shareinsights_engine::task::{NamedTask, TaskKind, TaskRuntime};
use shareinsights_tabular::Table;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A cube over one endpoint data object, with a task chain per widget.
pub struct DataCube {
    base: Table,
    cache: Mutex<HashMap<u64, Arc<Table>>>,
    /// Cache hit/miss counters (observability for PERF-CUBE).
    hits: Mutex<(u64, u64)>,
}

impl DataCube {
    /// Build over an endpoint snapshot.
    pub fn new(base: Table) -> Self {
        DataCube {
            base,
            cache: Mutex::new(HashMap::new()),
            hits: Mutex::new((0, 0)),
        }
    }

    /// The underlying endpoint table.
    pub fn base(&self) -> &Table {
        &self.base
    }

    /// `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        *self.hits.lock()
    }

    /// The widget/column pairs a task chain depends on — the selection
    /// *fingerprint domain*. Only these affect the result, so the cache key
    /// hashes only their current values.
    pub fn dependencies(tasks: &[NamedTask]) -> BTreeSet<(String, String)> {
        let mut deps = BTreeSet::new();
        for t in tasks {
            collect_deps(&t.kind, &mut deps);
        }
        deps
    }

    /// Evaluate a task chain under the given selections.
    pub fn eval(
        &self,
        widget: &str,
        tasks: &[NamedTask],
        selections: &dyn SelectionProvider,
    ) -> Result<Arc<Table>> {
        let key = fingerprint(widget, tasks, selections);
        if let Some(hit) = self.cache.lock().get(&key).cloned() {
            self.hits.lock().0 += 1;
            return Ok(hit);
        }
        self.hits.lock().1 += 1;
        let lookup = |_: &str| None;
        let rt = TaskRuntime {
            selections: Some(selections),
            lookup_table: &lookup,
        };
        let mut current = self.base.clone();
        for t in tasks {
            current = t
                .kind
                .execute(&t.name, std::slice::from_ref(&current), &rt)
                .map_err(|e| WidgetError::Flow {
                    widget: widget.to_string(),
                    message: e.to_string(),
                })?;
        }
        let arc = Arc::new(current);
        self.cache.lock().insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Drop all cached results (called when the endpoint data itself is
    /// refreshed by a batch run).
    pub fn invalidate(&self) {
        self.cache.lock().clear();
    }
}

fn collect_deps(kind: &TaskKind, deps: &mut BTreeSet<(String, String)>) {
    match kind {
        TaskKind::FilterBySource {
            source: shareinsights_engine::task::FilterSource::Widget(w),
            source_columns,
            columns,
            ..
        } => {
            for (i, _) in columns.iter().enumerate() {
                let col = source_columns
                    .get(i)
                    .or_else(|| source_columns.first())
                    .cloned()
                    .unwrap_or_else(|| "value".to_string());
                deps.insert((w.clone(), col));
            }
        }
        TaskKind::Parallel(subs) => {
            for s in subs {
                collect_deps(&s.kind, deps);
            }
        }
        _ => {}
    }
}

fn fingerprint(widget: &str, tasks: &[NamedTask], selections: &dyn SelectionProvider) -> u64 {
    let mut h = DefaultHasher::new();
    widget.hash(&mut h);
    for t in tasks {
        t.name.hash(&mut h);
    }
    for (w, c) in DataCube::dependencies(tasks) {
        w.hash(&mut h);
        c.hash(&mut h);
        match selections.selection(&w, &c) {
            Some(shareinsights_engine::Selection::Values(vals)) => {
                1u8.hash(&mut h);
                for v in vals {
                    v.hash(&mut h);
                }
            }
            Some(shareinsights_engine::Selection::Range(lo, hi)) => {
                2u8.hash(&mut h);
                lo.hash(&mut h);
                hi.hash(&mut h);
            }
            None => 0u8.hash(&mut h),
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_engine::selection::{Selection, StaticSelections};
    use shareinsights_engine::task::FilterSource;
    use shareinsights_tabular::agg::AggKind;
    use shareinsights_tabular::ops::{AggregateSpec, GroupBy};
    use shareinsights_tabular::row;

    fn team_tweets() -> Table {
        Table::from_rows(
            &["date", "team", "noOfTweets"],
            &[
                row!["2013-05-02", "CSK", 100i64],
                row!["2013-05-02", "MI", 80i64],
                row!["2013-05-03", "CSK", 60i64],
                row!["2013-05-10", "RCB", 40i64],
            ],
        )
        .unwrap()
    }

    fn filter_by_team() -> NamedTask {
        NamedTask {
            name: "filter_by_team".into(),
            kind: TaskKind::FilterBySource {
                columns: vec!["team".into()],
                source: FilterSource::Widget("teams".into()),
                source_columns: vec!["text".into()],
            },
        }
    }

    fn aggregate_by_team() -> NamedTask {
        NamedTask {
            name: "aggregate_by_team".into(),
            kind: TaskKind::GroupBy {
                builtin: GroupBy::with_aggregates(
                    &["team"],
                    vec![AggregateSpec::new(AggKind::Sum, "noOfTweets", "noOfTweets")],
                ),
                custom: vec![],
            },
        }
    }

    #[test]
    fn evaluates_interaction_flow() {
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![filter_by_team(), aggregate_by_team()];

        // No selection: all teams aggregated.
        let out = cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(out.num_rows(), 3);

        // Select CSK: one row, 160 tweets.
        sel.set("teams", "text", Selection::Values(vec!["CSK".into()]));
        let out = cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "noOfTweets").unwrap().as_int(), Some(160));
    }

    #[test]
    fn cache_hits_on_repeat_and_distinguishes_selections() {
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![filter_by_team(), aggregate_by_team()];

        cube.eval("w", &tasks, &sel).unwrap();
        cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(cube.cache_stats(), (1, 1), "second call hits");

        sel.set("teams", "text", Selection::Values(vec!["MI".into()]));
        let out = cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(out.value(0, "team").unwrap().to_string(), "MI");
        assert_eq!(cube.cache_stats(), (1, 2), "new selection misses");
    }

    #[test]
    fn unrelated_selection_changes_still_hit() {
        // Changing a widget the chain doesn't depend on must not bust the
        // cache — the fingerprint only covers dependencies.
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![filter_by_team()];
        cube.eval("w", &tasks, &sel).unwrap();
        sel.set("other_widget", "text", Selection::Values(vec!["x".into()]));
        cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(cube.cache_stats(), (1, 1));
    }

    #[test]
    fn dependencies_extracted() {
        let deps = DataCube::dependencies(&[filter_by_team(), aggregate_by_team()]);
        assert_eq!(deps.len(), 1);
        assert!(deps.contains(&("teams".to_string(), "text".to_string())));
    }

    #[test]
    fn invalidate_clears_cache() {
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![aggregate_by_team()];
        cube.eval("w", &tasks, &sel).unwrap();
        cube.invalidate();
        cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(cube.cache_stats(), (0, 2));
    }

    #[test]
    fn range_selection_on_dates() {
        let cube = DataCube::new(team_tweets());
        let sel = StaticSelections::new();
        let tasks = vec![NamedTask {
            name: "filter_by_date".into(),
            kind: TaskKind::FilterBySource {
                columns: vec!["date".into()],
                source: FilterSource::Widget("ipl_duration".into()),
                source_columns: vec!["date".into()],
            },
        }];
        sel.set(
            "ipl_duration",
            "date",
            Selection::Range("2013-05-02".into(), "2013-05-03".into()),
        );
        let out = cube.eval("w", &tasks, &sel).unwrap();
        assert_eq!(out.num_rows(), 3);
    }
}
