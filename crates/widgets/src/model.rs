//! Built-in widget types and their data-attribute binding specs.
//!
//! "Every widget has a set of attributes which associate (or bind) with
//! data source columns. These attributes are called data attributes or
//! widget columns. The remaining attributes of a widget are visual
//! attributes" (§3.5). The binding spec per type is what lets the platform
//! validate a widget against its (endpoint) source schema at compile time.

use crate::error::{Result, WidgetError};
use shareinsights_flowfile::ast::WidgetDef;
use shareinsights_flowfile::config::ConfigValue;
use shareinsights_tabular::Schema;

/// Binding requirements of a widget type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidgetTypeInfo {
    /// Canonical type name as written in flow files.
    pub name: &'static str,
    /// Data attributes that must be present and bind to source columns.
    pub required: &'static [&'static str],
    /// Data attributes that may be present; when present they must bind.
    pub optional: &'static [&'static str],
    /// Whether the widget needs a data source at all.
    pub needs_source: bool,
    /// Whether selections on this widget are ranges (sliders) rather than
    /// discrete values.
    pub range_selection: bool,
}

/// Binding specs for every built-in widget type; `None` for unknown types
/// (the registry may still know them).
pub fn binding_spec(widget_type: &str) -> Option<&'static WidgetTypeInfo> {
    const SPECS: &[WidgetTypeInfo] = &[
        WidgetTypeInfo {
            name: "BubbleChart",
            required: &["text", "size"],
            optional: &["legend_text", "color"],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "Streamgraph",
            required: &["x", "y", "serie"],
            optional: &["color"],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "WordCloud",
            required: &["text", "size"],
            optional: &[],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "MapMarker",
            required: &[],
            optional: &[],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "Slider",
            required: &[],
            optional: &[],
            needs_source: true,
            range_selection: true,
        },
        WidgetTypeInfo {
            name: "List",
            required: &["text"],
            optional: &[],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "Pie",
            required: &["text", "size"],
            optional: &["color"],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "Line",
            required: &["x", "y"],
            optional: &["serie", "color"],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "Bar",
            required: &["x", "y"],
            optional: &["serie", "color"],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "DataGrid",
            required: &[],
            optional: &[],
            needs_source: true,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "HTML",
            required: &[],
            optional: &[],
            needs_source: false,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "Layout",
            required: &[],
            optional: &[],
            needs_source: false,
            range_selection: false,
        },
        WidgetTypeInfo {
            name: "TabLayout",
            required: &[],
            optional: &[],
            needs_source: false,
            range_selection: false,
        },
    ];
    SPECS.iter().find(|s| s.name == widget_type)
}

/// The data-attribute bindings a widget declares: `(attribute, column)`.
pub fn bindings_of(def: &WidgetDef) -> Vec<(String, String)> {
    let Some(info) = binding_spec(&def.widget_type) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for attr in info.required.iter().chain(info.optional.iter()) {
        if let Some(col) = def.params.get_scalar(attr) {
            out.push((attr.to_string(), col.to_string()));
        }
    }
    // MapMarker bindings are nested in the markers list.
    if def.widget_type == "MapMarker" {
        if let Some(ConfigValue::List(markers)) = def.params.get("markers") {
            for marker in markers {
                if let Some(m) = marker.as_map() {
                    for (_, v, _) in m.entries() {
                        if let Some(inner) = v.as_map() {
                            for attr in ["latlong_value", "markersize", "fill_color"] {
                                if let Some(col) = inner.get_scalar(attr) {
                                    out.push((attr.to_string(), col.to_string()));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Validate a widget's data attributes against the schema its source
/// produces. `schema == None` (unknown source shape) skips column checks
/// but still enforces required attributes.
pub fn validate_bindings(def: &WidgetDef, schema: Option<&Schema>) -> Result<()> {
    let Some(info) = binding_spec(&def.widget_type) else {
        return Ok(()); // custom types validate via their factory
    };
    for attr in info.required {
        if def.params.get_scalar(attr).is_none() {
            return Err(WidgetError::MissingBinding {
                widget: def.name.clone(),
                attribute: attr,
            });
        }
    }
    if let Some(schema) = schema {
        for (attr, col) in bindings_of(def) {
            if !schema.contains(&col) {
                return Err(WidgetError::BadBinding {
                    widget: def.name.clone(),
                    attribute: attr,
                    column: col,
                    available: schema.names().iter().map(|s| s.to_string()).collect(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_flowfile::parse_flow_file;
    use shareinsights_tabular::DataType;

    fn widget(src: &str) -> WidgetDef {
        let ff = parse_flow_file("t", src).unwrap();
        ff.widgets[0].clone()
    }

    #[test]
    fn bubble_chart_spec_matches_figure12() {
        let info = binding_spec("BubbleChart").unwrap();
        assert!(info.required.contains(&"text") && info.required.contains(&"size"));
        assert!(info.optional.contains(&"legend_text"));
        assert!(!info.range_selection);
        assert!(binding_spec("Slider").unwrap().range_selection);
        assert!(binding_spec("HoloDeck").is_none());
    }

    #[test]
    fn validates_figure12_bindings() {
        let def = widget(
            "W:\n  bubble:\n    type: BubbleChart\n    source: D.project_data\n    text: project\n    size: total_wt\n    legend_text: technology\n",
        );
        let schema = Schema::of(&[
            ("project", DataType::Utf8),
            ("total_wt", DataType::Float64),
            ("technology", DataType::Utf8),
        ]);
        validate_bindings(&def, Some(&schema)).unwrap();
        assert_eq!(bindings_of(&def).len(), 3);

        let narrow = Schema::of(&[("project", DataType::Utf8)]);
        let err = validate_bindings(&def, Some(&narrow)).unwrap_err();
        assert!(matches!(err, WidgetError::BadBinding { .. }));
    }

    #[test]
    fn missing_required_attribute_rejected() {
        let def = widget("W:\n  cloud:\n    type: WordCloud\n    source: D.x\n    text: player\n");
        let err = validate_bindings(&def, None).unwrap_err();
        assert!(matches!(
            err,
            WidgetError::MissingBinding {
                attribute: "size",
                ..
            }
        ));
    }

    #[test]
    fn map_marker_nested_bindings() {
        let src = "W:\n  map:\n    type: MapMarker\n    source: D.trt\n    country: IND\n    markers:\n    - marker1:\n        type: circle_marker\n        latlong_value: point_one\n        markersize: noOfTweets\n        fill_color: color\n";
        let def = widget(src);
        let b = bindings_of(&def);
        assert_eq!(b.len(), 3);
        let schema = Schema::of(&[
            ("point_one", DataType::Utf8),
            ("noOfTweets", DataType::Int64),
            ("color", DataType::Utf8),
        ]);
        validate_bindings(&def, Some(&schema)).unwrap();
    }

    #[test]
    fn unknown_types_pass_through_to_registry() {
        let def = widget("W:\n  x:\n    type: CustomThing\n    source: D.a\n");
        validate_bindings(&def, None).unwrap();
    }
}
