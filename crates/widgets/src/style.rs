//! Stylesheet support — §4.2's "Styling" extension point:
//! "The dashboard look and feel can be changed or enhanced using Cascading
//! Style Sheets (CSS). Stylesheet authors can use widget names specified in
//! the flow file as style targets in the CSS file."
//!
//! This implements the subset that makes that sentence true for the render
//! tree: a CSS parser for `selector { property: value; }` rules where a
//! selector is a widget name (`#name`), a widget type (`.BubbleChart`), or
//! `*`; [`Stylesheet::resolve`] computes the effective properties for a
//! widget with last-write-wins within equal specificity and
//! name > type > universal between them.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StyleRule {
    /// The selector, already classified.
    pub selector: Selector,
    /// Declarations in order.
    pub declarations: Vec<(String, String)>,
}

/// Selector kinds, in increasing specificity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selector {
    /// `*` — every widget.
    Universal,
    /// `.TypeName` — every widget of a type.
    Type(String),
    /// `#widget_name` or bare `widget_name` — one widget.
    Name(String),
}

impl Selector {
    fn specificity(&self) -> u8 {
        match self {
            Selector::Universal => 0,
            Selector::Type(_) => 1,
            Selector::Name(_) => 2,
        }
    }

    fn matches(&self, widget_name: &str, widget_type: &str) -> bool {
        match self {
            Selector::Universal => true,
            Selector::Type(t) => t == widget_type,
            Selector::Name(n) => n == widget_name,
        }
    }
}

/// Stylesheet parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StyleError {
    /// 1-based line.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for StyleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stylesheet error (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for StyleError {}

/// A parsed stylesheet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stylesheet {
    rules: Vec<StyleRule>,
}

impl Stylesheet {
    /// Parse CSS text (comments `/* */`, multiple selectors per rule
    /// separated by commas).
    pub fn parse(css: &str) -> Result<Stylesheet, StyleError> {
        // Strip comments, tracking lines.
        let mut clean = String::with_capacity(css.len());
        let mut rest = css;
        while let Some(start) = rest.find("/*") {
            clean.push_str(&rest[..start]);
            match rest[start..].find("*/") {
                Some(end) => {
                    // Preserve newlines inside the comment for line numbers.
                    clean.extend(rest[start..start + end].chars().filter(|c| *c == '\n'));
                    rest = &rest[start + end + 2..];
                }
                None => {
                    return Err(StyleError {
                        line: css[..start].lines().count().max(1),
                        message: "unterminated comment".into(),
                    })
                }
            }
        }
        clean.push_str(rest);

        let mut rules = Vec::new();
        let mut pos = 0usize;
        let line_of = |offset: usize| clean[..offset].matches('\n').count() + 1;
        while pos < clean.len() {
            // Selector up to '{'.
            let Some(open_rel) = clean[pos..].find('{') else {
                if clean[pos..].trim().is_empty() {
                    break;
                }
                return Err(StyleError {
                    line: line_of(pos),
                    message: "expected '{' after selector".into(),
                });
            };
            let selector_text = clean[pos..pos + open_rel].trim().to_string();
            let body_start = pos + open_rel + 1;
            let Some(close_rel) = clean[body_start..].find('}') else {
                return Err(StyleError {
                    line: line_of(pos),
                    message: "unterminated rule (missing '}')".into(),
                });
            };
            let body = &clean[body_start..body_start + close_rel];
            if selector_text.is_empty() {
                // Report at the '{' — leading blank lines shouldn't shift
                // the diagnostic.
                return Err(StyleError {
                    line: line_of(pos + open_rel),
                    message: "empty selector".into(),
                });
            }

            let mut declarations = Vec::new();
            for decl in body.split(';') {
                let decl = decl.trim();
                if decl.is_empty() {
                    continue;
                }
                let Some((prop, value)) = decl.split_once(':') else {
                    return Err(StyleError {
                        line: line_of(body_start),
                        message: format!("declaration '{decl}' needs 'property: value'"),
                    });
                };
                declarations.push((prop.trim().to_string(), value.trim().to_string()));
            }

            for sel in selector_text.split(',') {
                let sel = sel.trim();
                let selector = if sel == "*" {
                    Selector::Universal
                } else if let Some(t) = sel.strip_prefix('.') {
                    Selector::Type(t.to_string())
                } else if let Some(n) = sel.strip_prefix('#') {
                    Selector::Name(n.to_string())
                } else {
                    // Bare identifiers target widget names, per the paper's
                    // "widget names … as style targets".
                    Selector::Name(sel.to_string())
                };
                rules.push(StyleRule {
                    selector,
                    declarations: declarations.clone(),
                });
            }
            pos = body_start + close_rel + 1;
        }
        Ok(Stylesheet { rules })
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Effective properties for a widget: universal < type < name; within a
    /// tier, later rules win.
    pub fn resolve(&self, widget_name: &str, widget_type: &str) -> BTreeMap<String, String> {
        let mut out: BTreeMap<String, (u8, String)> = BTreeMap::new();
        for rule in &self.rules {
            if !rule.selector.matches(widget_name, widget_type) {
                continue;
            }
            let spec = rule.selector.specificity();
            for (prop, value) in &rule.declarations {
                match out.get(prop) {
                    Some((existing_spec, _)) if *existing_spec > spec => {}
                    _ => {
                        out.insert(prop.clone(), (spec, value.clone()));
                    }
                }
            }
        }
        out.into_iter().map(|(k, (_, v))| (k, v)).collect()
    }
}

/// Annotate a render tree with resolved styles: each node whose widget has
/// any matching declarations gains a `style: prop=value; …` line.
pub fn apply_styles(node: &mut crate::render::RenderNode, sheet: &Stylesheet) {
    let styles = sheet.resolve(&node.name, &node.widget_type);
    if !styles.is_empty() {
        let line = styles
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("; ");
        node.lines.insert(0, format!("style: {line}"));
    }
    for child in &mut node.children {
        apply_styles(child, sheet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::RenderNode;

    const CSS: &str = r#"
/* dashboard theme */
* { font-family: Inter; }
.WordCloud { color: steelblue; max-words: 40; }
#playertweets { color: gold; }
teams, ipl_duration { border: 1px solid gray; }
"#;

    #[test]
    fn parses_rules_and_selectors() {
        let sheet = Stylesheet::parse(CSS).unwrap();
        assert_eq!(sheet.len(), 5, "comma selector expands to two rules");
    }

    #[test]
    fn specificity_name_beats_type_beats_universal() {
        let sheet = Stylesheet::parse(CSS).unwrap();
        let resolved = sheet.resolve("playertweets", "WordCloud");
        assert_eq!(resolved.get("color").map(String::as_str), Some("gold"));
        assert_eq!(resolved.get("max-words").map(String::as_str), Some("40"));
        assert_eq!(
            resolved.get("font-family").map(String::as_str),
            Some("Inter")
        );

        let other_cloud = sheet.resolve("wordtweets", "WordCloud");
        assert_eq!(
            other_cloud.get("color").map(String::as_str),
            Some("steelblue")
        );

        let list = sheet.resolve("teams", "List");
        assert_eq!(
            list.get("border").map(String::as_str),
            Some("1px solid gray")
        );
        assert!(!list.contains_key("color"));
    }

    #[test]
    fn later_rules_win_within_tier() {
        let sheet = Stylesheet::parse(".A { x: 1; }\n.A { x: 2; }").unwrap();
        assert_eq!(
            sheet.resolve("w", "A").get("x").map(String::as_str),
            Some("2")
        );
    }

    #[test]
    fn parse_errors_are_located() {
        let err = Stylesheet::parse("a { x: 1; ").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = Stylesheet::parse("\n\n{ x: 1; }").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(Stylesheet::parse("a { weird }").is_err());
        assert!(Stylesheet::parse("/* oops").is_err());
    }

    #[test]
    fn applies_to_render_tree() {
        let sheet = Stylesheet::parse(CSS).unwrap();
        let mut tree = RenderNode::container(
            "dash",
            "Dashboard",
            vec![
                RenderNode::leaf("playertweets", "WordCloud", vec!["dhoni (5)".into()]),
                RenderNode::leaf("grid", "DataGrid", vec![]),
            ],
        );
        apply_styles(&mut tree, &sheet);
        let cloud = &tree.children[0];
        assert!(cloud.lines[0].starts_with("style: "));
        assert!(cloud.lines[0].contains("color=gold"));
        let grid = &tree.children[1];
        assert_eq!(
            grid.lines.first().map(String::as_str),
            Some("style: font-family=Inter")
        );
    }

    #[test]
    fn empty_sheet_is_noop() {
        let sheet = Stylesheet::parse("").unwrap();
        assert!(sheet.is_empty());
        let mut node = RenderNode::leaf("w", "List", vec![]);
        apply_styles(&mut node, &sheet);
        assert!(node.lines.is_empty());
    }
}
