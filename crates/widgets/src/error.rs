//! Widget-layer errors.

use std::fmt;

/// Result alias.
pub type Result<T, E = WidgetError> = std::result::Result<T, E>;

/// Errors raised while building or interacting with dashboards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WidgetError {
    /// A widget type is neither built-in nor registered.
    UnknownType {
        /// Widget name.
        widget: String,
        /// Its declared type.
        widget_type: String,
    },
    /// A required data attribute is missing from the widget config.
    MissingBinding {
        /// Widget name.
        widget: String,
        /// The attribute (`text`, `size`, …).
        attribute: &'static str,
    },
    /// A data attribute binds to a column the source schema lacks.
    BadBinding {
        /// Widget name.
        widget: String,
        /// Attribute.
        attribute: String,
        /// The missing column.
        column: String,
        /// Columns the source actually has.
        available: Vec<String>,
    },
    /// The widget's source data object is not available as an endpoint.
    MissingSource {
        /// Widget name.
        widget: String,
        /// Source data object.
        source: String,
    },
    /// Evaluating the widget's interaction flow failed.
    Flow {
        /// Widget name.
        widget: String,
        /// Underlying engine error text.
        message: String,
    },
    /// Anything else.
    Invalid(String),
}

impl fmt::Display for WidgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WidgetError::UnknownType {
                widget,
                widget_type,
            } => write!(
                f,
                "widget '{widget}': unknown type '{widget_type}' (not built-in, not registered)"
            ),
            WidgetError::MissingBinding { widget, attribute } => {
                write!(f, "widget '{widget}': missing required data attribute '{attribute}:'")
            }
            WidgetError::BadBinding {
                widget,
                attribute,
                column,
                available,
            } => write!(
                f,
                "widget '{widget}': attribute '{attribute}' binds to column '{column}' which the source lacks (has: [{}])",
                available.join(", ")
            ),
            WidgetError::MissingSource { widget, source } => write!(
                f,
                "widget '{widget}': source 'D.{source}' is not an available endpoint data object"
            ),
            WidgetError::Flow { widget, message } => {
                write!(f, "widget '{widget}': interaction flow failed: {message}")
            }
            WidgetError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for WidgetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases = [
            WidgetError::UnknownType {
                widget: "w".into(),
                widget_type: "HoloDeck".into(),
            },
            WidgetError::MissingBinding {
                widget: "w".into(),
                attribute: "text",
            },
            WidgetError::BadBinding {
                widget: "w".into(),
                attribute: "size".into(),
                column: "total".into(),
                available: vec!["a".into()],
            },
            WidgetError::MissingSource {
                widget: "w".into(),
                source: "d".into(),
            },
            WidgetError::Flow {
                widget: "w".into(),
                message: "boom".into(),
            },
            WidgetError::Invalid("x".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
