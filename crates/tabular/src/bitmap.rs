//! Validity bitmap used by [`crate::Column`] to track nulls, and by filter
//! kernels to represent selection masks without materialising boolean
//! vectors.

/// A densely packed bitmap over `len` bits backed by `u64` words.
///
/// Bit `i` set means "valid" (for validity maps) or "selected" (for filter
/// masks). Trailing bits beyond `len` in the last word are kept zero so that
/// [`Bitmap::count_ones`] and word-level operations stay exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Create a bitmap of `len` bits, all cleared.
    pub fn new_cleared(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Create a bitmap of `len` bits, all set.
    pub fn new_set(len: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// A copy of this bitmap grown (or shrunk) to `len` bits: existing
    /// bits within range are preserved word-for-word, new bits are
    /// cleared. Word-level, so extending an n-bit posting list during an
    /// incremental index merge costs O(n/64), not O(n).
    pub fn resized(&self, len: usize) -> Self {
        let n_words = len.div_ceil(64);
        // One allocation at the target size, one copy of the surviving
        // words — `clone()` + `resize()` would copy twice when growing.
        let mut words = Vec::with_capacity(n_words);
        words.extend_from_slice(&self.words[..self.words.len().min(n_words)]);
        words.resize(n_words, 0);
        let mut bm = Bitmap { words, len };
        bm.mask_tail();
        bm
    }

    /// Create a bitmap from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut bm = Bitmap::new_cleared(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bm.set(i);
            }
        }
        bm
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap tracks zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Count of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// True when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise AND with another bitmap of the same length.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise OR with another bitmap of the same length.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise NOT (within `len`).
    pub fn not(&self) -> Bitmap {
        let mut bm = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        bm.mask_tail();
        bm
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Collect set-bit indices into a vector (row selection order).
    pub fn ones(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Append a bit, growing the bitmap by one.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if bit {
            self.set(self.len - 1);
        }
    }

    /// Extend with all bits of `other`.
    pub fn extend_from(&mut self, other: &Bitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bm = Bitmap::new_cleared(130);
        assert_eq!(bm.len(), 130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(65));
        assert_eq!(bm.count_ones(), 3);
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn new_set_masks_tail() {
        let bm = Bitmap::new_set(70);
        assert_eq!(bm.count_ones(), 70);
        assert!(bm.all_set());
        let inv = bm.not();
        assert!(inv.none_set());
    }

    #[test]
    fn and_or_not() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b).ones(), vec![0]);
        assert_eq!(a.or(&b).ones(), vec![0, 1, 2]);
        assert_eq!(a.not().ones(), vec![2, 3]);
    }

    #[test]
    fn iter_ones_crosses_word_boundary() {
        let mut bm = Bitmap::new_cleared(200);
        for i in [0usize, 63, 64, 127, 128, 199] {
            bm.set(i);
        }
        assert_eq!(bm.ones(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn push_and_extend() {
        let mut bm = Bitmap::new_cleared(0);
        assert!(bm.is_empty());
        for i in 0..100 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 34);
        let mut other = Bitmap::new_cleared(0);
        other.extend_from(&bm);
        assert_eq!(other, bm);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let bm = Bitmap::new_cleared(3);
        bm.get(3);
    }
}
