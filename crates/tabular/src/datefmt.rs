//! Date/time parsing and formatting with Java `SimpleDateFormat`-style
//! patterns.
//!
//! The paper's `date` map operator (§3.7.1, figure 21) is configured with
//! patterns like `'E MMM dd HH:mm:ss Z yyyy'` (the Twitter `created_at`
//! format) and `yyyy-MM-dd`. This module implements the subset of pattern
//! letters those pipelines need, from scratch: `yyyy`, `yy`, `MM`, `MMM`,
//! `dd`, `d`, `HH`, `mm`, `ss`, `SSS`, `Z`, `E`/`EEE`, plus literal text and
//! `''`-quoted sections.
//!
//! Civil-calendar conversion uses the classic days-from-civil algorithm
//! (era/day-of-era arithmetic), valid across the full `i32` day range.

use crate::error::{Result, TabularError};

/// A timestamp in milliseconds since the Unix epoch, UTC.
pub type EpochMillis = i64;

const MILLIS_PER_DAY: i64 = 86_400_000;

/// Convert a civil date to days since the Unix epoch.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Convert days since the Unix epoch back to a civil `(year, month, day)`.
pub fn civil_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Day of week for an epoch-day count; 0 = Monday … 6 = Sunday
/// (1970-01-01 was a Thursday).
pub fn weekday_from_days(days: i32) -> u32 {
    ((days as i64 + 3).rem_euclid(7)) as u32
}

const MONTHS_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const WEEKDAYS_ABBREV: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// A broken-down UTC datetime used internally by the formatter/parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DateTime {
    /// Civil year (proleptic Gregorian).
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31.
    pub day: u32,
    /// Hour 0–23.
    pub hour: u32,
    /// Minute 0–59.
    pub minute: u32,
    /// Second 0–59.
    pub second: u32,
    /// Millisecond 0–999.
    pub millis: u32,
    /// UTC offset in minutes east of Greenwich.
    pub offset_minutes: i32,
}

impl DateTime {
    /// Midnight UTC on the given civil date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        DateTime {
            year,
            month,
            day,
            hour: 0,
            minute: 0,
            second: 0,
            millis: 0,
            offset_minutes: 0,
        }
    }

    /// Milliseconds since the Unix epoch, honouring the offset.
    pub fn to_epoch_millis(&self) -> EpochMillis {
        let days = days_from_civil(self.year, self.month, self.day) as i64;
        let local = days * MILLIS_PER_DAY
            + self.hour as i64 * 3_600_000
            + self.minute as i64 * 60_000
            + self.second as i64 * 1_000
            + self.millis as i64;
        local - self.offset_minutes as i64 * 60_000
    }

    /// Rebuild a UTC broken-down datetime from epoch milliseconds.
    pub fn from_epoch_millis(ms: EpochMillis) -> Self {
        let days = ms.div_euclid(MILLIS_PER_DAY);
        let rem = ms.rem_euclid(MILLIS_PER_DAY);
        let (year, month, day) = civil_from_days(days as i32);
        DateTime {
            year,
            month,
            day,
            hour: (rem / 3_600_000) as u32,
            minute: (rem / 60_000 % 60) as u32,
            second: (rem / 1_000 % 60) as u32,
            millis: (rem % 1_000) as u32,
            offset_minutes: 0,
        }
    }

    /// Days since the Unix epoch for the date part (UTC).
    pub fn epoch_days(&self) -> i32 {
        (self.to_epoch_millis().div_euclid(MILLIS_PER_DAY)) as i32
    }
}

/// One compiled token of a date pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Year4,
    Year2,
    Month2,
    MonthAbbrev,
    Day2,
    Day1,
    Hour2,
    Minute2,
    Second2,
    Millis3,
    ZoneRfc822,
    WeekdayAbbrev,
    Literal(String),
}

/// A compiled date format pattern, reusable across rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatePattern {
    tokens: Vec<Token>,
    source: String,
}

impl DatePattern {
    /// Compile a Java-style pattern string.
    pub fn compile(pattern: &str) -> Result<Self> {
        let mut tokens = Vec::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c == '\'' {
                // Quoted literal section; '' is an escaped quote.
                let mut lit = String::new();
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\'' {
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            lit.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        lit.push(chars[i]);
                        i += 1;
                    }
                }
                tokens.push(Token::Literal(lit));
                continue;
            }
            if c.is_ascii_alphabetic() {
                let mut run = 1;
                while i + run < chars.len() && chars[i + run] == c {
                    run += 1;
                }
                let tok = match (c, run) {
                    ('y', 4) => Token::Year4,
                    ('y', 2) => Token::Year2,
                    ('M', 2) => Token::Month2,
                    ('M', n) if n >= 3 => Token::MonthAbbrev,
                    ('d', 2) => Token::Day2,
                    ('d', 1) => Token::Day1,
                    ('H', 2) => Token::Hour2,
                    ('m', 2) => Token::Minute2,
                    ('s', 2) => Token::Second2,
                    ('S', 3) => Token::Millis3,
                    ('Z', _) => Token::ZoneRfc822,
                    ('E', _) => Token::WeekdayAbbrev,
                    _ => return Err(TabularError::BadDatePattern(pattern.to_string())),
                };
                tokens.push(tok);
                i += run;
                continue;
            }
            // Unquoted literal character (separators like '-', ':', ' ').
            match tokens.last_mut() {
                Some(Token::Literal(l)) => l.push(c),
                _ => tokens.push(Token::Literal(c.to_string())),
            }
            i += 1;
        }
        Ok(DatePattern {
            tokens,
            source: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Parse `input` against this pattern into a broken-down datetime.
    pub fn parse(&self, input: &str) -> Result<DateTime> {
        let err = || TabularError::DateParse {
            input: input.to_string(),
            pattern: self.source.clone(),
        };
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let mut dt = DateTime::from_ymd(1970, 1, 1);

        let read_digits = |pos: &mut usize, min: usize, max: usize| -> Option<i64> {
            let start = *pos;
            let mut end = start;
            while end < bytes.len() && end - start < max && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end - start < min {
                return None;
            }
            *pos = end;
            input[start..end].parse::<i64>().ok()
        };

        for tok in &self.tokens {
            match tok {
                Token::Year4 => dt.year = read_digits(&mut pos, 4, 4).ok_or_else(err)? as i32,
                Token::Year2 => {
                    let y = read_digits(&mut pos, 2, 2).ok_or_else(err)?;
                    dt.year = 2000 + y as i32;
                }
                Token::Month2 => dt.month = read_digits(&mut pos, 2, 2).ok_or_else(err)? as u32,
                Token::MonthAbbrev => {
                    let rest = &input[pos..];
                    let idx = MONTHS_ABBREV
                        .iter()
                        .position(|m| rest.len() >= 3 && rest[..3].eq_ignore_ascii_case(m))
                        .ok_or_else(err)?;
                    dt.month = idx as u32 + 1;
                    pos += 3;
                }
                Token::Day2 => dt.day = read_digits(&mut pos, 2, 2).ok_or_else(err)? as u32,
                Token::Day1 => dt.day = read_digits(&mut pos, 1, 2).ok_or_else(err)? as u32,
                Token::Hour2 => dt.hour = read_digits(&mut pos, 2, 2).ok_or_else(err)? as u32,
                Token::Minute2 => dt.minute = read_digits(&mut pos, 2, 2).ok_or_else(err)? as u32,
                Token::Second2 => dt.second = read_digits(&mut pos, 2, 2).ok_or_else(err)? as u32,
                Token::Millis3 => dt.millis = read_digits(&mut pos, 3, 3).ok_or_else(err)? as u32,
                Token::ZoneRfc822 => {
                    // +0530 / -0800 / Z
                    if pos < bytes.len() && (bytes[pos] == b'Z' || bytes[pos] == b'z') {
                        dt.offset_minutes = 0;
                        pos += 1;
                    } else {
                        if pos >= bytes.len() || (bytes[pos] != b'+' && bytes[pos] != b'-') {
                            return Err(err());
                        }
                        let sign: i32 = if bytes[pos] == b'-' { -1 } else { 1 };
                        pos += 1;
                        let hhmm = read_digits(&mut pos, 4, 4).ok_or_else(err)?;
                        dt.offset_minutes = sign * ((hhmm / 100 * 60) + hhmm % 100) as i32;
                    }
                }
                Token::WeekdayAbbrev => {
                    let rest = &input[pos..];
                    let ok = WEEKDAYS_ABBREV
                        .iter()
                        .any(|w| rest.len() >= 3 && rest[..3].eq_ignore_ascii_case(w));
                    if !ok {
                        return Err(err());
                    }
                    pos += 3;
                }
                Token::Literal(l) => {
                    if !input[pos..].starts_with(l.as_str()) {
                        return Err(err());
                    }
                    pos += l.len();
                }
            }
        }
        if pos != bytes.len() {
            return Err(err());
        }
        if dt.month == 0 || dt.month > 12 || dt.day == 0 || dt.day > 31 {
            return Err(err());
        }
        Ok(dt)
    }

    /// Format a broken-down datetime with this pattern.
    pub fn format(&self, dt: &DateTime) -> String {
        let mut out = String::new();
        for tok in &self.tokens {
            match tok {
                Token::Year4 => out.push_str(&format!("{:04}", dt.year)),
                Token::Year2 => out.push_str(&format!("{:02}", dt.year.rem_euclid(100))),
                Token::Month2 => out.push_str(&format!("{:02}", dt.month)),
                Token::MonthAbbrev => out.push_str(MONTHS_ABBREV[(dt.month as usize - 1).min(11)]),
                Token::Day2 => out.push_str(&format!("{:02}", dt.day)),
                Token::Day1 => out.push_str(&format!("{}", dt.day)),
                Token::Hour2 => out.push_str(&format!("{:02}", dt.hour)),
                Token::Minute2 => out.push_str(&format!("{:02}", dt.minute)),
                Token::Second2 => out.push_str(&format!("{:02}", dt.second)),
                Token::Millis3 => out.push_str(&format!("{:03}", dt.millis)),
                Token::ZoneRfc822 => {
                    let sign = if dt.offset_minutes < 0 { '-' } else { '+' };
                    let m = dt.offset_minutes.abs();
                    out.push_str(&format!("{sign}{:02}{:02}", m / 60, m % 60));
                }
                Token::WeekdayAbbrev => {
                    let days = days_from_civil(dt.year, dt.month, dt.day);
                    out.push_str(WEEKDAYS_ABBREV[weekday_from_days(days) as usize]);
                }
                Token::Literal(l) => out.push_str(l),
            }
        }
        out
    }
}

/// Parse with `input_pattern` and re-format with `output_pattern` — the exact
/// behaviour of the paper's `date` map operator.
pub fn reformat(
    input: &str,
    input_pattern: &DatePattern,
    output_pattern: &DatePattern,
) -> Result<String> {
    let dt = input_pattern.parse(input)?;
    // Normalise through epoch millis so the offset is folded into UTC before
    // re-formatting (matches Pig/Java behaviour for `Z` patterns).
    let utc = DateTime::from_epoch_millis(dt.to_epoch_millis());
    Ok(output_pattern.format(&utc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_epoch() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
        for days in [-1_000_000, -1, 0, 1, 365, 10_000, 1_000_000] {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "roundtrip {days}");
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(
            days_from_civil(2000, 2, 29) + 1,
            days_from_civil(2000, 3, 1)
        );
        assert_eq!(
            days_from_civil(1900, 2, 28) + 1,
            days_from_civil(1900, 3, 1),
            "1900 is not a leap year"
        );
    }

    #[test]
    fn weekday() {
        // 1970-01-01 was a Thursday (index 3).
        assert_eq!(weekday_from_days(0), 3);
        // 2013-05-02 was a Thursday.
        assert_eq!(weekday_from_days(days_from_civil(2013, 5, 2)), 3);
    }

    #[test]
    fn parse_twitter_created_at() {
        let p = DatePattern::compile("E MMM dd HH:mm:ss Z yyyy").unwrap();
        let dt = p.parse("Thu May 02 19:30:05 +0530 2013").unwrap();
        assert_eq!((dt.year, dt.month, dt.day), (2013, 5, 2));
        assert_eq!(dt.offset_minutes, 330);
        let out = DatePattern::compile("yyyy-MM-dd").unwrap();
        assert_eq!(
            reformat("Thu May 02 19:30:05 +0530 2013", &p, &out).unwrap(),
            "2013-05-02"
        );
    }

    #[test]
    fn offset_fold_crosses_midnight() {
        let p = DatePattern::compile("E MMM dd HH:mm:ss Z yyyy").unwrap();
        let out = DatePattern::compile("yyyy-MM-dd").unwrap();
        // 01:30 IST on May 3 is 20:00 UTC on May 2.
        assert_eq!(
            reformat("Fri May 03 01:30:00 +0530 2013", &p, &out).unwrap(),
            "2013-05-02"
        );
    }

    #[test]
    fn iso_roundtrip() {
        let p = DatePattern::compile("yyyy-MM-dd").unwrap();
        let dt = p.parse("2015-05-31").unwrap();
        assert_eq!(p.format(&dt), "2015-05-31");
    }

    #[test]
    fn quoted_literals() {
        let p = DatePattern::compile("yyyy'T'MM").unwrap();
        let dt = p.parse("2015T06").unwrap();
        assert_eq!((dt.year, dt.month), (2015, 6));
        assert_eq!(p.format(&dt), "2015T06");
    }

    #[test]
    fn parse_rejects_garbage() {
        let p = DatePattern::compile("yyyy-MM-dd").unwrap();
        assert!(p.parse("2015-13-01").is_err(), "month 13");
        assert!(p.parse("2015-05-00").is_err(), "day 0");
        assert!(p.parse("2015-05").is_err(), "truncated");
        assert!(p.parse("2015-05-01X").is_err(), "trailing junk");
        assert!(p.parse("not a date").is_err());
    }

    #[test]
    fn bad_pattern_rejected() {
        assert!(DatePattern::compile("QQQQ").is_err());
    }

    #[test]
    fn zone_z_literal() {
        let p = DatePattern::compile("yyyy-MM-dd HH:mm Z").unwrap();
        let dt = p.parse("2015-01-01 10:00 Z").unwrap();
        assert_eq!(dt.offset_minutes, 0);
        let dt = p.parse("2015-01-01 10:00 -0800").unwrap();
        assert_eq!(dt.offset_minutes, -480);
    }

    #[test]
    fn epoch_millis_roundtrip() {
        for ms in [-86_400_000i64, -1, 0, 1, 1_368_536_405_000] {
            let dt = DateTime::from_epoch_millis(ms);
            assert_eq!(dt.to_epoch_millis(), ms, "roundtrip {ms}");
        }
    }
}
