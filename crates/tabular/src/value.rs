//! Scalar [`Value`] type: the dynamically typed cell used at row boundaries
//! (payload decoding, expression literals, group keys, the server API).

use crate::datatype::DataType;
use crate::error::{Result, TabularError};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single dynamically typed cell value.
///
/// `Value` implements total ordering and hashing (floats are ordered via
/// their IEEE total order and NaN hashes to a fixed bucket) so values can be
/// used directly as group-by and join keys.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style null / missing value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Calendar date as days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// The logical type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int64,
            Value::Float(_) => DataType::Float64,
            Value::Str(_) => DataType::Utf8,
            Value::Date(_) => DataType::Date,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean, if the value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as an `i64` without loss.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Interpret as an `f64`, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Borrow the string payload, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Interpret as a date (days since epoch).
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Parse a raw textual token into the most specific value type.
    ///
    /// This is the inference rule payload readers (CSV, XML attribute text)
    /// apply per cell: empty string ⇒ null, then bool, then int, then float,
    /// falling back to string. ISO dates (`yyyy-MM-dd`) stay strings here —
    /// the paper's pipelines normalise dates explicitly with the `date` map
    /// operator, and implicit date coercion would fight that model.
    pub fn infer(token: &str) -> Value {
        let t = token.trim();
        if t.is_empty() {
            return Value::Null;
        }
        match t {
            "true" | "TRUE" | "True" => return Value::Bool(true),
            "false" | "FALSE" | "False" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if looks_numeric(t) {
            if let Ok(f) = t.parse::<f64>() {
                return Value::Float(f);
            }
        }
        Value::Str(t.to_string())
    }

    /// Coerce this value to the target type, or error when lossy in a way
    /// that matters (non-numeric string to number, etc.).
    pub fn coerce(&self, target: DataType) -> Result<Value> {
        let fail = || TabularError::ValueConversion {
            value: self.to_string(),
            target: target.name(),
        };
        if self.is_null() {
            return Ok(Value::Null);
        }
        Ok(match (self, target) {
            (v, t) if v.data_type() == t => v.clone(),
            (Value::Int(i), DataType::Float64) => Value::Float(*i as f64),
            (Value::Float(f), DataType::Int64) if f.fract() == 0.0 && f.is_finite() => {
                Value::Int(*f as i64)
            }
            (Value::Str(s), DataType::Int64) => {
                Value::Int(s.trim().parse::<i64>().map_err(|_| fail())?)
            }
            (Value::Str(s), DataType::Float64) => {
                Value::Float(s.trim().parse::<f64>().map_err(|_| fail())?)
            }
            (Value::Str(s), DataType::Bool) => match s.trim() {
                "true" | "TRUE" | "True" | "1" => Value::Bool(true),
                "false" | "FALSE" | "False" | "0" => Value::Bool(false),
                _ => return Err(fail()),
            },
            (v, DataType::Utf8) => Value::Str(v.to_string()),
            _ => return Err(fail()),
        })
    }

    /// Total-order comparison key for floats (IEEE totalOrder via bit
    /// manipulation).
    fn float_key(f: f64) -> i64 {
        let bits = f.to_bits() as i64;
        bits ^ (((bits >> 63) as u64) >> 1) as i64
    }

    /// Rank of the value's type for cross-type ordering: nulls first, then
    /// bools, numbers, dates, strings.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Date(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

fn looks_numeric(t: &str) -> bool {
    let mut chars = t.chars();
    let first = chars.next().unwrap_or(' ');
    (first.is_ascii_digit() || first == '-' || first == '+' || first == '.')
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => Value::float_key(*a).cmp(&Value::float_key(*b)),
            (Int(a), Float(b)) => Value::float_key(*a as f64).cmp(&Value::float_key(*b)),
            (Float(a), Int(b)) => Value::float_key(*a).cmp(&Value::float_key(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and whole floats must hash identically because they
            // compare equal (`Int(2) == Float(2.0)` via numeric ordering).
            Value::Int(i) => {
                2u8.hash(state);
                Value::float_key(*i as f64).hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                Value::float_key(*f).hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => {
                let (y, m, day) = crate::datefmt::civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn infer_rules() {
        assert_eq!(Value::infer(""), Value::Null);
        assert_eq!(Value::infer("  "), Value::Null);
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-3"), Value::Int(-3));
        assert_eq!(Value::infer("2.5"), Value::Float(2.5));
        assert_eq!(Value::infer("1e3"), Value::Float(1000.0));
        assert_eq!(Value::infer("pig"), Value::Str("pig".into()));
        // Date-looking strings stay strings: normalisation is explicit.
        assert_eq!(Value::infer("2013-05-02"), Value::Str("2013-05-02".into()));
        // Things that look vaguely numeric but are not.
        assert_eq!(Value::infer("1.2.3"), Value::Str("1.2.3".into()));
    }

    #[test]
    fn int_float_numeric_equality_and_hash_agree() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_is_self_equal_and_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan);
        assert_eq!(hash_of(&nan), hash_of(&nan));
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn cross_type_ordering_is_total() {
        let mut vals = [
            Value::Str("a".into()),
            Value::Null,
            Value::Int(1),
            Value::Bool(true),
            Value::Date(0),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[4], Value::Str("a".into()));
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Str("12".into()).coerce(DataType::Int64).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            Value::Int(3).coerce(DataType::Float64).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.0).coerce(DataType::Int64).unwrap(),
            Value::Int(3)
        );
        assert!(Value::Float(3.5).coerce(DataType::Int64).is_err());
        assert!(Value::Str("x".into()).coerce(DataType::Int64).is_err());
        assert_eq!(
            Value::Int(7).coerce(DataType::Utf8).unwrap(),
            Value::Str("7".into())
        );
        assert_eq!(Value::Null.coerce(DataType::Int64).unwrap(), Value::Null);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Date(0).to_string(), "1970-01-01");
    }
}
