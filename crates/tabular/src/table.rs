//! [`Table`]: an immutable bundle of a schema and equally long columns.

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnBuilder, ColumnRef};
use crate::datatype::DataType;
use crate::error::{Result, TabularError};
use crate::row::Row;
use crate::schema::{Field, Schema, SchemaRef};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable table: a [`Schema`] plus one [`Column`] per field, all of
/// equal length. Columns are `Arc`-shared so projections and endpoint
/// snapshots are cheap.
#[derive(Debug, Clone)]
pub struct Table {
    schema: SchemaRef,
    columns: Vec<ColumnRef>,
    rows: usize,
}

impl Table {
    /// Build a table, validating column count and lengths against the
    /// schema.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Table> {
        Table::from_refs(
            Arc::new(schema),
            columns.into_iter().map(Arc::new).collect(),
        )
    }

    /// Build from shared handles.
    pub fn from_refs(schema: SchemaRef, columns: Vec<ColumnRef>) -> Result<Table> {
        if schema.len() != columns.len() {
            return Err(TabularError::LengthMismatch {
                left: schema.len(),
                right: columns.len(),
                context: "table construction (schema vs columns)".into(),
            });
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.len() != rows {
                return Err(TabularError::LengthMismatch {
                    left: rows,
                    right: c.len(),
                    context: format!("column '{}'", f.name()),
                });
            }
            // A column may be narrower (Null unifies with anything) but not
            // a different concrete type than its field declares.
            if c.data_type() != DataType::Null && c.data_type() != f.data_type() {
                return Err(TabularError::TypeMismatch {
                    expected: f.data_type().to_string(),
                    actual: c.data_type().to_string(),
                    context: format!("column '{}'", f.name()),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// A zero-row table with the given schema.
    pub fn empty(schema: Schema) -> Table {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Arc::new(ColumnBuilder::new(f.data_type()).finish()))
            .collect();
        Table {
            schema: Arc::new(schema),
            columns,
            rows: 0,
        }
    }

    /// Build a table from rows, inferring column types from the values.
    /// The schema supplies names; inferred types override its types.
    pub fn from_rows(names: &[impl AsRef<str>], rows: &[Row]) -> Result<Table> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != names.len() {
                return Err(TabularError::LengthMismatch {
                    left: names.len(),
                    right: r.len(),
                    context: format!("row {i}"),
                });
            }
        }
        let mut fields = Vec::with_capacity(names.len());
        let mut columns = Vec::with_capacity(names.len());
        for (ci, name) in names.iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[ci].clone()).collect();
            let col = Column::from_values(&vals);
            fields.push(Field::new(name.as_ref(), col.data_type()));
            columns.push(col);
        }
        Table::new(Schema::new(fields)?, columns)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared schema handle.
    pub fn schema_ref(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// Row count.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True when the table has zero rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column handle by position.
    pub fn column_at(&self, i: usize) -> &ColumnRef {
        &self.columns[i]
    }

    /// Column handle by name.
    pub fn column(&self, name: &str) -> Result<&ColumnRef> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All column handles.
    pub fn columns(&self) -> &[ColumnRef] {
        &self.columns
    }

    /// Cell accessor.
    pub fn value(&self, row: usize, column: &str) -> Result<Value> {
        Ok(self.column(column)?.value(row))
    }

    /// Materialise row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Materialise every row (test/serialisation path — O(rows × cols)).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Zero-copy projection onto named columns in the given order.
    pub fn project(&self, names: &[impl AsRef<str>]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| Ok(Arc::clone(&self.columns[self.schema.index_of(n.as_ref())?])))
            .collect::<Result<Vec<_>>>()?;
        Table::from_refs(Arc::new(schema), columns)
    }

    /// New table with `column` appended (or replacing a same-named column).
    pub fn with_column(&self, name: &str, column: Column) -> Result<Table> {
        if column.len() != self.rows {
            return Err(TabularError::LengthMismatch {
                left: self.rows,
                right: column.len(),
                context: format!("with_column '{name}'"),
            });
        }
        let field = Field::new(name, column.data_type());
        let schema = self.schema.upsert_field(field);
        let mut columns = self.columns.clone();
        match self.schema.index_of(name) {
            Ok(i) => columns[i] = Arc::new(column),
            Err(_) => columns.push(Arc::new(column)),
        }
        Table::from_refs(Arc::new(schema), columns)
    }

    /// Gather rows by index into a new table.
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.take(indices)))
            .collect();
        Table {
            schema: Arc::clone(&self.schema),
            columns,
            rows: indices.len(),
        }
    }

    /// Filter rows by a selection bitmap.
    pub fn filter(&self, mask: &Bitmap) -> Table {
        self.take(&mask.ones())
    }

    /// First `n` rows.
    pub fn limit(&self, n: usize) -> Table {
        let n = n.min(self.rows);
        self.take(&(0..n).collect::<Vec<_>>())
    }

    /// Rows `[offset, offset+len)` clamped to the table.
    pub fn slice(&self, offset: usize, len: usize) -> Table {
        let start = offset.min(self.rows);
        let end = (offset + len).min(self.rows);
        self.take(&(start..end).collect::<Vec<_>>())
    }

    /// Vertical concatenation; schemas must have the same column names in
    /// order, types widen per the lossy lattice.
    pub fn concat(&self, other: &Table) -> Result<Table> {
        let schema = self.schema.unify(other.schema())?;
        let mut columns = Vec::with_capacity(self.columns.len());
        for (i, f) in schema.fields().iter().enumerate() {
            let a = self.columns[i].cast(f.data_type()).unwrap_or_else(|_| {
                // unify_lossy guarantees Utf8 fallback casts succeed; a
                // failure here would be an internal invariant break.
                panic!("concat cast failed for column '{}'", f.name())
            });
            let b = other.columns[i]
                .cast(f.data_type())
                .unwrap_or_else(|_| panic!("concat cast failed for column '{}'", f.name()));
            columns.push(Arc::new(a.concat(&b)?));
        }
        Table::from_refs(Arc::new(schema), columns)
    }

    /// Vertical concatenation of many tables in one pass: schemas unify
    /// left-to-right, then each output column is built once over every
    /// input — O(total rows), unlike folding [`Table::concat`] which
    /// re-copies the accumulated prefix per input. The shape decoded
    /// ingest segments arrive in.
    pub fn concat_all(tables: &[Table]) -> Result<Table> {
        let Some((first, rest)) = tables.split_first() else {
            return Ok(Table::empty(Schema::empty()));
        };
        if rest.is_empty() {
            return Ok(first.clone());
        }
        let mut schema = first.schema().clone();
        for t in rest {
            schema = schema.unify(t.schema())?;
        }
        let mut columns = Vec::with_capacity(schema.len());
        for (i, f) in schema.fields().iter().enumerate() {
            let mut b = ColumnBuilder::new(f.data_type());
            for t in tables {
                let c = &t.columns[i];
                for r in 0..c.len() {
                    b.push_coerced(&c.value(r))?;
                }
            }
            columns.push(Arc::new(b.finish()));
        }
        Table::from_refs(Arc::new(schema), columns)
    }

    /// Render the first `max_rows` rows as an aligned text grid — the shape
    /// the paper's data explorer (§4.4, figure 29) shows for endpoint data.
    pub fn pretty(&self, max_rows: usize) -> String {
        let names = self.schema.names();
        let shown = self.rows.min(max_rows);
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.value(r).to_string())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let fmt_row = |vals: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (v, w) in vals.iter().zip(widths) {
                line.push_str(&format!(" {v:<w$} |"));
            }
            line.push('\n');
            line
        };
        let header: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        out.push_str(&fmt_row(&header, &widths));
        out.push_str(&format!(
            "|{}\n",
            widths
                .iter()
                .map(|w| format!("{:-<1$}|", "", w + 2))
                .collect::<String>()
        ));
        for row in &cells {
            out.push_str(&fmt_row(row, &widths));
        }
        if self.rows > shown {
            out.push_str(&format!("... {} more rows\n", self.rows - shown));
        }
        out
    }

    /// Approximate in-memory size in bytes: the metric the optimizer uses
    /// when minimising data transferred to the client (§6).
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.as_ref() {
                Column::Bool { data, .. } => data.len(),
                Column::Int64 { data, .. } => data.len() * 8,
                Column::Float64 { data, .. } => data.len() * 8,
                Column::Date { data, .. } => data.len() * 4,
                Column::Utf8 { data, .. } => data.iter().map(|s| s.len() + 24).sum::<usize>(),
                Column::Null { .. } => 0,
            })
            .sum()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty(20))
    }
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema.same_shape(other.schema()) && self.to_rows() == other.to_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Table {
        Table::new(
            Schema::of(&[
                ("project", DataType::Utf8),
                ("year", DataType::Int64),
                ("commits", DataType::Int64),
            ]),
            vec![
                Column::utf8(["pig", "spark", "pig", "hive"]),
                Column::int([2013, 2013, 2014, 2014]),
                Column::int([120, 340, 95, 60]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths_and_types() {
        let bad = Table::new(
            Schema::of(&[("a", DataType::Int64), ("b", DataType::Int64)]),
            vec![Column::int([1, 2]), Column::int([1])],
        );
        assert!(bad.is_err());
        let bad = Table::new(
            Schema::of(&[("a", DataType::Int64)]),
            vec![Column::utf8(["x"])],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn from_rows_infers_schema() {
        let t = Table::from_rows(
            &["name", "score"],
            &[row!["a", 1i64], row!["b", 2.5], row!["c", Value::Null]],
        )
        .unwrap();
        assert_eq!(
            t.schema().field("score").unwrap().data_type(),
            DataType::Float64
        );
        assert_eq!(t.num_rows(), 3);
        assert!(t.value(2, "score").unwrap().is_null());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Table::from_rows(&["a", "b"], &[row![1i64]]).is_err());
    }

    #[test]
    fn projection_is_zero_copy() {
        let t = sample();
        let p = t.project(&["commits", "project"]).unwrap();
        assert_eq!(p.schema().names(), vec!["commits", "project"]);
        assert!(Arc::ptr_eq(
            p.column("commits").unwrap(),
            t.column("commits").unwrap()
        ));
    }

    #[test]
    fn with_column_appends_and_replaces() {
        let t = sample();
        let t2 = t.with_column("stars", Column::int([1, 2, 3, 4])).unwrap();
        assert_eq!(t2.num_columns(), 4);
        let t3 = t2
            .with_column("stars", Column::float([0.1, 0.2, 0.3, 0.4]))
            .unwrap();
        assert_eq!(t3.num_columns(), 4);
        assert_eq!(
            t3.schema().field("stars").unwrap().data_type(),
            DataType::Float64
        );
        assert!(t.with_column("bad", Column::int([1])).is_err());
    }

    #[test]
    fn take_filter_limit_slice() {
        let t = sample();
        let taken = t.take(&[3, 0]);
        assert_eq!(
            taken.value(0, "project").unwrap(),
            Value::Str("hive".into())
        );
        let mask = Bitmap::from_bools(&[true, false, false, true]);
        assert_eq!(t.filter(&mask).num_rows(), 2);
        assert_eq!(t.limit(2).num_rows(), 2);
        assert_eq!(t.limit(99).num_rows(), 4);
        assert_eq!(t.slice(1, 2).num_rows(), 2);
        assert_eq!(t.slice(3, 5).num_rows(), 1);
    }

    #[test]
    fn concat_unifies() {
        let a = Table::from_rows(&["x"], &[row![1i64]]).unwrap();
        let b = Table::from_rows(&["x"], &[row![2.5]]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.num_rows(), 2);
        assert_eq!(
            c.schema().field("x").unwrap().data_type(),
            DataType::Float64
        );
    }

    #[test]
    fn concat_all_matches_pairwise_folding() {
        let parts: Vec<Table> = (0..4)
            .map(|p| {
                Table::from_rows(
                    &["x", "y"],
                    &[row![p as i64, format!("s{p}")], row![p as i64 + 10, "t"]],
                )
                .unwrap()
            })
            .collect();
        let folded = parts[1..]
            .iter()
            .fold(parts[0].clone(), |acc, t| acc.concat(t).unwrap());
        let all = Table::concat_all(&parts).unwrap();
        assert_eq!(all, folded);
        // Widening across later segments unifies the whole run.
        let widen = vec![
            Table::from_rows(&["x"], &[row![1i64]]).unwrap(),
            Table::from_rows(&["x"], &[row![2.5]]).unwrap(),
            Table::from_rows(&["x"], &[row![3i64]]).unwrap(),
        ];
        let t = Table::concat_all(&widen).unwrap();
        assert_eq!(
            t.schema().field("x").unwrap().data_type(),
            DataType::Float64
        );
        assert_eq!(t.num_rows(), 3);
        // Degenerate shapes.
        assert_eq!(Table::concat_all(&[]).unwrap().num_rows(), 0);
        assert_eq!(Table::concat_all(&widen[..1]).unwrap(), widen[0]);
    }

    #[test]
    fn pretty_prints_header_and_overflow() {
        let t = sample();
        let s = t.pretty(2);
        assert!(s.contains("project"));
        assert!(s.contains("... 2 more rows"));
    }

    #[test]
    fn approx_bytes_positive() {
        assert!(sample().approx_bytes() > 0);
        assert_eq!(Table::empty(Schema::empty()).approx_bytes(), 0);
    }
}
