//! Per-column acceleration indexes and the [`IndexedTable`] wrapper.
//!
//! Both interactive execution contexts — the widget data cube (§4.1) and the
//! data explorer's ad-hoc query route (§4.4) — repeatedly evaluate
//! filter/groupby/sort chains over an *immutable* endpoint snapshot. The
//! scan kernels in [`crate::ops`] pay a per-row dynamic-[`Value`] cost on
//! every evaluation; this module amortises that cost into a one-time,
//! lazily built index per column:
//!
//! - [`DictionaryIndex`] for `Utf8` columns: the distinct strings sorted
//!   into a dictionary, a per-row `u32` code, and a posting [`Bitmap`] per
//!   code. Equality predicates become posting-list unions, range predicates
//!   become contiguous code spans, group-by becomes dense code-indexed
//!   accumulation, and sort becomes a counting sort over code rank.
//! - [`ZoneIndex`] for `Int64`/`Float64`/`Date` columns: min–max bounds per
//!   fixed-size row zone. Range and equality predicates skip zones whose
//!   bounds cannot intersect the predicate and scan only candidate zones.
//!
//! [`IndexedTable`] bundles a [`Table`] with one lazily built
//! ([`OnceLock`]) index slot per column and exposes accelerated kernels
//! that mirror the scan kernels' semantics *exactly*. Every accelerated
//! kernel returns `Option<Table>`: `None` means "not covered — run the
//! scan kernel instead", the same decline-to-generic contract the
//! group-by fast path uses. Callers therefore never see a behaviour
//! difference, only a latency one; the differential tests in this module
//! and in `tests/` pin that down.

use crate::agg::AggKind;
use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::ops::filter::{FilterByValues, RangeFilter};
use crate::ops::groupby::GroupBy;
use crate::ops::sort::{SortKey, SortOrder};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Sentinel code marking a null cell in [`DictionaryIndex::codes`].
pub const NULL_CODE: u32 = u32::MAX;

/// Rows per zone in a [`ZoneIndex`].
pub const ZONE_ROWS: usize = 4096;

/// Compare a dictionary entry against an arbitrary [`Value`] under the
/// total `Value` order. Strings carry the highest type rank, so a string
/// cell compares greater than any non-string, non-string value.
fn cmp_str_value(s: &str, v: &Value) -> Ordering {
    match v {
        Value::Str(o) => s.cmp(o.as_str()),
        _ => Ordering::Greater,
    }
}

/// Dictionary encoding of a `Utf8` column: distinct strings sorted into a
/// dictionary, per-row codes into it ([`NULL_CODE`] for nulls), and a
/// posting bitmap per code.
#[derive(Debug, Clone)]
pub struct DictionaryIndex {
    dict: Vec<String>,
    codes: Vec<u32>,
    postings: Vec<Bitmap>,
    nulls: Bitmap,
}

impl DictionaryIndex {
    fn build(data: &[String], validity: &Bitmap) -> DictionaryIndex {
        let n = data.len();
        let mut distinct: BTreeMap<&str, u32> = BTreeMap::new();
        for (i, s) in data.iter().enumerate() {
            if validity.get(i) {
                distinct.entry(s.as_str()).or_insert(0);
            }
        }
        // BTreeMap iterates in key order, so enumeration assigns sorted codes.
        let dict: Vec<String> = distinct.keys().map(|s| s.to_string()).collect();
        for (code, slot) in distinct.values_mut().enumerate() {
            *slot = code as u32;
        }
        let mut codes = Vec::with_capacity(n);
        let mut postings: Vec<Bitmap> = dict.iter().map(|_| Bitmap::new_cleared(n)).collect();
        let mut nulls = Bitmap::new_cleared(n);
        for (i, s) in data.iter().enumerate() {
            if validity.get(i) {
                let code = distinct[s.as_str()];
                codes.push(code);
                postings[code as usize].set(i);
            } else {
                codes.push(NULL_CODE);
                nulls.set(i);
            }
        }
        DictionaryIndex {
            dict,
            codes,
            postings,
            nulls,
        }
    }

    /// The sorted dictionary.
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Per-row dictionary codes ([`NULL_CODE`] for null cells).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of distinct non-null values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Dictionary code of `s`, if present.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.dict
            .binary_search_by(|d| d.as_str().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// Rows whose cell equals any of `allowed` — the posting-list union
    /// form of [`crate::ops::filter_by_values`]'s per-column membership
    /// test. A `Null` in the allowed set selects the null rows (matching
    /// the scan path, where `Value::Null` set membership matches null
    /// cells); non-string values never equal a string cell.
    pub fn rows_for_values(&self, allowed: &[Value]) -> Bitmap {
        let mut mask = Bitmap::new_cleared(self.codes.len());
        for v in allowed {
            match v {
                Value::Null => mask = mask.or(&self.nulls),
                Value::Str(s) => {
                    if let Some(code) = self.code_of(s) {
                        mask = mask.or(&self.postings[code as usize]);
                    }
                }
                _ => {}
            }
        }
        mask
    }

    /// Rows whose cell `v` satisfies `!v.is_null() && v >= lo && v <= hi`
    /// under the total `Value` order. Because the dictionary is sorted, the
    /// qualifying codes form one contiguous span.
    pub fn rows_for_range(&self, lo: &Value, hi: &Value) -> Bitmap {
        let start = self
            .dict
            .partition_point(|s| cmp_str_value(s, lo) == Ordering::Less) as u32;
        let end =
            self.dict
                .partition_point(|s| cmp_str_value(s, hi) != Ordering::Greater) as u32;
        let mut mask = Bitmap::new_cleared(self.codes.len());
        if start >= end {
            return mask;
        }
        if (end - start) as usize <= 8 {
            for code in start..end {
                mask = mask.or(&self.postings[code as usize]);
            }
        } else {
            // Wide spans: one pass over the codes beats unioning many
            // postings. NULL_CODE is u32::MAX, always outside [start, end).
            for (i, &c) in self.codes.iter().enumerate() {
                if c >= start && c < end {
                    mask.set(i);
                }
            }
        }
        mask
    }

    /// True when the column has no null cells.
    pub fn no_nulls(&self) -> bool {
        self.nulls.none_set()
    }

    /// The posting bitmap of `code` (rows holding that dictionary value).
    pub fn postings_of(&self, code: u32) -> &Bitmap {
        &self.postings[code as usize]
    }

    /// The null-row bitmap.
    pub fn nulls(&self) -> &Bitmap {
        &self.nulls
    }

    /// Merge `prev` (built over the first `n_old` rows) with the appended
    /// tail of the merged column (`data`/`validity` cover all rows): the
    /// incremental-maintenance path that keeps an endpoint's dictionary
    /// warm across appends. Produces *exactly* what a cold
    /// [`DictionaryIndex::build`] over the full column would — same
    /// sorted dictionary, same codes, same posting words — because the
    /// dictionaries merge sorted and posting bitmaps extend
    /// word-for-word; the differential tests pin this byte-identity.
    fn append(prev: &DictionaryIndex, data: &[String], validity: &Bitmap) -> DictionaryIndex {
        let n_old = prev.codes.len();
        let n = data.len();
        // Distinct values arriving in the tail that the dictionary has
        // not seen. BTreeMap iteration keeps them sorted for the merge.
        let mut fresh: BTreeMap<&str, u32> = BTreeMap::new();
        for (i, s) in data.iter().enumerate().skip(n_old) {
            if validity.get(i) && prev.code_of(s).is_none() {
                fresh.entry(s.as_str()).or_insert(0);
            }
        }
        // Sorted two-way merge of the old dictionary and the fresh
        // values: assigns every old code its new position in one pass.
        let mut dict: Vec<String> = Vec::with_capacity(prev.dict.len() + fresh.len());
        let mut old_to_new: Vec<u32> = Vec::with_capacity(prev.dict.len());
        {
            let mut old_iter = prev.dict.iter().peekable();
            let mut new_iter = fresh.keys().peekable();
            loop {
                match (old_iter.peek(), new_iter.peek()) {
                    (Some(o), Some(f)) if o.as_str() <= **f => {
                        old_to_new.push(dict.len() as u32);
                        dict.push(old_iter.next().unwrap().clone());
                    }
                    (_, Some(_)) => dict.push(new_iter.next().unwrap().to_string()),
                    (Some(_), None) => {
                        old_to_new.push(dict.len() as u32);
                        dict.push(old_iter.next().unwrap().clone());
                    }
                    (None, None) => break,
                }
            }
        }
        // Old codes remap through the merge; postings move to their new
        // slot extended word-for-word to the new row count.
        let identity = old_to_new.iter().enumerate().all(|(i, &c)| c as usize == i);
        let mut codes: Vec<u32> = Vec::with_capacity(n);
        if identity {
            codes.extend_from_slice(&prev.codes);
        } else {
            codes.extend(prev.codes.iter().map(|&c| {
                if c == NULL_CODE {
                    NULL_CODE
                } else {
                    old_to_new[c as usize]
                }
            }));
        }
        // Each new slot is filled exactly once: carried postings extend
        // word-for-word via `resized`, fresh slots start cleared. (Filling
        // directly avoids allocating-and-zeroing throwaway bitmaps for the
        // carried slots — at high cardinality that zeroing dominates.)
        let mut new_to_old: Vec<Option<usize>> = vec![None; dict.len()];
        for (old_code, &new_code) in old_to_new.iter().enumerate() {
            new_to_old[new_code as usize] = Some(old_code);
        }
        let mut postings: Vec<Bitmap> = new_to_old
            .iter()
            .map(|slot| match slot {
                Some(old_code) => prev.postings[*old_code].resized(n),
                None => Bitmap::new_cleared(n),
            })
            .collect();
        let mut nulls = prev.nulls.resized(n);
        // Encode the appended rows.
        for (i, s) in data.iter().enumerate().skip(n_old) {
            if validity.get(i) {
                let code = dict
                    .binary_search_by(|d| d.as_str().cmp(s.as_str()))
                    .expect("merged dictionary covers every tail value")
                    as u32;
                codes.push(code);
                postings[code as usize].set(i);
            } else {
                codes.push(NULL_CODE);
                nulls.set(i);
            }
        }
        DictionaryIndex {
            dict,
            codes,
            postings,
            nulls,
        }
    }
}

/// Min–max zone map over a numeric or date column: per fixed-size zone,
/// the smallest and largest non-null value (`None` for all-null zones).
#[derive(Debug, Clone)]
pub struct ZoneIndex {
    zone_rows: usize,
    zones: Vec<Option<(Value, Value)>>,
}

impl ZoneIndex {
    fn build(col: &Column, zone_rows: usize) -> ZoneIndex {
        let n = col.len();
        let mut zones = Vec::with_capacity(n.div_ceil(zone_rows.max(1)));
        let mut start = 0;
        while start < n {
            let end = (start + zone_rows).min(n);
            let mut bounds: Option<(Value, Value)> = None;
            for i in start..end {
                let v = col.value(i);
                if v.is_null() {
                    continue;
                }
                bounds = Some(match bounds.take() {
                    None => (v.clone(), v),
                    Some((lo, hi)) => {
                        let lo = if v < lo { v.clone() } else { lo };
                        let hi = if v > hi { v } else { hi };
                        (lo, hi)
                    }
                });
            }
            zones.push(bounds);
            start = end;
        }
        ZoneIndex { zone_rows, zones }
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Per-zone min–max bounds (`None` for all-null zones).
    pub fn zones(&self) -> &[Option<(Value, Value)>] {
        &self.zones
    }

    /// Merge `prev` (built over the first `n_old` rows of `col`) with the
    /// appended tail: complete zones are immutable and carry over
    /// verbatim; only the old partial tail zone (whose bounds may widen)
    /// and the zones the new rows open are rescanned. Byte-identical to a
    /// cold [`ZoneIndex::build`] over the full column because zone
    /// boundaries depend only on row position.
    fn append(prev: &ZoneIndex, col: &Column, n_old: usize) -> ZoneIndex {
        let zone_rows = prev.zone_rows.max(1);
        let n = col.len();
        let complete = n_old / zone_rows;
        let mut zones: Vec<Option<(Value, Value)>> =
            prev.zones.iter().take(complete).cloned().collect();
        let mut start = complete * zone_rows;
        while start < n {
            let end = (start + zone_rows).min(n);
            let mut bounds: Option<(Value, Value)> = None;
            for i in start..end {
                let v = col.value(i);
                if v.is_null() {
                    continue;
                }
                bounds = Some(match bounds.take() {
                    None => (v.clone(), v),
                    Some((lo, hi)) => {
                        let lo = if v < lo { v.clone() } else { lo };
                        let hi = if v > hi { v } else { hi };
                        (lo, hi)
                    }
                });
            }
            zones.push(bounds);
            start = end;
        }
        ZoneIndex {
            zone_rows: prev.zone_rows,
            zones,
        }
    }

    /// Rows of `col` satisfying the inclusive range predicate, skipping
    /// zones whose bounds cannot intersect `[lo, hi]`. Per-row checks in
    /// candidate zones use exactly the scan predicate, so results match
    /// [`crate::ops::filter::filter_by_range`] bit for bit.
    pub fn rows_for_range(&self, col: &Column, lo: &Value, hi: &Value) -> Bitmap {
        let n = col.len();
        let mut mask = Bitmap::new_cleared(n);
        for (z, bounds) in self.zones.iter().enumerate() {
            let Some((zmin, zmax)) = bounds else { continue };
            if zmax < lo || zmin > hi {
                continue;
            }
            let start = z * self.zone_rows;
            let end = (start + self.zone_rows).min(n);
            for i in start..end {
                let v = col.value(i);
                if !v.is_null() && v >= *lo && v <= *hi {
                    mask.set(i);
                }
            }
        }
        mask
    }

    /// Rows of `col` whose cell is a member of `allowed`, pruning zones
    /// outside `[min(allowed), max(allowed)]`. Declines (`None`) when the
    /// allowed set contains `Null`: null rows match null set members on the
    /// scan path but are invisible to zone bounds.
    pub fn rows_for_values(&self, col: &Column, allowed: &[Value]) -> Option<Bitmap> {
        if allowed.iter().any(Value::is_null) {
            return None;
        }
        let lo = allowed.iter().min()?;
        let hi = allowed.iter().max()?;
        let set: HashSet<&Value> = allowed.iter().collect();
        let n = col.len();
        let mut mask = Bitmap::new_cleared(n);
        for (z, bounds) in self.zones.iter().enumerate() {
            let Some((zmin, zmax)) = bounds else { continue };
            if zmax < lo || zmin > hi {
                continue;
            }
            let start = z * self.zone_rows;
            let end = (start + self.zone_rows).min(n);
            for i in start..end {
                if set.contains(&col.value(i)) {
                    mask.set(i);
                }
            }
        }
        Some(mask)
    }
}

/// A per-column acceleration index.
#[derive(Debug, Clone)]
pub enum ColumnIndex {
    /// Dictionary + postings for `Utf8` columns.
    Dictionary(DictionaryIndex),
    /// Min–max zones for `Int64`/`Float64`/`Date` columns.
    Zones(ZoneIndex),
}

impl ColumnIndex {
    /// Build the index kind appropriate for the column type. `Bool` and
    /// all-null columns gain nothing from indexing and return `None`.
    pub fn build(col: &Column) -> Option<ColumnIndex> {
        match col {
            Column::Utf8 { data, validity } => Some(ColumnIndex::Dictionary(
                DictionaryIndex::build(data, validity),
            )),
            Column::Int64 { .. } | Column::Float64 { .. } | Column::Date { .. } => {
                Some(ColumnIndex::Zones(ZoneIndex::build(col, ZONE_ROWS)))
            }
            Column::Bool { .. } | Column::Null { .. } => None,
        }
    }
}

/// A table plus lazily built per-column indexes, with accelerated
/// filter/groupby/sort kernels that decline (`None`) whenever the index
/// does not cover the requested shape.
///
/// Index builds happen at most once per column (guarded by [`OnceLock`])
/// the first time a kernel needs that column; an optional build hook
/// reports each build's duration in microseconds so callers can surface
/// build counts/latency in their own telemetry without this crate growing
/// a telemetry dependency.
pub struct IndexedTable {
    table: Table,
    slots: Vec<OnceLock<Option<Arc<ColumnIndex>>>>,
    builds: AtomicU64,
    build_us: AtomicU64,
    /// Indexes carried warm across [`IndexedTable::append`] merges (vs
    /// `builds`, which counts cold constructions).
    merges: AtomicU64,
    merge_us: AtomicU64,
    #[allow(clippy::type_complexity)]
    build_hook: Option<Arc<dyn Fn(u64) + Send + Sync>>,
}

impl std::fmt::Debug for IndexedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexedTable")
            .field("rows", &self.table.num_rows())
            .field("columns", &self.table.num_columns())
            .field("builds", &self.builds.load(AtomicOrdering::Relaxed))
            .finish()
    }
}

impl IndexedTable {
    /// Wrap a table. No indexes are built until a kernel first needs one.
    pub fn new(table: Table) -> IndexedTable {
        IndexedTable::with_hook(table, None)
    }

    /// Wrap a table with a build hook invoked with each index build's
    /// duration in microseconds.
    pub fn with_build_hook(table: Table, hook: Arc<dyn Fn(u64) + Send + Sync>) -> IndexedTable {
        IndexedTable::with_hook(table, Some(hook))
    }

    fn with_hook(table: Table, build_hook: Option<Arc<dyn Fn(u64) + Send + Sync>>) -> IndexedTable {
        let slots = (0..table.num_columns()).map(|_| OnceLock::new()).collect();
        IndexedTable {
            table,
            slots,
            builds: AtomicU64::new(0),
            build_us: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            merge_us: AtomicU64::new(0),
            build_hook,
        }
    }

    /// Append `delta`'s rows, carrying every already built column index
    /// forward by *incremental merge* instead of dropping it: dictionary
    /// indexes merge sorted dictionaries and extend posting bitmaps
    /// word-for-word, zone maps keep complete zones verbatim and rescan
    /// only the partial tail — so indexes are warm the moment the append
    /// lands, at a cost proportional to the delta (plus one O(old/64)
    /// bitmap word copy), not the full table. Merged indexes are
    /// byte-identical to a cold rebuild over the concatenated table
    /// (pinned by the differential tests). Columns whose unified type
    /// changed in the concat (e.g. Int64 widening to Float64) and
    /// never-built slots stay lazy.
    pub fn append(&self, delta: &Table) -> crate::error::Result<IndexedTable> {
        let merged = self.table.concat(delta)?;
        self.append_merged(merged)
    }

    /// [`IndexedTable::append`] for callers that already hold the
    /// concatenated table — e.g. a copy-on-write store whose append
    /// produced `merged = old.concat(delta)` before index maintenance
    /// runs. Skipping the second concat makes the merge cost proportional
    /// to the delta (plus the O(old/64) posting-word copy), not the full
    /// table. The caller guarantees `merged`'s first `self.table().num_rows()`
    /// rows are exactly this table's rows; only the row count (and, per
    /// column, the unified type) is checked here.
    pub fn append_merged(&self, merged: Table) -> crate::error::Result<IndexedTable> {
        let n_old = self.table.num_rows();
        if merged.num_rows() < n_old {
            return Err(crate::error::TabularError::LengthMismatch {
                left: n_old,
                right: merged.num_rows(),
                context: "append_merged: merged table shorter than the indexed base".to_string(),
            });
        }
        let out = IndexedTable::with_hook(merged, self.build_hook.clone());
        for i in 0..self.slots.len().min(out.slots.len()) {
            let Some(built) = self.slots[i].get() else {
                continue; // never built: stays lazy
            };
            let old_type = self.table.column_at(i).data_type();
            let new_col: &Column = out.table.column_at(i).as_ref();
            if new_col.data_type() != old_type {
                continue; // concat widened the type: cold rebuild applies
            }
            let started = Instant::now();
            let carried: Option<Arc<ColumnIndex>> = match built.as_ref().map(Arc::as_ref) {
                None => None, // unindexable type stays unindexable
                Some(ColumnIndex::Dictionary(d)) => {
                    let Column::Utf8 { data, validity } = new_col else {
                        continue;
                    };
                    Some(Arc::new(ColumnIndex::Dictionary(DictionaryIndex::append(
                        d, data, validity,
                    ))))
                }
                Some(ColumnIndex::Zones(z)) => Some(Arc::new(ColumnIndex::Zones(
                    ZoneIndex::append(z, new_col, n_old),
                ))),
            };
            if carried.is_some() {
                let us = started.elapsed().as_micros() as u64;
                out.merges.fetch_add(1, AtomicOrdering::Relaxed);
                out.merge_us.fetch_add(us, AtomicOrdering::Relaxed);
            }
            let _ = out.slots[i].set(carried);
        }
        Ok(out)
    }

    /// `(index merges, total merge time in µs)` carried into this table
    /// by [`IndexedTable::append`].
    pub fn merge_stats(&self) -> (u64, u64) {
        (
            self.merges.load(AtomicOrdering::Relaxed),
            self.merge_us.load(AtomicOrdering::Relaxed),
        )
    }

    /// The wrapped table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// `(index builds, total build time in µs)` so far.
    pub fn build_stats(&self) -> (u64, u64) {
        (
            self.builds.load(AtomicOrdering::Relaxed),
            self.build_us.load(AtomicOrdering::Relaxed),
        )
    }

    /// The index for `column`, building it on first use. `None` when the
    /// column is missing or its type is not indexable.
    pub fn index(&self, column: &str) -> Option<Arc<ColumnIndex>> {
        let i = self.table.schema().index_of(column).ok()?;
        self.slots[i]
            .get_or_init(|| {
                let started = Instant::now();
                ColumnIndex::build(self.table.column_at(i)).map(|built| {
                    let us = started.elapsed().as_micros() as u64;
                    self.builds.fetch_add(1, AtomicOrdering::Relaxed);
                    self.build_us.fetch_add(us, AtomicOrdering::Relaxed);
                    if let Some(hook) = &self.build_hook {
                        hook(us);
                    }
                    Arc::new(built)
                })
            })
            .clone()
    }

    /// Accelerated [`crate::ops::filter_by_values`]: resolve each
    /// constraint to a row bitmap via the column's index and AND them.
    /// Declines when any constrained column lacks an index (including
    /// missing columns, so the scan path reports the error).
    pub fn filter_by_values(&self, spec: &FilterByValues) -> Option<Table> {
        let n = self.table.num_rows();
        let mut mask = Bitmap::new_set(n);
        for (column, allowed) in &spec.constraints {
            if allowed.is_empty() {
                continue; // empty selection = no constraint (scan parity)
            }
            let index = self.index(column)?;
            let m = match index.as_ref() {
                ColumnIndex::Dictionary(d) => d.rows_for_values(allowed),
                ColumnIndex::Zones(z) => {
                    z.rows_for_values(self.table.column(column).ok()?, allowed)?
                }
            };
            mask = mask.and(&m);
        }
        Some(self.table.filter(&mask))
    }

    /// Accelerated [`crate::ops::filter::filter_by_range`].
    pub fn filter_by_range(&self, range: &RangeFilter) -> Option<Table> {
        let index = self.index(&range.column)?;
        let mask = match index.as_ref() {
            ColumnIndex::Dictionary(d) => d.rows_for_range(&range.lo, &range.hi),
            ColumnIndex::Zones(z) => {
                z.rows_for_range(self.table.column(&range.column).ok()?, &range.lo, &range.hi)
            }
        };
        Some(self.table.filter(&mask))
    }

    /// Accelerated [`crate::ops::groupby()`] over dictionary codes: dense
    /// code-indexed accumulators instead of hashing keys. Covers exactly
    /// the shapes the scan fast path covers — one null-free `Utf8` key and
    /// `sum`/`count`/`count_all` aggregates over null-free `Int64` columns
    /// — and produces bit-identical output (first-seen group order, same
    /// schema, same optional order-by-aggregate sort).
    pub fn groupby(&self, cfg: &GroupBy) -> Option<Table> {
        if cfg.keys.len() != 1 {
            return None;
        }
        let index = self.index(&cfg.keys[0])?;
        let ColumnIndex::Dictionary(d) = index.as_ref() else {
            return None;
        };
        if !d.no_nulls() {
            return None; // null keys: the generic scan path groups them
        }
        let aggs = cfg.effective_aggregates();
        enum FastAgg<'a> {
            Sum(&'a [i64]),
            Count,
            CountAll,
        }
        let mut fast_aggs: Vec<FastAgg<'_>> = Vec::with_capacity(aggs.len());
        for a in &aggs {
            match a.operator {
                AggKind::CountAll => fast_aggs.push(FastAgg::CountAll),
                AggKind::Sum | AggKind::Count => {
                    let col = self.table.column(&a.apply_on).ok()?;
                    let Column::Int64 { data, validity } = col.as_ref() else {
                        return None;
                    };
                    if validity.count_ones() != data.len() {
                        return None;
                    }
                    fast_aggs.push(match a.operator {
                        AggKind::Sum => FastAgg::Sum(data),
                        _ => FastAgg::Count,
                    });
                }
                _ => return None,
            }
        }

        // Dense accumulation: code -> group id (first-seen order), one flat
        // accumulator lane per aggregate. No hashing, no Value allocation.
        let mut gid_of_code: Vec<usize> = vec![usize::MAX; d.cardinality()];
        let mut group_codes: Vec<u32> = Vec::new();
        let mut acc: Vec<Vec<i64>> = vec![Vec::new(); fast_aggs.len()];
        for (i, &code) in d.codes.iter().enumerate() {
            let c = code as usize;
            let gid = if gid_of_code[c] == usize::MAX {
                let g = group_codes.len();
                gid_of_code[c] = g;
                group_codes.push(code);
                for a in acc.iter_mut() {
                    a.push(0);
                }
                g
            } else {
                gid_of_code[c]
            };
            for (ai, fa) in fast_aggs.iter().enumerate() {
                acc[ai][gid] += match fa {
                    FastAgg::Sum(data) => data[i],
                    FastAgg::Count | FastAgg::CountAll => 1,
                };
            }
        }

        let mut order: Vec<usize> = (0..group_codes.len()).collect();
        if cfg.orderby_aggregates && !acc.is_empty() {
            order.sort_by(|&a, &b| acc[0][b].cmp(&acc[0][a]));
        }

        let key_out = Column::utf8(
            order
                .iter()
                .map(|&g| d.dict[group_codes[g] as usize].clone()),
        );
        let mut columns = vec![key_out];
        for a in &acc {
            columns.push(Column::int(order.iter().map(|&g| a[g])));
        }
        let mut fields = vec![self.table.schema().field(&cfg.keys[0]).ok()?.clone()];
        for a in &aggs {
            fields.push(Field::new(&a.out_field, crate::datatype::DataType::Int64));
        }
        Table::new(Schema::new(fields).ok()?, columns).ok()
    }

    /// Accelerated [`crate::ops::sort()`] on a single dictionary-indexed key:
    /// a counting sort over code rank. Ascending puts nulls first, then
    /// codes ascending; descending reverses codes and puts nulls last —
    /// exactly the comparator order of the scan sort, and stable because
    /// postings yield rows in ascending input order.
    pub fn sort(&self, keys: &[SortKey]) -> Option<Table> {
        if keys.len() != 1 {
            return None;
        }
        let index = self.index(&keys[0].column)?;
        let ColumnIndex::Dictionary(d) = index.as_ref() else {
            return None;
        };
        let mut indices = Vec::with_capacity(self.table.num_rows());
        match keys[0].order {
            SortOrder::Asc => {
                indices.extend(d.nulls.iter_ones());
                for p in &d.postings {
                    indices.extend(p.iter_ones());
                }
            }
            SortOrder::Desc => {
                for p in d.postings.iter().rev() {
                    indices.extend(p.iter_ones());
                }
                indices.extend(d.nulls.iter_ones());
            }
        }
        Some(self.table.take(&indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::groupby::AggregateSpec;
    use crate::ops::{filter_by_values, groupby, sort};
    use crate::row;
    use crate::schema::Schema;

    fn indexed(t: &Table) -> IndexedTable {
        IndexedTable::new(t.clone())
    }

    fn sample() -> Table {
        let mut rows = Vec::new();
        for i in 0..200i64 {
            let team = format!("t{:02}", i % 17);
            if i % 23 == 0 {
                rows.push(row![Value::Null, i, (i * 3) % 50]);
            } else {
                rows.push(row![team, i, (i * 3) % 50]);
            }
        }
        Table::from_rows(&["team", "n", "m"], &rows).unwrap()
    }

    #[test]
    fn dictionary_assigns_sorted_codes_and_postings() {
        let t = Table::from_rows(
            &["k"],
            &[row!["b"], row!["a"], row![Value::Null], row!["b"]],
        )
        .unwrap();
        let ix = indexed(&t);
        let idx = ix.index("k").expect("utf8 indexable");
        let ColumnIndex::Dictionary(d) = idx.as_ref() else {
            panic!("expected dictionary");
        };
        assert_eq!(d.dict(), &["a".to_string(), "b".to_string()]);
        assert_eq!(d.codes(), &[1, 0, NULL_CODE, 1]);
        assert_eq!(d.code_of("a"), Some(0));
        assert_eq!(d.code_of("zz"), None);
        assert_eq!(d.cardinality(), 2);
        assert!(!d.no_nulls());
        // Build is cached: the second lookup does not rebuild.
        let _ = ix.index("k");
        assert_eq!(ix.build_stats().0, 1);
    }

    #[test]
    fn filter_by_values_matches_scan_including_nulls() {
        let t = sample();
        let ix = indexed(&t);
        let specs = [
            FilterByValues::single("team", vec!["t03".into(), "t11".into()]),
            FilterByValues::single("team", vec![Value::Null, "t00".into()]),
            FilterByValues::single("team", vec!["absent".into()]),
            FilterByValues::single("team", vec![]),
            FilterByValues::single("team", vec![Value::Int(3)]),
            FilterByValues::single("team", vec!["t05".into()]).and("n", vec![Value::Int(5)]),
        ];
        for spec in &specs {
            let scan = filter_by_values(&t, spec).unwrap();
            let fast = ix.filter_by_values(spec).expect("covered");
            assert_eq!(fast, scan, "{spec:?}");
        }
    }

    #[test]
    fn filter_by_values_declines_missing_column_and_null_on_zones() {
        let ix = indexed(&sample());
        let missing = FilterByValues::single("nope", vec!["x".into()]);
        assert!(ix.filter_by_values(&missing).is_none());
        // A Null in the allowed set over a zone-indexed column declines.
        let t = Table::from_rows(&["n"], &[row![1i64], row![Value::Null]]).unwrap();
        let ix = indexed(&t);
        let spec = FilterByValues::single("n", vec![Value::Null, Value::Int(1)]);
        assert!(ix.filter_by_values(&spec).is_none());
    }

    #[test]
    fn range_filter_matches_scan_on_strings_and_numbers() {
        let t = sample();
        let ix = indexed(&t);
        let cases = [
            FilterByValues::range("team", "t03".into(), "t09".into()),
            FilterByValues::range("team", "t05".into(), "t05".into()),
            FilterByValues::range("team", "zz".into(), "aa".into()),
            FilterByValues::range("team", Value::Int(0), Value::Int(10)),
            FilterByValues::range("n", Value::Int(40), Value::Int(90)),
            FilterByValues::range("n", Value::Int(500), Value::Int(900)),
            FilterByValues::range("n", Value::Float(9.5), Value::Int(12)),
        ];
        for r in &cases {
            let scan = crate::ops::filter::filter_by_range(&t, r).unwrap();
            let fast = ix.filter_by_range(r).expect("covered");
            assert_eq!(fast, scan, "{r:?}");
        }
    }

    #[test]
    fn zone_index_skips_non_overlapping_zones() {
        // Two zones' worth of rows with disjoint value bands: the pruned
        // result must still match the scan exactly.
        let n = ZONE_ROWS * 2 + 17;
        let t = Table::new(
            Schema::of(&[("v", crate::datatype::DataType::Int64)]),
            vec![Column::int((0..n as i64).map(|i| i * 10))],
        )
        .unwrap();
        let ix = indexed(&t);
        let idx = ix.index("v").unwrap();
        let ColumnIndex::Zones(z) = idx.as_ref() else {
            panic!("expected zones");
        };
        assert_eq!(z.zone_count(), 3);
        let r = FilterByValues::range("v", Value::Int(50), Value::Int(120));
        let scan = crate::ops::filter::filter_by_range(&t, &r).unwrap();
        assert_eq!(ix.filter_by_range(&r).unwrap(), scan);
    }

    #[test]
    fn groupby_matches_scan_bit_for_bit() {
        let rows: Vec<crate::row::Row> = (0..500)
            .map(|i| row![format!("k{}", i % 37), (i % 11) as i64, (i % 7) as i64])
            .collect();
        let t = Table::from_rows(&["key", "a", "b"], &rows).unwrap();
        let ix = indexed(&t);
        for orderby in [false, true] {
            let mut cfg = GroupBy::with_aggregates(
                &["key"],
                vec![
                    AggregateSpec::new(AggKind::Sum, "a", "sum_a"),
                    AggregateSpec::new(AggKind::Count, "b", "n_b"),
                    AggregateSpec::new(AggKind::CountAll, "", "n"),
                ],
            );
            cfg.orderby_aggregates = orderby;
            let scan = groupby(&t, &cfg).unwrap();
            let fast = ix.groupby(&cfg).expect("covered");
            assert_eq!(fast, scan, "orderby={orderby}");
            assert!(fast.schema().same_shape(scan.schema()));
        }
    }

    #[test]
    fn groupby_declines_uncovered_shapes() {
        let t = sample(); // team has nulls
        let ix = indexed(&t);
        assert!(ix.groupby(&GroupBy::counting(&["team"])).is_none());
        // Non-utf8 key.
        assert!(ix.groupby(&GroupBy::counting(&["n"])).is_none());
        // Multi-key.
        assert!(ix.groupby(&GroupBy::counting(&["team", "n"])).is_none());
        // Unsupported aggregate.
        let t = Table::from_rows(&["k", "v"], &[row!["a", 1.5]]).unwrap();
        let ix = indexed(&t);
        let cfg =
            GroupBy::with_aggregates(&["k"], vec![AggregateSpec::new(AggKind::Avg, "v", "m")]);
        assert!(ix.groupby(&cfg).is_none());
    }

    #[test]
    fn sort_matches_scan_both_directions_with_nulls() {
        let t = sample();
        let ix = indexed(&t);
        for key in [SortKey::asc("team"), SortKey::desc("team")] {
            let scan = sort(&t, std::slice::from_ref(&key)).unwrap();
            let fast = ix.sort(std::slice::from_ref(&key)).expect("covered");
            assert_eq!(fast, scan, "{key:?}");
        }
        // Multi-key and numeric keys decline.
        assert!(ix
            .sort(&[SortKey::asc("team"), SortKey::asc("n")])
            .is_none());
        assert!(ix.sort(&[SortKey::asc("n")]).is_none());
    }

    #[test]
    fn empty_table_and_all_null_column_behave() {
        let t = Table::from_rows(&["k", "v"], &[]).unwrap();
        let ix = indexed(&t);
        // Empty tables infer Null columns, which are not indexable.
        assert!(ix.index("k").is_none());
        let t = Table::from_rows(
            &["k", "v"],
            &[row![Value::Null, 1i64], row![Value::Null, 2i64]],
        )
        .unwrap();
        let ix = indexed(&t);
        assert!(ix.index("k").is_none(), "all-null column is not indexable");
        let idx = ix.index("v");
        assert!(idx.is_some(), "int column gets zones");
    }

    /// The strict representation-identity check the merge path promises:
    /// a merged index must be indistinguishable from a cold rebuild down
    /// to its Debug rendering (dictionary order, code assignment,
    /// posting words, zone bounds).
    fn assert_index_identical(merged: &IndexedTable, cold: &IndexedTable, column: &str) {
        let m = merged.index(column);
        let c = cold.index(column);
        match (&m, &c) {
            (Some(m), Some(c)) => {
                assert_eq!(format!("{m:?}"), format!("{c:?}"), "column {column}")
            }
            (None, None) => {}
            other => panic!("column {column}: {other:?}"),
        }
    }

    #[test]
    fn append_merges_dictionary_byte_identically_to_cold_rebuild() {
        let base = sample();
        let ix = indexed(&base);
        // Build the indexes so the merge path has something to carry.
        let _ = ix.index("team");
        let _ = ix.index("n");
        // A delta with a mix of known values, fresh values sorting both
        // before and after the existing dictionary, and a null.
        let mut rows = Vec::new();
        for i in 0..57i64 {
            match i % 4 {
                0 => rows.push(row!["aaa-new", 1000 + i, i]),
                1 => rows.push(row![format!("t{:02}", i % 17), 1000 + i, i]),
                2 => rows.push(row!["zzz-new", 1000 + i, i]),
                _ => rows.push(row![Value::Null, 1000 + i, i]),
            }
        }
        let delta = Table::from_rows(&["team", "n", "m"], &rows).unwrap();
        let merged = ix.append(&delta).unwrap();
        assert_eq!(merged.table().num_rows(), 257);
        // Carried warm: no cold builds on the merged wrapper.
        assert_eq!(merged.merge_stats().0, 2);
        let cold = indexed(&merged.table().clone());
        for col in ["team", "n"] {
            assert_index_identical(&merged, &cold, col);
        }
        assert_eq!(merged.build_stats().0, 0, "no cold rebuilds after merge");
        // The never-built column stays lazy and still works.
        assert_index_identical(&merged, &cold, "m");
    }

    #[test]
    fn append_merged_reuses_precomputed_concat_identically() {
        let base = sample();
        let ix = indexed(&base);
        let _ = ix.index("team");
        let _ = ix.index("n");
        let rows: Vec<crate::row::Row> = (0..41i64)
            .map(|i| row![format!("m{:02}", i % 9), 2000 + i, i])
            .collect();
        let delta = Table::from_rows(&["team", "n", "m"], &rows).unwrap();
        // The caller already paid the concat (copy-on-write append):
        // append_merged must not redo it and must carry indexes warm.
        let full = base.concat(&delta).unwrap();
        let merged = ix.append_merged(full.clone()).unwrap();
        assert_eq!(merged.table().num_rows(), 241);
        assert_eq!(merged.merge_stats().0, 2);
        assert_eq!(merged.build_stats().0, 0);
        let cold = indexed(&full);
        for col in ["team", "n", "m"] {
            assert_index_identical(&merged, &cold, col);
        }
        // A "merged" table shorter than the indexed base is rejected.
        assert!(ix.append_merged(delta).is_err());
    }

    #[test]
    fn append_spans_zone_boundaries_identically() {
        let n = ZONE_ROWS + ZONE_ROWS / 2; // ends mid-zone
        let base = Table::new(
            Schema::of(&[("v", crate::datatype::DataType::Int64)]),
            vec![Column::int((0..n as i64).map(|i| (i * 7) % 1000))],
        )
        .unwrap();
        let ix = indexed(&base);
        let _ = ix.index("v");
        // Delta crosses the partial zone, completes it, and opens more.
        let delta = Table::new(
            Schema::of(&[("v", crate::datatype::DataType::Int64)]),
            vec![Column::int((0..(ZONE_ROWS * 2) as i64).map(|i| -i))],
        )
        .unwrap();
        let merged = ix.append(&delta).unwrap();
        let cold = indexed(&merged.table().clone());
        assert_index_identical(&merged, &cold, "v");
        // And the merged index answers queries like the scan path.
        let r = FilterByValues::range("v", Value::Int(-10), Value::Int(5));
        let scan = crate::ops::filter::filter_by_range(merged.table(), &r).unwrap();
        assert_eq!(merged.filter_by_range(&r).unwrap(), scan);
    }

    #[test]
    fn append_leaves_type_widened_columns_to_cold_rebuild() {
        let base = Table::from_rows(&["v"], &[row![1i64], row![2i64]]).unwrap();
        let ix = indexed(&base);
        let _ = ix.index("v");
        // Float delta widens Int64 → Float64: the old zone bounds carry
        // Int values, so the merge declines and the column rebuilds cold.
        let delta = Table::from_rows(&["v"], &[row![2.5f64]]).unwrap();
        let merged = ix.append(&delta).unwrap();
        assert_eq!(merged.merge_stats().0, 0);
        let cold = indexed(&merged.table().clone());
        assert_index_identical(&merged, &cold, "v");
    }

    #[test]
    fn repeated_appends_stay_identical_to_cold() {
        let mut ix = indexed(&sample());
        let _ = ix.index("team");
        for round in 0..5i64 {
            let rows: Vec<crate::row::Row> = (0..13)
                .map(|i| row![format!("r{round}-{}", i % 3), round * 100 + i, i])
                .collect();
            let delta = Table::from_rows(&["team", "n", "m"], &rows).unwrap();
            ix = ix.append(&delta).unwrap();
        }
        let cold = indexed(&ix.table().clone());
        assert_index_identical(&ix, &cold, "team");
        assert_eq!(ix.table().num_rows(), 200 + 5 * 13);
    }

    #[test]
    fn build_hook_reports_builds() {
        use std::sync::atomic::AtomicUsize;
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let ix = IndexedTable::with_build_hook(
            sample(),
            Arc::new(move |_us| {
                seen.fetch_add(1, AtomicOrdering::Relaxed);
            }),
        );
        let _ = ix.index("team");
        let _ = ix.index("team");
        let _ = ix.index("n");
        assert_eq!(calls.load(AtomicOrdering::Relaxed), 2);
        assert_eq!(ix.build_stats().0, 2);
    }
}
