//! Row-oriented view types.
//!
//! The engine is columnar, but several boundaries are naturally row-shaped:
//! payload decoding, the naive baseline executor, the server API's JSON-ish
//! responses, and test assertions. [`Row`] is the bridging type.

use crate::value::Value;

/// An owned row of dynamic values, positionally aligned with a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Empty row.
    pub fn new() -> Self {
        Row(Vec::new())
    }

    /// Row from values.
    pub fn from_values(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Cell by position.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Append a cell.
    pub fn push(&mut self, v: Value) {
        self.0.push(v);
    }

    /// Iterate cells.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// Project the row onto the given positions, cloning cells.
    pub fn project(&self, positions: &[usize]) -> Row {
        Row(positions.iter().map(|&i| self.0[i].clone()).collect())
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl IntoIterator for Row {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Build a [`Row`] from heterogenous literals: `row![1i64, "x", 2.5]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_mixed_rows() {
        let r = row![1i64, "x", 2.5, true];
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::Str("x".into()));
        assert_eq!(r[2], Value::Float(2.5));
        assert_eq!(r[3], Value::Bool(true));
    }

    #[test]
    fn project_reorders() {
        let r = row![1i64, 2i64, 3i64];
        let p = r.project(&[2, 0]);
        assert_eq!(p, row![3i64, 1i64]);
    }

    #[test]
    fn rows_are_ord_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(row![1i64, "a"]);
        set.insert(row![1i64, "a"]);
        assert_eq!(set.len(), 1);
        assert!(row![1i64] < row![2i64]);
    }
}
