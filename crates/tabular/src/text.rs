//! Text-processing primitives for the unstructured-data map operators.
//!
//! The IPL pipeline (§3.7.1) extracts player/team mentions from tweet bodies
//! via a user-supplied dictionary mapping surface forms (nicknames,
//! abbreviations) to canonical names, extracts words for the tag cloud, and
//! extracts Indian cities from free-form user locations. These are the
//! building blocks behind the `extract`, `extract_words` and
//! `extract_location` operator types.

use std::collections::HashMap;

/// A dictionary mapping surface forms to canonical names.
///
/// Loaded from the `dict:` parameter of an `extract` map task (the paper's
/// `players.txt` / `teams.csv`). File syntax: one entry per line,
/// `surface_form,canonical_name` (CSV) or `surface_form => canonical_name`;
/// a line with a single token maps the token to itself. `#` starts a
/// comment. Matching is case-insensitive on word boundaries.
#[derive(Debug, Clone, Default)]
pub struct ExtractDict {
    /// lowercase surface form -> canonical name
    entries: HashMap<String, String>,
    /// maximum number of words in any surface form (bounds n-gram scan)
    max_words: usize,
}

impl ExtractDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse dictionary file content.
    pub fn parse(content: &str) -> Self {
        let mut d = ExtractDict::new();
        for line in content.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (surface, canonical) = if let Some((s, c)) = line.split_once("=>") {
                (s.trim(), c.trim())
            } else if let Some((s, c)) = line.split_once(',') {
                (s.trim(), c.trim())
            } else {
                (line, line)
            };
            if !surface.is_empty() {
                d.insert(surface, canonical);
            }
        }
        d
    }

    /// Add one mapping.
    pub fn insert(&mut self, surface: &str, canonical: &str) {
        let words = surface.split_whitespace().count().max(1);
        self.max_words = self.max_words.max(words);
        self.entries
            .insert(surface.to_lowercase(), canonical.to_string());
    }

    /// Number of surface forms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Direct lookup of a lowercase surface form.
    pub fn lookup(&self, surface: &str) -> Option<&str> {
        self.entries
            .get(&surface.to_lowercase())
            .map(|s| s.as_str())
    }

    /// Find the first canonical name whose surface form occurs in `text`
    /// (scanning word n-grams up to the longest surface form, longest match
    /// preferred at each position).
    pub fn extract_first(&self, text: &str) -> Option<&str> {
        self.extract_all(text).into_iter().next()
    }

    /// All canonical names mentioned in `text`, in order of first
    /// occurrence, deduplicated.
    pub fn extract_all(&self, text: &str) -> Vec<&str> {
        let tokens = tokenize(text);
        let mut found: Vec<&str> = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = 0;
            // Longest-match-first over n-grams starting at token i.
            for n in (1..=self.max_words.min(tokens.len() - i)).rev() {
                let gram = tokens[i..i + n].join(" ");
                if let Some(canon) = self.entries.get(&gram) {
                    if !found.contains(&canon.as_str()) {
                        found.push(canon.as_str());
                    }
                    matched = n;
                    break;
                }
            }
            i += matched.max(1);
        }
        found
    }
}

/// Lowercased word tokens: alphanumeric runs (apostrophes and `#`/`@`
/// prefixes are stripped, so `@msdhoni` tokenizes as `msdhoni`).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '\'' {
            if c != '\'' {
                cur.extend(c.to_lowercase());
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Minimal English stopword list used by `extract_words` so tag clouds show
/// content words (the paper's figure 17 word clouds show players and teams,
/// not articles).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "is", "are", "was", "were", "be", "been", "and", "or", "but", "not", "of",
    "in", "on", "at", "to", "for", "with", "by", "from", "as", "it", "its", "this", "that",
    "these", "those", "i", "you", "he", "she", "we", "they", "my", "your", "his", "her", "our",
    "their", "me", "him", "them", "so", "if", "then", "than", "too", "very", "just", "rt", "via",
    "amp", "will", "can", "all", "what", "when", "who", "how", "up", "out", "no", "yes", "do",
    "did", "done", "have", "has", "had", "about", "into", "over", "after", "before",
];

/// Extract content words from text: tokens of at least `min_len` characters
/// that are not stopwords and not pure numbers.
pub fn extract_words(text: &str, min_len: usize) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| {
            t.len() >= min_len
                && !STOPWORDS.contains(&t.as_str())
                && !t.chars().all(|c| c.is_ascii_digit())
        })
        .collect()
}

/// A gazetteer of locations mapping city names to a canonical region
/// (state), used by the `extract_location` operator
/// (`match: city / country: IND / output: state` in figure 21).
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    /// lowercase city -> (state, country)
    cities: HashMap<String, (String, String)>,
}

impl Gazetteer {
    /// Empty gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a city.
    pub fn insert(&mut self, city: &str, state: &str, country: &str) {
        self.cities.insert(
            city.to_lowercase(),
            (state.to_string(), country.to_string()),
        );
    }

    /// Number of registered cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// True when the gazetteer has no entries.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// The default gazetteer of major Indian cities used by the IPL
    /// dashboard reproduction.
    pub fn india_default() -> Self {
        let mut g = Gazetteer::new();
        for (city, state) in [
            ("mumbai", "Maharashtra"),
            ("pune", "Maharashtra"),
            ("nagpur", "Maharashtra"),
            ("delhi", "Delhi"),
            ("new delhi", "Delhi"),
            ("chennai", "Tamil Nadu"),
            ("coimbatore", "Tamil Nadu"),
            ("kolkata", "West Bengal"),
            ("bangalore", "Karnataka"),
            ("bengaluru", "Karnataka"),
            ("mysore", "Karnataka"),
            ("hyderabad", "Telangana"),
            ("jaipur", "Rajasthan"),
            ("ahmedabad", "Gujarat"),
            ("surat", "Gujarat"),
            ("chandigarh", "Punjab"),
            ("mohali", "Punjab"),
            ("amritsar", "Punjab"),
            ("lucknow", "Uttar Pradesh"),
            ("kanpur", "Uttar Pradesh"),
            ("kochi", "Kerala"),
            ("bhopal", "Madhya Pradesh"),
            ("indore", "Madhya Pradesh"),
            ("patna", "Bihar"),
            ("ranchi", "Jharkhand"),
            ("guwahati", "Assam"),
            ("bhubaneswar", "Odisha"),
            ("cuttack", "Odisha"),
            ("visakhapatnam", "Andhra Pradesh"),
            ("vijayawada", "Andhra Pradesh"),
        ] {
            g.insert(city, state, "IND");
        }
        g
    }

    /// Extract the state for the first known city mentioned in a free-form
    /// location string, filtered to `country`.
    pub fn extract_state(&self, location: &str, country: &str) -> Option<&str> {
        let tokens = tokenize(location);
        // Two-word cities first (e.g. "new delhi").
        for w in (1..=2).rev() {
            for window in tokens.windows(w) {
                let candidate = window.join(" ");
                if let Some((state, c)) = self.cities.get(&candidate) {
                    if c == country {
                        return Some(state.as_str());
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_strips_punctuation_and_lowers() {
        assert_eq!(
            tokenize("Go CSK!! @msdhoni's SIX, #IPL2013"),
            vec!["go", "csk", "msdhonis", "six", "ipl2013"]
        );
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ...").is_empty());
    }

    #[test]
    fn dict_parse_formats() {
        let d = ExtractDict::parse(
            "# player dictionary\nmsd => MS Dhoni\nmahi,MS Dhoni\nthala => MS Dhoni\nkohli\n",
        );
        assert_eq!(d.len(), 4);
        assert_eq!(d.lookup("MSD"), Some("MS Dhoni"));
        assert_eq!(d.lookup("kohli"), Some("kohli"));
        assert_eq!(d.lookup("missing"), None);
    }

    #[test]
    fn extract_prefers_longest_match() {
        let mut d = ExtractDict::new();
        d.insert("dhoni", "MS Dhoni");
        d.insert("ms dhoni", "MS Dhoni");
        d.insert("rohit", "Rohit Sharma");
        let found = d.extract_all("What a finish by MS Dhoni! rohit watched.");
        assert_eq!(found, vec!["MS Dhoni", "Rohit Sharma"]);
    }

    #[test]
    fn extract_dedups_by_canonical() {
        let mut d = ExtractDict::new();
        d.insert("msd", "MS Dhoni");
        d.insert("dhoni", "MS Dhoni");
        let found = d.extract_all("msd msd dhoni");
        assert_eq!(found, vec!["MS Dhoni"]);
    }

    #[test]
    fn extract_first_none_when_absent() {
        let d = ExtractDict::parse("kohli => Virat Kohli");
        assert_eq!(d.extract_first("no players here"), None);
        assert_eq!(d.extract_first("KOHLI century"), Some("Virat Kohli"));
    }

    #[test]
    fn extract_words_filters_stopwords_and_numbers() {
        let words = extract_words("The CSK won by 23 runs and it was great", 3);
        assert_eq!(words, vec!["csk", "won", "runs", "great"]);
    }

    #[test]
    fn gazetteer_extracts_states() {
        let g = Gazetteer::india_default();
        assert_eq!(g.extract_state("Mumbai, India", "IND"), Some("Maharashtra"));
        assert_eq!(g.extract_state("living in new delhi", "IND"), Some("Delhi"));
        assert_eq!(g.extract_state("London, UK", "IND"), None);
        assert_eq!(g.extract_state("", "IND"), None);
    }

    #[test]
    fn gazetteer_country_filter() {
        let mut g = Gazetteer::new();
        g.insert("springfield", "Illinois", "USA");
        assert_eq!(g.extract_state("springfield", "IND"), None);
        assert_eq!(g.extract_state("springfield", "USA"), Some("Illinois"));
    }
}
