//! Logical data types for columns and values.

use std::fmt;

/// The logical type of a column or scalar value.
///
/// The flow-file language of the paper is schema-light: data sections declare
/// column *names* (§3.2, figure 5) and types are inferred from payloads. The
/// engine therefore keeps the type lattice small and supports widening
/// coercions (`Int64 → Float64`, anything → `Utf8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Absent/unknown type; unifies with everything.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Calendar date stored as days since the Unix epoch.
    Date,
}

impl DataType {
    /// All concrete (non-null) types, useful for property tests.
    pub const ALL: [DataType; 6] = [
        DataType::Null,
        DataType::Bool,
        DataType::Int64,
        DataType::Float64,
        DataType::Utf8,
        DataType::Date,
    ];

    /// True when the type is numeric (`Int64` or `Float64`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// The least upper bound of two types under the widening lattice, or
    /// `None` when the types are incompatible without stringification.
    ///
    /// `Null` unifies with everything; `Int64` widens to `Float64`; all
    /// other mixed pairs unify only at `Utf8` which callers must opt into
    /// via [`DataType::unify_lossy`].
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, t) | (t, Null) => Some(t),
            (Int64, Float64) | (Float64, Int64) => Some(Float64),
            _ => None,
        }
    }

    /// Like [`DataType::unify`] but falls back to `Utf8` for incompatible
    /// pairs — the behaviour payload readers use when a column holds mixed
    /// representations.
    pub fn unify_lossy(self, other: DataType) -> DataType {
        self.unify(other).unwrap_or(DataType::Utf8)
    }

    /// Canonical lowercase name used by diagnostics and the server API.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Null => "null",
            DataType::Bool => "bool",
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Utf8 => "utf8",
            DataType::Date => "date",
        }
    }

    /// Parse a type from its canonical name (used by flow-file `schema:`
    /// hints and the record binary format header).
    pub fn parse(name: &str) -> Option<DataType> {
        Some(match name {
            "null" => DataType::Null,
            "bool" | "boolean" => DataType::Bool,
            "int64" | "int" | "long" => DataType::Int64,
            "float64" | "float" | "double" => DataType::Float64,
            "utf8" | "string" | "chararray" => DataType::Utf8,
            "date" => DataType::Date,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_is_commutative_and_reflexive() {
        for &a in &DataType::ALL {
            assert_eq!(a.unify(a), Some(a));
            for &b in &DataType::ALL {
                assert_eq!(a.unify(b), b.unify(a));
            }
        }
    }

    #[test]
    fn null_unifies_with_everything() {
        for &t in &DataType::ALL {
            assert_eq!(DataType::Null.unify(t), Some(t));
        }
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(
            DataType::Int64.unify(DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(DataType::Utf8.unify(DataType::Int64), None);
        assert_eq!(DataType::Utf8.unify_lossy(DataType::Int64), DataType::Utf8);
    }

    #[test]
    fn name_parse_roundtrip() {
        for &t in &DataType::ALL {
            assert_eq!(DataType::parse(t.name()), Some(t));
        }
        assert_eq!(DataType::parse("chararray"), Some(DataType::Utf8));
        assert_eq!(DataType::parse("bogus"), None);
    }
}
