//! Expression language used by `filter_by` tasks.
//!
//! The paper configures filter tasks with textual expressions such as
//! `filter_expression: rating < 3` (§3.3, figure 7). This module defines the
//! expression AST, a recursive-descent parser for the surface syntax, and
//! both vectorised (column mask) and scalar (row) evaluation.
//!
//! Grammar (precedence low→high):
//!
//! ```text
//! or_expr   := and_expr ( 'or' and_expr )*
//! and_expr  := not_expr ( 'and' not_expr )*
//! not_expr  := 'not' not_expr | cmp_expr
//! cmp_expr  := add_expr ( ('<'|'<='|'>'|'>='|'=='|'='|'!='|'in'|'contains') add_expr )?
//! add_expr  := mul_expr ( ('+'|'-') mul_expr )*
//! mul_expr  := primary ( ('*'|'/'|'%') primary )*
//! primary   := number | string | 'true' | 'false' | 'null' | identifier
//!            | '(' or_expr ')' | '[' literal, ... ']'
//! ```

use crate::bitmap::Bitmap;
use crate::error::{Result, TabularError};
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (also accepted as `=`)
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
        }
    }

    /// Surface syntax for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl ArithOp {
    /// Surface syntax for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Comparison between two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic between two sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Membership test against a literal list: `team in ['CSK', 'MI']`.
    InList(Box<Expr>, Vec<Value>),
    /// Substring test: `body contains 'dhoni'`.
    Contains(Box<Expr>, Box<Expr>),
    /// Null test, produced by `x == null` normalisation.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand: comparison.
    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp(op, Box::new(l), Box::new(r))
    }

    /// Column names referenced anywhere in the tree (sorted, deduplicated) —
    /// the engine uses this for schema checking and projection pushdown.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_columns(&mut set);
        set.into_iter().collect()
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(c) => {
                out.insert(c.clone());
            }
            Expr::Literal(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Contains(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::InList(e, _) => e.collect_columns(out),
        }
    }

    /// Evaluate against a single row context.
    pub fn eval_row(&self, lookup: &dyn Fn(&str) -> Option<Value>) -> Result<Value> {
        match self {
            Expr::Column(c) => {
                lookup(c).ok_or_else(|| TabularError::column_not_found(c, &[] as &[&str]))
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval_row(lookup)?, b.eval_row(lookup)?);
                // SQL-ish semantics: comparisons against null are false
                // (not null-propagating three-valued logic — the flow-file
                // language has no IS NULL surface syntax besides == null).
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Bool(
                        matches!(
                            (op, va.is_null() && vb.is_null()),
                            (CmpOp::Eq, true) | (CmpOp::Ne, false)
                        ) && *op == CmpOp::Eq
                            || (*op == CmpOp::Ne && !(va.is_null() && vb.is_null())),
                    ));
                }
                Ok(Value::Bool(op.apply(compare_coerced(&va, &vb))))
            }
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval_row(lookup)?, b.eval_row(lookup)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                arith(*op, &va, &vb)
            }
            Expr::And(a, b) => Ok(Value::Bool(
                truthy(&a.eval_row(lookup)?) && truthy(&b.eval_row(lookup)?),
            )),
            Expr::Or(a, b) => Ok(Value::Bool(
                truthy(&a.eval_row(lookup)?) || truthy(&b.eval_row(lookup)?),
            )),
            Expr::Not(e) => Ok(Value::Bool(!truthy(&e.eval_row(lookup)?))),
            Expr::InList(e, list) => {
                let v = e.eval_row(lookup)?;
                Ok(Value::Bool(list.iter().any(|l| values_eq_coerced(l, &v))))
            }
            Expr::Contains(a, b) => {
                let (va, vb) = (a.eval_row(lookup)?, b.eval_row(lookup)?);
                match (va.as_str(), vb.as_str()) {
                    (Some(h), Some(n)) => Ok(Value::Bool(h.contains(n))),
                    _ => Ok(Value::Bool(false)),
                }
            }
            Expr::IsNull(e) => Ok(Value::Bool(e.eval_row(lookup)?.is_null())),
        }
    }

    /// Vectorised evaluation producing a selection mask over a table.
    pub fn eval_mask(&self, table: &Table) -> Result<Bitmap> {
        // Validate referenced columns once up front for a clean diagnostic.
        for c in self.referenced_columns() {
            table.schema().index_of(&c)?;
        }
        let n = table.num_rows();
        let mut mask = Bitmap::new_cleared(n);
        for i in 0..n {
            let lookup = |name: &str| -> Option<Value> {
                table
                    .schema()
                    .index_of(name)
                    .ok()
                    .map(|ci| table.column_at(ci).value(i))
            };
            if truthy(&self.eval_row(&lookup)?) {
                mask.set(i);
            }
        }
        Ok(mask)
    }
}

/// "Truthiness" of an expression result: only `Bool(true)`.
fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Compare two values, coercing string↔number when one side is a numeric
/// literal and the other a string column (common with schema-light CSVs).
fn compare_coerced(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a, b) {
        (Value::Str(s), Value::Int(_) | Value::Float(_)) => {
            if let Ok(f) = s.trim().parse::<f64>() {
                return Value::Float(f).cmp(b);
            }
            a.cmp(b)
        }
        (Value::Int(_) | Value::Float(_), Value::Str(s)) => {
            if let Ok(f) = s.trim().parse::<f64>() {
                return a.cmp(&Value::Float(f));
            }
            a.cmp(b)
        }
        _ => a.cmp(b),
    }
}

fn values_eq_coerced(a: &Value, b: &Value) -> bool {
    compare_coerced(a, b) == std::cmp::Ordering::Equal
}

fn arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    let err = || {
        TabularError::InvalidOperation(format!(
            "arithmetic {} on non-numeric values '{a}' and '{b}'",
            op.symbol()
        ))
    };
    // String + string concatenates.
    if op == ArithOp::Add {
        if let (Value::Str(x), Value::Str(y)) = (a, b) {
            return Ok(Value::Str(format!("{x}{y}")));
        }
    }
    let (x, y) = (a.as_float().ok_or_else(err)?, b.as_float().ok_or_else(err)?);
    let int_int = matches!((a, b), (Value::Int(_), Value::Int(_)));
    let r = match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => {
            if y == 0.0 {
                return Ok(Value::Null);
            }
            x / y
        }
        ArithOp::Mod => {
            if y == 0.0 {
                return Ok(Value::Null);
            }
            x % y
        }
    };
    if int_int && r.fract() == 0.0 && op != ArithOp::Div {
        Ok(Value::Int(r as i64))
    } else {
        Ok(Value::Float(r))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => f.write_str(c),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            Expr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(e) => write!(f, "not {e}"),
            Expr::InList(e, list) => {
                write!(f, "{e} in [")?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "'{s}'")?,
                        v => write!(f, "{v}")?,
                    }
                }
                write!(f, "]")
            }
            Expr::Contains(a, b) => write!(f, "{a} contains {b}"),
            Expr::IsNull(e) => write!(f, "{e} == null"),
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

/// Parse a filter expression from its flow-file surface syntax.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = Parser { src, pos: 0 };
    let e = p.parse_or()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(e)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> TabularError {
        TabularError::ExprParse {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    /// Consume a keyword: must be followed by a non-identifier char.
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if rest.len() >= kw.len()
            && rest[..kw.len()].eq_ignore_ascii_case(kw)
            && !rest[kw.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
        {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let left = self.parse_add()?;
        self.skip_ws();
        let op = if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("==") {
            Some(CmpOp::Eq)
        } else if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else if self.eat_kw("in") {
            let list = self.parse_literal_list()?;
            return Ok(Expr::InList(Box::new(left), list));
        } else if self.eat_kw("contains") {
            let right = self.parse_add()?;
            return Ok(Expr::Contains(Box::new(left), Box::new(right)));
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.parse_add()?;
                // Normalise `x == null` / `x != null` to IsNull forms.
                if let Expr::Literal(Value::Null) = right {
                    return Ok(match op {
                        CmpOp::Eq => Expr::IsNull(Box::new(left)),
                        CmpOp::Ne => Expr::Not(Box::new(Expr::IsNull(Box::new(left)))),
                        _ => Expr::Cmp(op, Box::new(left), Box::new(right)),
                    });
                }
                Ok(Expr::Cmp(op, Box::new(left), Box::new(right)))
            }
            None => Ok(left),
        }
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut left = self.parse_mul()?;
        loop {
            self.skip_ws();
            let op = if self.eat("+") {
                ArithOp::Add
            } else if self.rest().starts_with('-')
                && !self.rest()[1..].starts_with(|c: char| c.is_ascii_digit())
            {
                self.pos += 1;
                ArithOp::Sub
            } else if self.rest().starts_with('-')
                && matches!(left, Expr::Column(_) | Expr::Arith(..))
            {
                // `a -1` after a column is subtraction, not a negative literal.
                self.pos += 1;
                ArithOp::Sub
            } else {
                break;
            };
            let right = self.parse_mul()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut left = self.parse_primary()?;
        loop {
            self.skip_ws();
            let op = if self.eat("*") {
                ArithOp::Mul
            } else if self.eat("/") {
                ArithOp::Div
            } else if self.eat("%") {
                ArithOp::Mod
            } else {
                break;
            };
            let right = self.parse_primary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_literal_list(&mut self) -> Result<Vec<Value>> {
        self.skip_ws();
        if !self.eat("[") {
            return Err(self.err("expected '[' after 'in'"));
        }
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("]") {
                break;
            }
            match self.parse_primary()? {
                Expr::Literal(v) => out.push(v),
                Expr::Column(name) => out.push(Value::Str(name)),
                _ => return Err(self.err("expected literal in list")),
            }
            self.skip_ws();
            if self.eat(",") {
                continue;
            }
            if self.eat("]") {
                break;
            }
            return Err(self.err("expected ',' or ']' in list"));
        }
        Ok(out)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        self.skip_ws();
        let rest = self.rest();
        let first = rest
            .chars()
            .next()
            .ok_or_else(|| self.err("unexpected end of expression"))?;

        if first == '(' {
            self.pos += 1;
            let e = self.parse_or()?;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(e);
        }
        if first == '\'' || first == '"' {
            let quote = first;
            let mut s = String::new();
            let mut iter = rest.char_indices().skip(1);
            for (i, c) in &mut iter {
                if c == quote {
                    self.pos += i + 1;
                    return Ok(Expr::Literal(Value::Str(s)));
                }
                s.push(c);
            }
            return Err(self.err("unterminated string literal"));
        }
        if first.is_ascii_digit()
            || (first == '-' && rest[1..].starts_with(|c: char| c.is_ascii_digit()))
            || (first == '.' && rest[1..].starts_with(|c: char| c.is_ascii_digit()))
        {
            let end = rest
                .char_indices()
                .skip(1)
                .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == 'e' || *c == 'E'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let tok = &rest[..end];
            self.pos += end;
            if let Ok(i) = tok.parse::<i64>() {
                return Ok(Expr::Literal(Value::Int(i)));
            }
            return tok
                .parse::<f64>()
                .map(|f| Expr::Literal(Value::Float(f)))
                .map_err(|_| self.err("invalid numeric literal"));
        }
        if first.is_alphabetic() || first == '_' {
            let end = rest
                .char_indices()
                .find(|(_, c)| !(c.is_alphanumeric() || *c == '_' || *c == '.'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let ident = &rest[..end];
            self.pos += end;
            return Ok(match ident {
                "true" => Expr::Literal(Value::Bool(true)),
                "false" => Expr::Literal(Value::Bool(false)),
                "null" => Expr::Literal(Value::Null),
                _ => Expr::Column(ident.to_string()),
            });
        }
        Err(self.err("unexpected character"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::datatype::DataType;
    use crate::row;
    use crate::schema::Schema;

    fn table() -> Table {
        Table::new(
            Schema::of(&[
                ("rating", DataType::Int64),
                ("team", DataType::Utf8),
                ("score", DataType::Float64),
            ]),
            vec![
                Column::int([1, 3, 5, 2]),
                Column::utf8(["CSK", "MI", "CSK", "RCB"]),
                Column::float([0.5, 0.7, 0.1, 0.9]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parses_paper_filter_expression() {
        let e = parse_expr("rating < 3").unwrap();
        assert_eq!(
            e,
            Expr::cmp(CmpOp::Lt, Expr::col("rating"), Expr::lit(3i64))
        );
        let mask = e.eval_mask(&table()).unwrap();
        assert_eq!(mask.ones(), vec![0, 3]);
    }

    #[test]
    fn boolean_combinators() {
        let e = parse_expr("rating < 3 and team == 'CSK'").unwrap();
        assert_eq!(e.eval_mask(&table()).unwrap().ones(), vec![0]);
        let e = parse_expr("rating >= 5 or score > 0.8").unwrap();
        assert_eq!(e.eval_mask(&table()).unwrap().ones(), vec![2, 3]);
        let e = parse_expr("not (team == 'CSK')").unwrap();
        assert_eq!(e.eval_mask(&table()).unwrap().ones(), vec![1, 3]);
    }

    #[test]
    fn in_list_and_contains() {
        let e = parse_expr("team in ['CSK', 'RCB']").unwrap();
        assert_eq!(e.eval_mask(&table()).unwrap().ones(), vec![0, 2, 3]);
        let e = parse_expr("team contains 'C'").unwrap();
        assert_eq!(e.eval_mask(&table()).unwrap().ones(), vec![0, 2, 3]);
    }

    #[test]
    fn arithmetic_and_precedence() {
        let e = parse_expr("rating * 2 + 1 > 5").unwrap();
        // ratings 1,3,5,2 -> 3,7,11,5 -> >5 at rows 1,2
        assert_eq!(e.eval_mask(&table()).unwrap().ones(), vec![1, 2]);
        let e = parse_expr("rating + 2 * 2 == 5").unwrap();
        assert_eq!(e.eval_mask(&table()).unwrap().ones(), vec![0]);
    }

    #[test]
    fn division_by_zero_yields_null_not_panic() {
        let e = parse_expr("rating / 0 == 1").unwrap();
        assert!(e.eval_mask(&table()).unwrap().none_set());
    }

    #[test]
    fn null_comparison_semantics() {
        let t = Table::from_rows(&["x"], &[row![1i64], row![Value::Null]]).unwrap();
        let e = parse_expr("x == null").unwrap();
        assert_eq!(e.eval_mask(&t).unwrap().ones(), vec![1]);
        let e = parse_expr("x != null").unwrap();
        assert_eq!(e.eval_mask(&t).unwrap().ones(), vec![0]);
        let e = parse_expr("x < 5").unwrap();
        assert_eq!(
            e.eval_mask(&t).unwrap().ones(),
            vec![0],
            "null < 5 is false"
        );
    }

    #[test]
    fn string_number_coercion() {
        let t = Table::from_rows(&["v"], &[row!["10"], row!["9"], row!["abc"]]).unwrap();
        let e = parse_expr("v > 9").unwrap();
        // "10" > 9 numerically; "9" is not; "abc" unparseable -> string cmp vs number -> rank order
        let ones = e.eval_mask(&t).unwrap().ones();
        assert!(ones.contains(&0));
        assert!(!ones.contains(&1));
    }

    #[test]
    fn referenced_columns_sorted_unique() {
        let e = parse_expr("b < 1 and a > 2 or b == 3").unwrap();
        assert_eq!(
            e.referenced_columns(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn missing_column_is_an_error() {
        let e = parse_expr("nope == 1").unwrap();
        let err = e.eval_mask(&table()).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("a <").is_err());
        assert!(parse_expr("a == 'unterminated").is_err());
        assert!(parse_expr("a in [1, ").is_err());
        assert!(parse_expr("(a == 1").is_err());
        assert!(parse_expr("a == 1 extra").is_err());
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for src in [
            "rating < 3",
            "(a and b)",
            "x in ['p', 'q']",
            "not y",
            "name contains 'z'",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = e.to_string();
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(e, e2, "roundtrip of '{src}' via '{printed}'");
        }
    }

    #[test]
    fn negative_literals() {
        let e = parse_expr("rating > -1").unwrap();
        assert_eq!(e.eval_mask(&table()).unwrap().count_ones(), 4);
    }
}
