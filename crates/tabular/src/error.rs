//! Error type shared by every tabular operation.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T, E = TabularError> = std::result::Result<T, E>;

/// Errors raised by the columnar engine.
///
/// Every variant carries enough context to be surfaced to a flow-file author
/// without leaking engine internals (the paper's §5.2.2 observation 7 notes
/// that leaking engine errors breaks the abstraction, so messages here speak
/// in terms of columns, schemas and tasks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TabularError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound {
        /// Name of the missing column.
        column: String,
        /// Columns that are available, for the diagnostic.
        available: Vec<String>,
    },
    /// A column already exists where a new one would be created.
    DuplicateColumn(String),
    /// An operation received a column of an unexpected type.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        actual: String,
        /// Context, typically the column or expression involved.
        context: String,
    },
    /// Two tables/columns that must have equal row counts did not.
    LengthMismatch {
        /// First length observed.
        left: usize,
        /// Second length observed.
        right: usize,
        /// Context for the diagnostic.
        context: String,
    },
    /// An expression failed to parse.
    ExprParse {
        /// Human-readable description of the failure.
        message: String,
        /// Byte offset in the source text.
        offset: usize,
    },
    /// A date string did not match the supplied format pattern.
    DateParse {
        /// The input that failed to parse.
        input: String,
        /// The Java-style pattern it was matched against.
        pattern: String,
    },
    /// A date format pattern is itself invalid.
    BadDatePattern(String),
    /// A payload (CSV/JSON/XML/record) failed to decode.
    Format {
        /// Which format decoder raised the error.
        format: &'static str,
        /// Description, usually with a line or offset.
        message: String,
    },
    /// A value failed to convert to the requested type.
    ValueConversion {
        /// The offending value rendered as text.
        value: String,
        /// The destination type.
        target: &'static str,
    },
    /// Catch-all for invalid operator configuration.
    InvalidOperation(String),
}

impl TabularError {
    /// Construct a [`TabularError::ColumnNotFound`] with the available
    /// columns captured for the diagnostic.
    pub fn column_not_found(column: impl Into<String>, available: &[impl AsRef<str>]) -> Self {
        TabularError::ColumnNotFound {
            column: column.into(),
            available: available.iter().map(|s| s.as_ref().to_string()).collect(),
        }
    }
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::ColumnNotFound { column, available } => write!(
                f,
                "column '{column}' not found; available columns: [{}]",
                available.join(", ")
            ),
            TabularError::DuplicateColumn(c) => write!(f, "column '{c}' already exists"),
            TabularError::TypeMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, got {actual}"
            ),
            TabularError::LengthMismatch {
                left,
                right,
                context,
            } => write!(f, "length mismatch in {context}: {left} vs {right}"),
            TabularError::ExprParse { message, offset } => {
                write!(f, "expression parse error at offset {offset}: {message}")
            }
            TabularError::DateParse { input, pattern } => {
                write!(f, "date '{input}' does not match pattern '{pattern}'")
            }
            TabularError::BadDatePattern(p) => write!(f, "invalid date pattern '{p}'"),
            TabularError::Format { format, message } => {
                write!(f, "{format} decode error: {message}")
            }
            TabularError::ValueConversion { value, target } => {
                write!(f, "cannot convert value '{value}' to {target}")
            }
            TabularError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for TabularError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_not_found_lists_available() {
        let err = TabularError::column_not_found("rating", &["a", "b"]);
        let msg = err.to_string();
        assert!(msg.contains("rating"));
        assert!(msg.contains("a, b"));
    }

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<TabularError> = vec![
            TabularError::DuplicateColumn("x".into()),
            TabularError::TypeMismatch {
                expected: "Int64".into(),
                actual: "Utf8".into(),
                context: "filter".into(),
            },
            TabularError::LengthMismatch {
                left: 1,
                right: 2,
                context: "union".into(),
            },
            TabularError::ExprParse {
                message: "unexpected token".into(),
                offset: 3,
            },
            TabularError::DateParse {
                input: "x".into(),
                pattern: "yyyy".into(),
            },
            TabularError::BadDatePattern("Q".into()),
            TabularError::Format {
                format: "csv",
                message: "bad quote".into(),
            },
            TabularError::ValueConversion {
                value: "abc".into(),
                target: "Int64",
            },
            TabularError::InvalidOperation("nope".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
