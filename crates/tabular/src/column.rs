//! Typed columnar storage with validity bitmaps.

use crate::bitmap::Bitmap;
use crate::datatype::DataType;
use crate::error::{Result, TabularError};
use crate::value::Value;
use std::sync::Arc;

/// A typed column of values with a validity bitmap tracking nulls.
///
/// Columns are immutable once built and shared via [`ColumnRef`]; kernels
/// that "modify" a table produce new columns (or reuse existing `Arc`s —
/// e.g. projection is zero-copy).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Boolean column.
    Bool { data: Vec<bool>, validity: Bitmap },
    /// 64-bit integer column.
    Int64 { data: Vec<i64>, validity: Bitmap },
    /// 64-bit float column.
    Float64 { data: Vec<f64>, validity: Bitmap },
    /// UTF-8 string column.
    Utf8 { data: Vec<String>, validity: Bitmap },
    /// Date column (days since epoch).
    Date { data: Vec<i32>, validity: Bitmap },
    /// All-null column of unknown type (e.g. an empty CSV column).
    Null { len: usize },
}

/// Shared column handle.
pub type ColumnRef = Arc<Column>;

impl Column {
    /// Logical type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool { .. } => DataType::Bool,
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Utf8 { .. } => DataType::Utf8,
            Column::Date { .. } => DataType::Date,
            Column::Null { .. } => DataType::Null,
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool { data, .. } => data.len(),
            Column::Int64 { data, .. } => data.len(),
            Column::Float64 { data, .. } => data.len(),
            Column::Utf8 { data, .. } => data.len(),
            Column::Date { data, .. } => data.len(),
            Column::Null { len } => *len,
        }
    }

    /// True when the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Null { len } => *len,
            _ => self.len() - self.validity().count_ones(),
        }
    }

    /// The validity bitmap (all-clear for [`Column::Null`]).
    pub fn validity(&self) -> Bitmap {
        match self {
            Column::Bool { validity, .. }
            | Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Utf8 { validity, .. }
            | Column::Date { validity, .. } => validity.clone(),
            Column::Null { len } => Bitmap::new_cleared(*len),
        }
    }

    /// Cell accessor as a dynamic [`Value`].
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Bool { data, validity } => {
                if validity.get(i) {
                    Value::Bool(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Int64 { data, validity } => {
                if validity.get(i) {
                    Value::Int(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Float64 { data, validity } => {
                if validity.get(i) {
                    Value::Float(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Utf8 { data, validity } => {
                if validity.get(i) {
                    Value::Str(data[i].clone())
                } else {
                    Value::Null
                }
            }
            Column::Date { data, validity } => {
                if validity.get(i) {
                    Value::Date(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Null { len } => {
                assert!(i < *len, "row {i} out of range {len}");
                Value::Null
            }
        }
    }

    /// Borrow the string at row `i` without cloning (None when null or not
    /// a string column).
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            Column::Utf8 { data, validity } if validity.get(i) => Some(data[i].as_str()),
            _ => None,
        }
    }

    /// Integer at row `i` (None when null or non-integer column).
    pub fn int_at(&self, i: usize) -> Option<i64> {
        match self {
            Column::Int64 { data, validity } if validity.get(i) => Some(data[i]),
            _ => None,
        }
    }

    /// Float at row `i`, widening integers.
    pub fn float_at(&self, i: usize) -> Option<f64> {
        match self {
            Column::Float64 { data, validity } if validity.get(i) => Some(data[i]),
            Column::Int64 { data, validity } if validity.get(i) => Some(data[i] as f64),
            _ => None,
        }
    }

    /// Build a column from dynamic values, inferring the narrowest type
    /// that holds them all (per [`DataType::unify_lossy`]).
    pub fn from_values(values: &[Value]) -> Column {
        let mut ty = DataType::Null;
        for v in values {
            ty = ty.unify_lossy(v.data_type());
        }
        let mut b = ColumnBuilder::new(ty);
        for v in values {
            b.push_lossy(v);
        }
        b.finish()
    }

    /// Gather rows by index, producing a new column. Indices may repeat and
    /// reorder freely (join/sort/filter all funnel through here).
    ///
    /// # Panics
    /// Panics when an index is out of range.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Bool { data, validity } => {
                let mut v = Bitmap::new_cleared(indices.len());
                let mut out = Vec::with_capacity(indices.len());
                for (k, &i) in indices.iter().enumerate() {
                    out.push(data[i]);
                    if validity.get(i) {
                        v.set(k);
                    }
                }
                Column::Bool {
                    data: out,
                    validity: v,
                }
            }
            Column::Int64 { data, validity } => {
                let mut v = Bitmap::new_cleared(indices.len());
                let mut out = Vec::with_capacity(indices.len());
                for (k, &i) in indices.iter().enumerate() {
                    out.push(data[i]);
                    if validity.get(i) {
                        v.set(k);
                    }
                }
                Column::Int64 {
                    data: out,
                    validity: v,
                }
            }
            Column::Float64 { data, validity } => {
                let mut v = Bitmap::new_cleared(indices.len());
                let mut out = Vec::with_capacity(indices.len());
                for (k, &i) in indices.iter().enumerate() {
                    out.push(data[i]);
                    if validity.get(i) {
                        v.set(k);
                    }
                }
                Column::Float64 {
                    data: out,
                    validity: v,
                }
            }
            Column::Utf8 { data, validity } => {
                let mut v = Bitmap::new_cleared(indices.len());
                let mut out = Vec::with_capacity(indices.len());
                for (k, &i) in indices.iter().enumerate() {
                    out.push(data[i].clone());
                    if validity.get(i) {
                        v.set(k);
                    }
                }
                Column::Utf8 {
                    data: out,
                    validity: v,
                }
            }
            Column::Date { data, validity } => {
                let mut v = Bitmap::new_cleared(indices.len());
                let mut out = Vec::with_capacity(indices.len());
                for (k, &i) in indices.iter().enumerate() {
                    out.push(data[i]);
                    if validity.get(i) {
                        v.set(k);
                    }
                }
                Column::Date {
                    data: out,
                    validity: v,
                }
            }
            Column::Null { len } => {
                for &i in indices {
                    assert!(i < *len, "row {i} out of range {len}");
                }
                Column::Null { len: indices.len() }
            }
        }
    }

    /// Gather rows by optional index; `None` produces a null cell. Used by
    /// outer joins for unmatched rows.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Column {
        let mut b = ColumnBuilder::new(self.data_type());
        for &i in indices {
            match i {
                Some(i) => b.push_lossy(&self.value(i)),
                None => b.push_null(),
            }
        }
        b.finish()
    }

    /// Filter rows by a selection bitmap.
    ///
    /// # Panics
    /// Panics when the mask length differs from the column length.
    pub fn filter(&self, mask: &Bitmap) -> Column {
        assert_eq!(mask.len(), self.len(), "filter mask length mismatch");
        self.take(&mask.ones())
    }

    /// Concatenate with another column of compatible type. Types are
    /// widened per the lossy lattice (mixed ⇒ `Utf8`).
    pub fn concat(&self, other: &Column) -> Result<Column> {
        let ty = self.data_type().unify_lossy(other.data_type());
        let mut b = ColumnBuilder::new(ty);
        for i in 0..self.len() {
            b.push_coerced(&self.value(i))?;
        }
        for i in 0..other.len() {
            b.push_coerced(&other.value(i))?;
        }
        Ok(b.finish())
    }

    /// Cast to another type, erroring on lossy conversions.
    pub fn cast(&self, target: DataType) -> Result<Column> {
        if self.data_type() == target {
            return Ok(self.clone());
        }
        let mut b = ColumnBuilder::new(target);
        for i in 0..self.len() {
            b.push_coerced(&self.value(i))?;
        }
        Ok(b.finish())
    }

    /// Iterator over all cells as dynamic values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }
}

/// Incremental builder for a [`Column`] of a fixed target type.
#[derive(Debug)]
pub struct ColumnBuilder {
    ty: DataType,
    bools: Vec<bool>,
    ints: Vec<i64>,
    floats: Vec<f64>,
    strs: Vec<String>,
    dates: Vec<i32>,
    validity: Bitmap,
    len: usize,
}

impl ColumnBuilder {
    /// New builder producing a column of type `ty`.
    pub fn new(ty: DataType) -> Self {
        ColumnBuilder {
            ty,
            bools: Vec::new(),
            ints: Vec::new(),
            floats: Vec::new(),
            strs: Vec::new(),
            dates: Vec::new(),
            validity: Bitmap::new_cleared(0),
            len: 0,
        }
    }

    /// New builder with row-count capacity hint.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        let mut b = ColumnBuilder::new(ty);
        match ty {
            DataType::Bool => b.bools.reserve(cap),
            DataType::Int64 => b.ints.reserve(cap),
            DataType::Float64 => b.floats.reserve(cap),
            DataType::Utf8 => b.strs.reserve(cap),
            DataType::Date => b.dates.reserve(cap),
            DataType::Null => {}
        }
        b
    }

    /// Target type of the column being built.
    pub fn data_type(&self) -> DataType {
        self.ty
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a null cell.
    pub fn push_null(&mut self) {
        self.push_slot_default();
        self.validity.push(false);
        self.len += 1;
    }

    fn push_slot_default(&mut self) {
        match self.ty {
            DataType::Bool => self.bools.push(false),
            DataType::Int64 => self.ints.push(0),
            DataType::Float64 => self.floats.push(0.0),
            DataType::Utf8 => self.strs.push(String::new()),
            DataType::Date => self.dates.push(0),
            DataType::Null => {}
        }
    }

    /// Append a value, coercing to the target type; errors propagate.
    pub fn push_coerced(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            self.push_null();
            return Ok(());
        }
        let coerced = v.coerce(self.ty)?;
        match (&coerced, self.ty) {
            (Value::Bool(b), DataType::Bool) => self.bools.push(*b),
            (Value::Int(i), DataType::Int64) => self.ints.push(*i),
            (Value::Float(f), DataType::Float64) => self.floats.push(*f),
            (Value::Str(s), DataType::Utf8) => self.strs.push(s.clone()),
            (Value::Date(d), DataType::Date) => self.dates.push(*d),
            (_, DataType::Null) => {
                // Target type Null only holds nulls; a non-null cell here is
                // a caller bug surfaced as a conversion error.
                return Err(TabularError::ValueConversion {
                    value: v.to_string(),
                    target: "null",
                });
            }
            _ => unreachable!("coerce returned mismatched type"),
        }
        self.validity.push(true);
        self.len += 1;
        Ok(())
    }

    /// Append a value, stringifying anything that does not fit the target
    /// type instead of erroring (reader behaviour).
    pub fn push_lossy(&mut self, v: &Value) {
        if self.push_coerced(v).is_err() {
            // Only reachable for Utf8 targets with weird values or non-Utf8
            // targets receiving incompatible cells; degrade to null.
            self.push_null();
        }
    }

    /// Append a native string (Utf8 builders only).
    ///
    /// # Panics
    /// Panics when the target type is not `Utf8`.
    pub fn push_str(&mut self, s: impl Into<String>) {
        assert_eq!(self.ty, DataType::Utf8, "push_str on non-utf8 builder");
        self.strs.push(s.into());
        self.validity.push(true);
        self.len += 1;
    }

    /// Finish the column.
    pub fn finish(self) -> Column {
        match self.ty {
            DataType::Bool => Column::Bool {
                data: self.bools,
                validity: self.validity,
            },
            DataType::Int64 => Column::Int64 {
                data: self.ints,
                validity: self.validity,
            },
            DataType::Float64 => Column::Float64 {
                data: self.floats,
                validity: self.validity,
            },
            DataType::Utf8 => Column::Utf8 {
                data: self.strs,
                validity: self.validity,
            },
            DataType::Date => Column::Date {
                data: self.dates,
                validity: self.validity,
            },
            DataType::Null => Column::Null { len: self.len },
        }
    }
}

/// Convenience constructors for literal columns in tests and generators.
impl Column {
    /// Int column from values (no nulls).
    pub fn int(values: impl IntoIterator<Item = i64>) -> Column {
        let data: Vec<i64> = values.into_iter().collect();
        let validity = Bitmap::new_set(data.len());
        Column::Int64 { data, validity }
    }

    /// Float column from values (no nulls).
    pub fn float(values: impl IntoIterator<Item = f64>) -> Column {
        let data: Vec<f64> = values.into_iter().collect();
        let validity = Bitmap::new_set(data.len());
        Column::Float64 { data, validity }
    }

    /// String column from values (no nulls).
    pub fn utf8<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Column {
        let data: Vec<String> = values.into_iter().map(Into::into).collect();
        let validity = Bitmap::new_set(data.len());
        Column::Utf8 { data, validity }
    }

    /// Bool column from values (no nulls).
    pub fn bool(values: impl IntoIterator<Item = bool>) -> Column {
        let data: Vec<bool> = values.into_iter().collect();
        let validity = Bitmap::new_set(data.len());
        Column::Bool { data, validity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_infers_types() {
        let c = Column::from_values(&[Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(1), Value::Null);

        let c = Column::from_values(&[Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.data_type(), DataType::Float64);
        assert_eq!(c.value(0), Value::Float(1.0));

        let c = Column::from_values(&[Value::Int(1), Value::Str("x".into())]);
        assert_eq!(c.data_type(), DataType::Utf8);
        assert_eq!(c.value(0), Value::Str("1".into()));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::utf8(["a", "b", "c"]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.value(0), Value::Str("c".into()));
        assert_eq!(t.value(1), Value::Str("a".into()));
        assert_eq!(t.value(2), Value::Str("a".into()));
    }

    #[test]
    fn take_opt_produces_nulls() {
        let c = Column::int([10, 20]);
        let t = c.take_opt(&[Some(1), None, Some(0)]);
        assert_eq!(t.value(0), Value::Int(20));
        assert!(t.value(1).is_null());
        assert_eq!(t.value(2), Value::Int(10));
    }

    #[test]
    fn filter_by_mask() {
        let c = Column::int([1, 2, 3, 4]);
        let mask = Bitmap::from_bools(&[true, false, true, false]);
        let f = c.filter(&mask);
        assert_eq!(f.len(), 2);
        assert_eq!(f.value(1), Value::Int(3));
    }

    #[test]
    fn concat_widens() {
        let a = Column::int([1]);
        let b = Column::float([2.5]);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.data_type(), DataType::Float64);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cast_lossy_errors() {
        let c = Column::utf8(["12", "x"]);
        assert!(c.cast(DataType::Int64).is_err());
        let ok = Column::utf8(["12", "34"]).cast(DataType::Int64).unwrap();
        assert_eq!(ok.value(1), Value::Int(34));
    }

    #[test]
    fn null_column_behaviour() {
        let c = Column::Null { len: 3 };
        assert_eq!(c.null_count(), 3);
        assert!(c.value(2).is_null());
        let t = c.take(&[0, 0]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn builder_null_tracking() {
        let mut b = ColumnBuilder::new(DataType::Utf8);
        b.push_str("a");
        b.push_null();
        b.push_str("b");
        let c = b.finish();
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.str_at(0), Some("a"));
        assert_eq!(c.str_at(1), None);
    }
}
