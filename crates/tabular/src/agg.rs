//! Aggregate functions for `groupby` tasks.
//!
//! The paper's groupby task configures a list of aggregates
//! (`operator: sum / apply_on: noOfCheckins / out_field: total_checkins`,
//! figure 8) and defaults to a bare row count when none is given
//! (figure 23). User-defined aggregates are one of the four extension task
//! categories (§4.2); [`AggregateFunction`] is that extension point.

use crate::datatype::DataType;
use crate::error::{Result, TabularError};
use crate::value::Value;
use std::fmt;

/// Built-in aggregate operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of numeric values (nulls skipped).
    Sum,
    /// Count of non-null values.
    Count,
    /// Count of all rows including nulls (`count_all` / bare groupby).
    CountAll,
    /// Arithmetic mean of numeric values.
    Avg,
    /// Minimum by value ordering.
    Min,
    /// Maximum by value ordering.
    Max,
    /// First non-null value encountered.
    First,
    /// Last non-null value encountered.
    Last,
    /// Count of distinct non-null values.
    CountDistinct,
    /// Concatenate string representations with `,`.
    Collect,
}

impl AggKind {
    /// Parse the flow-file operator name.
    pub fn parse(name: &str) -> Option<AggKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "sum" => AggKind::Sum,
            "count" => AggKind::Count,
            "count_all" | "countall" => AggKind::CountAll,
            "avg" | "mean" | "average" => AggKind::Avg,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            "first" => AggKind::First,
            "last" => AggKind::Last,
            "count_distinct" | "countdistinct" | "distinct" => AggKind::CountDistinct,
            "collect" | "concat" => AggKind::Collect,
            _ => return None,
        })
    }

    /// Canonical flow-file name.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Count => "count",
            AggKind::CountAll => "count_all",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::First => "first",
            AggKind::Last => "last",
            AggKind::CountDistinct => "count_distinct",
            AggKind::Collect => "collect",
        }
    }

    /// Result type given the input column type.
    pub fn output_type(self, input: DataType) -> DataType {
        match self {
            AggKind::Sum => {
                if input == DataType::Float64 {
                    DataType::Float64
                } else {
                    DataType::Int64
                }
            }
            AggKind::Count | AggKind::CountAll | AggKind::CountDistinct => DataType::Int64,
            AggKind::Avg => DataType::Float64,
            AggKind::Min | AggKind::Max | AggKind::First | AggKind::Last => input,
            AggKind::Collect => DataType::Utf8,
        }
    }

    /// Create a fresh accumulator for this aggregate.
    pub fn accumulator(self) -> Accumulator {
        Accumulator::new(self)
    }
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    kind: AggKind,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    saw_float: bool,
    extreme: Option<Value>,
    first: Option<Value>,
    last: Option<Value>,
    distinct: std::collections::HashSet<Value>,
    collected: Vec<String>,
}

impl Accumulator {
    fn new(kind: AggKind) -> Self {
        Accumulator {
            kind,
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            saw_float: false,
            extreme: None,
            first: None,
            last: None,
            distinct: std::collections::HashSet::new(),
            collected: Vec::new(),
        }
    }

    /// Feed one value into the accumulator.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if self.kind == AggKind::CountAll {
            self.count += 1;
            return Ok(());
        }
        if v.is_null() {
            return Ok(());
        }
        match self.kind {
            AggKind::Count => self.count += 1,
            AggKind::Sum | AggKind::Avg => {
                // Strings parse numerically when possible — schema-light CSV
                // columns are often Utf8 but numeric in content.
                let f = numeric_of(v).ok_or_else(|| TabularError::TypeMismatch {
                    expected: "numeric".into(),
                    actual: v.data_type().to_string(),
                    context: format!("{} aggregate", self.kind),
                })?;
                self.count += 1;
                self.sum_f += f;
                match v.as_int() {
                    Some(i) if !matches!(v, Value::Float(_)) => self.sum_i += i,
                    _ => self.saw_float = true,
                }
                if matches!(v, Value::Str(_)) && v.as_int().is_none() {
                    self.saw_float = true;
                }
            }
            AggKind::Min => {
                if self.extreme.as_ref().is_none_or(|e| v < e) {
                    self.extreme = Some(v.clone());
                }
            }
            AggKind::Max => {
                if self.extreme.as_ref().is_none_or(|e| v > e) {
                    self.extreme = Some(v.clone());
                }
            }
            AggKind::First => {
                if self.first.is_none() {
                    self.first = Some(v.clone());
                }
            }
            AggKind::Last => self.last = Some(v.clone()),
            AggKind::CountDistinct => {
                self.distinct.insert(v.clone());
            }
            AggKind::Collect => self.collected.push(v.to_string()),
            AggKind::CountAll => unreachable!(),
        }
        Ok(())
    }

    /// Fold another accumulator's partial state into this one. `other`
    /// must cover rows that come *after* this accumulator's rows in the
    /// original input — order-sensitive aggregates (`first`, `last`,
    /// `collect`) concatenate in call order, which is what makes
    /// partition-ordered scatter/gather byte-identical to a single pass.
    pub fn merge(&mut self, other: Accumulator) -> Result<()> {
        if self.kind != other.kind {
            return Err(TabularError::TypeMismatch {
                expected: self.kind.to_string(),
                actual: other.kind.to_string(),
                context: "accumulator merge".into(),
            });
        }
        self.count += other.count;
        self.sum_i += other.sum_i;
        self.sum_f += other.sum_f;
        self.saw_float |= other.saw_float;
        if let Some(v) = other.extreme {
            let keep = match self.kind {
                AggKind::Min => self.extreme.as_ref().is_none_or(|e| &v < e),
                AggKind::Max => self.extreme.as_ref().is_none_or(|e| &v > e),
                _ => false,
            };
            if keep {
                self.extreme = Some(v);
            }
        }
        if self.first.is_none() {
            self.first = other.first;
        }
        if other.last.is_some() {
            self.last = other.last;
        }
        self.distinct.extend(other.distinct);
        self.collected.extend(other.collected);
        Ok(())
    }

    /// Produce the final aggregate value.
    pub fn finish(self) -> Value {
        match self.kind {
            AggKind::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float(self.sum_f)
                } else {
                    Value::Int(self.sum_i)
                }
            }
            AggKind::Count | AggKind::CountAll => Value::Int(self.count),
            AggKind::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
            AggKind::Min | AggKind::Max => self.extreme.unwrap_or(Value::Null),
            AggKind::First => self.first.unwrap_or(Value::Null),
            AggKind::Last => self.last.unwrap_or(Value::Null),
            AggKind::CountDistinct => Value::Int(self.distinct.len() as i64),
            AggKind::Collect => Value::Str(self.collected.join(",")),
        }
    }
}

fn numeric_of(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Str(s) => s.trim().parse::<f64>().ok(),
        _ => None,
    }
}

/// Extension point for user-defined aggregates (§4.2, category 2:
/// "transforming a bag of values into a point value").
pub trait AggregateFunction: Send + Sync {
    /// Registered name, referenced from flow files as `operator: <name>`.
    fn name(&self) -> &str;
    /// Result type for a given input type.
    fn output_type(&self, input: DataType) -> DataType;
    /// Reduce a bag of values to a point value.
    fn aggregate(&self, values: &[Value]) -> Result<Value>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggKind, vals: &[Value]) -> Value {
        let mut acc = kind.accumulator();
        for v in vals {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn sum_stays_integer_for_ints() {
        let v = run(AggKind::Sum, &[Value::Int(1), Value::Int(2), Value::Null]);
        assert_eq!(v, Value::Int(3));
        let v = run(AggKind::Sum, &[Value::Int(1), Value::Float(0.5)]);
        assert_eq!(v, Value::Float(1.5));
    }

    #[test]
    fn sum_parses_numeric_strings() {
        let v = run(
            AggKind::Sum,
            &[Value::Str("10".into()), Value::Str("2.5".into())],
        );
        assert_eq!(v, Value::Float(12.5));
    }

    #[test]
    fn sum_rejects_non_numeric() {
        let mut acc = AggKind::Sum.accumulator();
        assert!(acc.update(&Value::Str("abc".into())).is_err());
    }

    #[test]
    fn count_vs_count_all() {
        let vals = [Value::Int(1), Value::Null, Value::Int(2)];
        assert_eq!(run(AggKind::Count, &vals), Value::Int(2));
        assert_eq!(run(AggKind::CountAll, &vals), Value::Int(3));
    }

    #[test]
    fn avg_min_max() {
        let vals = [Value::Int(2), Value::Int(4), Value::Null];
        assert_eq!(run(AggKind::Avg, &vals), Value::Float(3.0));
        assert_eq!(run(AggKind::Min, &vals), Value::Int(2));
        assert_eq!(run(AggKind::Max, &vals), Value::Int(4));
    }

    #[test]
    fn empty_group_yields_null_or_zero() {
        assert_eq!(run(AggKind::Sum, &[]), Value::Null);
        assert_eq!(run(AggKind::Avg, &[]), Value::Null);
        assert_eq!(run(AggKind::Count, &[]), Value::Int(0));
        assert_eq!(run(AggKind::Min, &[]), Value::Null);
    }

    #[test]
    fn first_last_collect_distinct() {
        let vals = [
            Value::Str("a".into()),
            Value::Null,
            Value::Str("b".into()),
            Value::Str("a".into()),
        ];
        assert_eq!(run(AggKind::First, &vals), Value::Str("a".into()));
        assert_eq!(run(AggKind::Last, &vals), Value::Str("a".into()));
        assert_eq!(run(AggKind::CountDistinct, &vals), Value::Int(2));
        assert_eq!(run(AggKind::Collect, &vals), Value::Str("a,b,a".into()));
    }

    #[test]
    fn merged_partials_match_single_pass() {
        // Every split point of every aggregate kind must agree with the
        // single-accumulator result — the scatter/gather invariant.
        let vals = [
            Value::Int(3),
            Value::Null,
            Value::Str("b".into()),
            Value::Str("a".into()),
            Value::Float(1.5),
            Value::Int(3),
        ];
        for kind in [
            AggKind::Sum,
            AggKind::Count,
            AggKind::CountAll,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::First,
            AggKind::Last,
            AggKind::CountDistinct,
            AggKind::Collect,
        ] {
            // Sum/Avg reject the non-numeric strings; use numeric data.
            let data: Vec<Value> = if matches!(kind, AggKind::Sum | AggKind::Avg) {
                vec![Value::Int(3), Value::Null, Value::Float(1.5), Value::Int(3)]
            } else {
                vals.to_vec()
            };
            let mut whole = kind.accumulator();
            for v in &data {
                whole.update(v).unwrap();
            }
            let expect = whole.finish();
            for split in 0..=data.len() {
                let mut left = kind.accumulator();
                for v in &data[..split] {
                    left.update(v).unwrap();
                }
                let mut right = kind.accumulator();
                for v in &data[split..] {
                    right.update(v).unwrap();
                }
                left.merge(right).unwrap();
                assert_eq!(left.finish(), expect, "{kind} split at {split}");
            }
        }
    }

    #[test]
    fn merge_rejects_kind_mismatch() {
        let mut a = AggKind::Sum.accumulator();
        assert!(a.merge(AggKind::Count.accumulator()).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggKind::parse("sum"), Some(AggKind::Sum));
        assert_eq!(AggKind::parse("SUM"), Some(AggKind::Sum));
        assert_eq!(AggKind::parse("mean"), Some(AggKind::Avg));
        assert_eq!(AggKind::parse("bogus"), None);
        for k in [
            AggKind::Sum,
            AggKind::Count,
            AggKind::CountAll,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::First,
            AggKind::Last,
            AggKind::CountDistinct,
            AggKind::Collect,
        ] {
            assert_eq!(AggKind::parse(k.name()), Some(k), "roundtrip {k}");
        }
    }

    #[test]
    fn output_types() {
        assert_eq!(AggKind::Sum.output_type(DataType::Int64), DataType::Int64);
        assert_eq!(
            AggKind::Sum.output_type(DataType::Float64),
            DataType::Float64
        );
        assert_eq!(AggKind::Avg.output_type(DataType::Int64), DataType::Float64);
        assert_eq!(AggKind::Min.output_type(DataType::Utf8), DataType::Utf8);
        assert_eq!(
            AggKind::Collect.output_type(DataType::Int64),
            DataType::Utf8
        );
    }
}
