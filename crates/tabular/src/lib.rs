//! # shareinsights-tabular
//!
//! Columnar table engine underpinning the ShareInsights platform
//! (SIGMOD 2015). This crate is the batch/interactive *data substrate*: the
//! paper compiles flow files down to Pig/Spark jobs and a JavaScript data
//! cube; this reproduction compiles them down to the operator kernels defined
//! here.
//!
//! The crate provides:
//!
//! * [`DataType`], [`Value`], [`Field`], [`Schema`] — the type system shared
//!   by every layer of the stack (§3.2 of the paper: data objects carry an
//!   explicit schema).
//! * [`Column`] / [`Table`] — validity-bitmap columnar storage with cheap
//!   `Arc`-shared columns.
//! * [`expr`] — a small expression language with a parser, used by
//!   `filter_by` tasks (`filter_expression: rating < 3`).
//! * [`ops`] — operator kernels: filter, project, map operators
//!   (date normalisation, dictionary extraction, location extraction, word
//!   extraction), group-by with aggregates, hash joins, top-n, sort,
//!   distinct, union.
//! * [`io`] — readers and writers for the payload formats the platform
//!   recognises: CSV, JSON (with `=>` path mapping), XML and a compact
//!   AVRO-like binary record format.
//! * [`datefmt`] — Java-`SimpleDateFormat`-style date parsing/formatting
//!   (the paper's `map`/`date` operator takes `input_format: 'E MMM dd
//!   HH:mm:ss Z yyyy'`).
//!
//! The engine deliberately implements everything from scratch — no Arrow, no
//! chrono — so the reproduction is self-contained and auditable.

pub mod agg;
pub mod bitmap;
pub mod column;
pub mod datatype;
pub mod datefmt;
pub mod error;
pub mod expr;
pub mod index;
pub mod io;
pub mod ops;
pub mod row;
pub mod schema;
pub mod table;
pub mod text;
pub mod value;

pub use bitmap::Bitmap;
pub use column::{Column, ColumnBuilder};
pub use datatype::DataType;
pub use error::{Result, TabularError};
pub use index::{ColumnIndex, DictionaryIndex, IndexedTable, ZoneIndex};
pub use row::Row;
pub use schema::{Field, Schema};
pub use table::Table;
pub use value::Value;
