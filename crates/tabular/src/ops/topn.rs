//! Group-wise top-N (the paper's `topn` task: appendix A.1 `topwords` keeps
//! the 20 most frequent words per date).

use crate::error::Result;
use crate::ops::sort::SortKey;
use crate::row::Row;
use crate::table::Table;
use std::cmp::Ordering;
use std::collections::HashMap;

/// `topn` task configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopN {
    /// Partition key columns (`groupby: [date]`). Empty = whole table.
    pub groupby: Vec<String>,
    /// Ordering inside each partition (`orderby_column: [count DESC]`).
    pub order_by: Vec<SortKey>,
    /// Rows kept per partition (`limit: 20`).
    pub limit: usize,
}

/// Keep the first `limit` rows of each partition under the given ordering.
/// Output preserves all columns; partitions appear in first-seen order and
/// rows within a partition in the requested order (ties stable).
pub fn topn(table: &Table, cfg: &TopN) -> Result<Table> {
    let group_cols: Vec<_> = cfg
        .groupby
        .iter()
        .map(|k| table.column(k).cloned())
        .collect::<Result<Vec<_>>>()?;
    let order_cols: Vec<_> = cfg
        .order_by
        .iter()
        .map(|k| table.column(&k.column).cloned())
        .collect::<Result<Vec<_>>>()?;

    // Partition row indices.
    let mut partitions: HashMap<Row, usize> = HashMap::new();
    let mut part_rows: Vec<Vec<usize>> = Vec::new();
    for i in 0..table.num_rows() {
        let key = Row(group_cols.iter().map(|c| c.value(i)).collect());
        let pid = *partitions.entry(key).or_insert_with(|| {
            part_rows.push(Vec::new());
            part_rows.len() - 1
        });
        part_rows[pid].push(i);
    }

    let cmp = |&a: &usize, &b: &usize| -> Ordering {
        for (key, col) in cfg.order_by.iter().zip(&order_cols) {
            let ord = col.value(a).cmp(&col.value(b));
            let ord = match key.order {
                crate::ops::sort::SortOrder::Asc => ord,
                crate::ops::sort::SortOrder::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    };

    let mut out_indices = Vec::new();
    for rows in &mut part_rows {
        rows.sort_by(cmp);
        out_indices.extend(rows.iter().take(cfg.limit).copied());
    }
    Ok(table.take(&out_indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn word_counts() -> Table {
        Table::from_rows(
            &["date", "word", "count"],
            &[
                row!["d1", "dhoni", 50i64],
                row!["d1", "six", 30i64],
                row!["d1", "csk", 70i64],
                row!["d2", "kohli", 20i64],
                row!["d2", "rcb", 60i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_topwords_shape() {
        // appendix A.1 topwords: groupby [date], orderby [count DESC], limit N.
        let cfg = TopN {
            groupby: vec!["date".into()],
            order_by: vec![SortKey::desc("count")],
            limit: 2,
        };
        let out = topn(&word_counts(), &cfg).unwrap();
        assert_eq!(out.num_rows(), 4);
        let words: Vec<String> = (0..4)
            .map(|i| out.value(i, "word").unwrap().to_string())
            .collect();
        assert_eq!(words, vec!["csk", "dhoni", "rcb", "kohli"]);
    }

    #[test]
    fn limit_larger_than_partition_keeps_all() {
        let cfg = TopN {
            groupby: vec!["date".into()],
            order_by: vec![SortKey::desc("count")],
            limit: 100,
        };
        assert_eq!(topn(&word_counts(), &cfg).unwrap().num_rows(), 5);
    }

    #[test]
    fn empty_groupby_is_global_topn() {
        let cfg = TopN {
            groupby: vec![],
            order_by: vec![SortKey::desc("count")],
            limit: 1,
        };
        let out = topn(&word_counts(), &cfg).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "word").unwrap().to_string(), "csk");
    }

    #[test]
    fn limit_zero_empties() {
        let cfg = TopN {
            groupby: vec![],
            order_by: vec![SortKey::asc("count")],
            limit: 0,
        };
        assert_eq!(topn(&word_counts(), &cfg).unwrap().num_rows(), 0);
    }

    #[test]
    fn preserves_all_columns() {
        let cfg = TopN {
            groupby: vec!["date".into()],
            order_by: vec![SortKey::desc("count")],
            limit: 1,
        };
        let out = topn(&word_counts(), &cfg).unwrap();
        assert_eq!(out.schema().names(), vec!["date", "word", "count"]);
    }

    #[test]
    fn missing_columns_error() {
        let cfg = TopN {
            groupby: vec!["nope".into()],
            order_by: vec![],
            limit: 1,
        };
        assert!(topn(&word_counts(), &cfg).is_err());
    }
}
