//! Vertical union of same-shaped tables (multi-source fan-in, §3.4).

use crate::error::{Result, TabularError};
use crate::table::Table;

/// Concatenate tables top to bottom; schemas must share column names in
/// order, types widen per the lossy lattice.
pub fn union_all(tables: &[Table]) -> Result<Table> {
    let mut iter = tables.iter();
    let first = iter
        .next()
        .ok_or_else(|| TabularError::InvalidOperation("union of zero tables".into()))?;
    let mut acc = first.clone();
    for t in iter {
        acc = acc.concat(t)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::row;

    #[test]
    fn unions_and_widens() {
        let a = Table::from_rows(&["x", "y"], &[row![1i64, "a"]]).unwrap();
        let b = Table::from_rows(&["x", "y"], &[row![2.5, "b"]]).unwrap();
        let u = union_all(&[a, b]).unwrap();
        assert_eq!(u.num_rows(), 2);
        assert_eq!(
            u.schema().field("x").unwrap().data_type(),
            DataType::Float64
        );
    }

    #[test]
    fn zero_tables_is_an_error() {
        assert!(union_all(&[]).is_err());
    }

    #[test]
    fn single_table_identity() {
        let a = Table::from_rows(&["x"], &[row![1i64]]).unwrap();
        let u = union_all(std::slice::from_ref(&a)).unwrap();
        assert_eq!(u, a);
    }

    #[test]
    fn mismatched_names_error() {
        let a = Table::from_rows(&["x"], &[row![1i64]]).unwrap();
        let b = Table::from_rows(&["z"], &[row![1i64]]).unwrap();
        assert!(union_all(&[a, b]).is_err());
    }
}
